"""Naive reference implementations of the §2 graph operations.

These follow the paper's *prose* as literally as possible — repeated full
scans over explicit node/edge sets, no counters, no worklists:

* :func:`naive_close` applies the four ``close(M, G)`` operations until
  none is applicable;
* :func:`naive_greatest_unfounded_set` computes the largest unfounded set
  by its *definition* (the greatest set D whose induced positive subgraph
  has no source), as a greatest-fixpoint iteration — a genuinely different
  formulation from the production code's derivability complement;
* :func:`naive_well_founded` chains both into Algorithm Well-Founded.

They exist for differential testing (the production
:class:`~repro.ground.state.GroundGraphState` must agree on every input)
and for the ablation benchmark quantifying what the incremental worklist
buys.  Complexity is O(n) full scans per change — do not use them for real
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.grounding import GroundProgram
from repro.errors import CloseConflictError
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation

__all__ = ["NaiveGraph", "naive_close", "naive_greatest_unfounded_set", "naive_well_founded"]


@dataclass
class NaiveGraph:
    """An explicit mutable copy of the ground graph plus a partial model."""

    gp: GroundProgram
    status: list[int]
    alive_atoms: set[int]
    alive_rules: set[int]

    @classmethod
    def initial(cls, gp: GroundProgram) -> "NaiveGraph":
        """Install M₀(Δ): Δ atoms true, EDB atoms outside Δ false."""
        status = [UNDEF] * gp.atom_count
        edb = gp.program.edb_predicates
        for index in range(gp.atom_count):
            atom = gp.atoms.atom(index)
            if gp.database.contains_atom(atom):
                status[index] = TRUE
            elif atom.predicate in edb:
                status[index] = FALSE
        return cls(
            gp,
            status,
            set(range(gp.atom_count)),
            set(range(gp.rule_count)),
        )

    def interpretation(self) -> Interpretation:
        """Snapshot the current partial model."""
        return Interpretation(self.gp, tuple(self.status))


def naive_close(graph: NaiveGraph) -> None:
    """The paper's close(M, G), by repeated full scans.

    Operations, applied until inapplicable: delete true atoms (and rules
    they block via negative arcs); delete false atoms (and rules they block
    via positive arcs); fire sourceless rule nodes (head becomes true);
    falsify sourceless atom nodes.
    """
    gp = graph.gp
    changed = True
    while changed:
        changed = False
        # valued atoms leave the graph, taking blocked rules with them
        for index in sorted(graph.alive_atoms):
            value = graph.status[index]
            if value == UNDEF:
                continue
            graph.alive_atoms.discard(index)
            changed = True
            for r_index in sorted(graph.alive_rules):
                gr = gp.rules[r_index]
                blocked = (value == TRUE and index in gr.neg) or (
                    value == FALSE and index in gr.pos
                )
                if blocked:
                    graph.alive_rules.discard(r_index)
        # sourceless rules fire
        for r_index in sorted(graph.alive_rules):
            gr = gp.rules[r_index]
            has_incoming = any(
                a in graph.alive_atoms for a in (*gr.pos, *gr.neg)
            )
            if has_incoming:
                continue
            graph.alive_rules.discard(r_index)
            changed = True
            if graph.status[gr.head] == FALSE:
                raise CloseConflictError(gr.head)
            graph.status[gr.head] = TRUE
        # sourceless atoms become false
        for index in sorted(graph.alive_atoms):
            if graph.status[index] != UNDEF:
                continue
            supported = any(
                gp.rules[r_index].head == index for r_index in graph.alive_rules
            )
            if not supported:
                graph.status[index] = FALSE
                changed = True


def naive_greatest_unfounded_set(graph: NaiveGraph) -> set[int]:
    """Largest unfounded set, by greatest-fixpoint refinement.

    Start from all live atoms; repeatedly evict any atom with a live rule
    whose positive body has no live atom inside the candidate set (such a
    rule node would be a source of the induced G⁺ subgraph).  What remains
    is the greatest set with no source — ``Atoms[close(M, G+)]``.
    """
    gp = graph.gp
    candidate = set(graph.alive_atoms)
    changed = True
    while changed:
        changed = False
        for index in sorted(candidate):
            for r_index in graph.alive_rules:
                gr = gp.rules[r_index]
                if gr.head != index:
                    continue
                feeds_from_candidate = any(
                    a in candidate and a in graph.alive_atoms for a in gr.pos
                )
                if not feeds_from_candidate:
                    candidate.discard(index)
                    changed = True
                    break
    return candidate


def naive_well_founded(gp: GroundProgram) -> Interpretation:
    """Algorithm Well-Founded over the naive machinery."""
    graph = NaiveGraph.initial(gp)
    naive_close(graph)
    while True:
        unfounded = naive_greatest_unfounded_set(graph)
        if not unfounded:
            return graph.interpretation()
        for index in unfounded:
            graph.status[index] = FALSE
        naive_close(graph)
