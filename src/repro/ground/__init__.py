"""Ground graph machinery: models, close(M, G), unfounded sets, bottom ties."""

from repro.ground.backend import AUTO_ARRAY_THRESHOLD, BACKENDS, make_state, resolve_backend
from repro.ground.explain import Explanation, explain, format_explanation
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation
from repro.ground.state import BottomComponent, GroundGraphState

__all__ = [
    "AUTO_ARRAY_THRESHOLD",
    "BACKENDS",
    "FALSE",
    "TRUE",
    "UNDEF",
    "BottomComponent",
    "Explanation",
    "GroundGraphState",
    "Interpretation",
    "explain",
    "format_explanation",
    "make_state",
    "resolve_backend",
]
