"""NumPy-vectorized kernel backend: :class:`ArrayGroundGraphState`.

The pure-Python kernel (:class:`~repro.ground.state.GroundGraphState`)
spends its time in per-atom/per-edge interpreter loops.  This backend
keeps the *same* state contract — it subclasses the Python kernel and
shares every storage layout — but swaps the per-state counter lists for
buffer-protocol storages (``bytearray`` / ``array('i')``) and installs
writable ``np.frombuffer`` views over them, so the hot phases can run as
whole-frontier array operations while every inherited scalar method
(assignment, trail undo, incremental repair, cloning) keeps working on
the very same memory:

* ``close()`` drains the worklist in frontier batches: per-atom liveness
  bookkeeping (compaction slots, trail records, dirty-component marks)
  stays scalar in worklist order, but the per-edge counter updates run as
  CSR multi-gathers with ``np.subtract.at`` and boolean dead-head masks;
* ``falsify_unfounded()``'s source-pointer rebuild runs the positive
  firing cascade as layered frontier sweeps over the flat adjacency;
* the SCC condensation rebuild compacts the live graph into a fresh CSR
  with one boolean mask, runs a flat-list Tarjan over it, and counts
  incoming cross edges with a single ``bincount``; the Lemma-1 (K, L)
  partition of large components is assigned once per node and verified
  with one vectorized pass over the in-component edges;
* :meth:`ArrayGroundGraphState.select_ties` returns **all** current
  bottom ties in one batched round.  This is sound because bottom
  components are pairwise disjoint and have no incoming cross edges:
  breaking one cannot add or remove edges inside another (deletion-only
  dynamics), so breaking them all and closing once reaches the same
  closure as breaking them one at a time.

Trail compatibility: the batched close appends exactly the record shapes
the scalar kernel appends (``_T_ATOM`` per atom in worklist order, then
``_T_INCROSS`` per vanished cross edge, then ``_T_RULE``/``_T_SET`` for
the kills and fires), and kills are processed strictly after all counter
decrements of the batch, so ``trail_undo`` replays the exact inverse: at
the time an ``_T_ATOM`` record is undone, every rule killed later in the
batch has already been restored, which is precisely the liveness the
batched decrement observed.  Divergences from the sequential kernel are
confined to unobservable state: rules killed mid-batch may receive
counter decrements the sequential order would have skipped (their
counters are dead), and the extra incoming-cross-edge decrements only
ever hit components the same batch marked dirty (their counts are
discarded at the next refinement).

NumPy is an optional extra; importing this module without it succeeds
(``np`` is ``None``) and constructing the state raises
:class:`~repro.errors.BackendUnavailableError`.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections import deque
from heapq import heappush
from time import perf_counter

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

try:
    # Opportunistic accelerant, not part of the [array] extra: scipy's
    # C-compiled strong connected_components and dijkstra replace the
    # remaining scalar graph passes when present.  Every scipy code path
    # has a numpy-only fallback in this module.
    from scipy.sparse import csr_matrix as _sp_csr
    from scipy.sparse.csgraph import connected_components as _sp_scc
    from scipy.sparse.csgraph import dijkstra as _sp_dijkstra
except ImportError:  # pragma: no cover - numpy-without-scipy environments
    _sp_csr = _sp_scc = _sp_dijkstra = None

from repro.datalog.grounding import GroundProgram
from repro.errors import BackendUnavailableError, CloseConflictError
from repro.graphs.ties import TieAnalysis, TieSides, analyze_component
from repro.ground.model import FALSE, TRUE, UNDEF
from repro.ground.state import (
    _R_FIRED,
    _R_NO_SUPPORT,
    _T_ATOM,
    _T_DIRTY,
    _T_INCROSS,
    _T_REBUILD,
    _T_SL_DISCARD,
    _T_UNF_VALID,
    BottomComponent,
    GroundGraphState,
)

__all__ = ["ArrayGroundGraphState", "numpy_available"]

# Below this many dirty atoms, close() stays in the scalar drain (numpy
# call overhead beats the loop on tiny frontiers); the unfounded cascade
# drops to a scalar stack once its frontier shrinks below _SCALAR_TAIL,
# and tie analysis uses the exact scalar pass for small components.
_BATCH_MIN = 32
_SCALAR_TAIL = 64
_ANALYZE_MIN = 128


def numpy_available() -> bool:
    """Whether the optional numpy dependency imported."""
    return np is not None


def _gather(off, nodes):
    """CSR multi-gather: flat data indices of all rows in ``nodes``.

    Returns ``(owners, flat)``: ``flat`` indexes the CSR data array with
    every entry of every requested row (rows in order, entries in row
    order), and ``owners`` repeats each row id once per entry.
    """
    counts = off[nodes + 1] - off[nodes]
    total = int(counts.sum())
    if total == 0:
        return nodes[:0], np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64) + np.repeat(off[nodes] - (ends - counts), counts)
    return np.repeat(nodes, counts), flat


class _ArrayIndex:
    """NumPy copies of one :class:`GroundIndex` plus the static node CSR.

    The node graph is the bipartite signed ground graph over
    ``n_atoms + n_rules`` nodes: atom ``u`` points at ``n_atoms + r`` for
    every rule ``r`` with a positive (sign ``True``) or negative (sign
    ``False``) occurrence of ``u``, and rule node ``n_atoms + r`` points
    at its head atom (sign ``True``).  Built once per ground index and
    cached on it; liveness filtering happens per query with boolean
    masks.
    """

    __slots__ = (
        "key",
        "pos_occ_off",
        "pos_occ",
        "neg_occ_off",
        "neg_occ",
        "head_of",
        "out_off",
        "out_src",
        "out_dst",
        "out_sign",
    )

    def __init__(self, idx) -> None:
        n_atoms, n_rules = idx.n_atoms, idx.n_rules
        self.key = (n_atoms, n_rules, len(idx.pos_occ), len(idx.neg_occ))
        poff = np.frombuffer(idx.pos_occ_off, dtype=np.intc).astype(np.int64)
        noff = np.frombuffer(idx.neg_occ_off, dtype=np.intc).astype(np.int64)
        pocc = np.frombuffer(idx.pos_occ, dtype=np.intc).astype(np.int32)
        nocc = np.frombuffer(idx.neg_occ, dtype=np.intc).astype(np.int32)
        head = np.frombuffer(idx.head_of, dtype=np.intc).astype(np.int32)
        self.pos_occ_off, self.pos_occ = poff, pocc
        self.neg_occ_off, self.neg_occ = noff, nocc
        self.head_of = head

        node_count = n_atoms + n_rules
        pos_deg = poff[1:] - poff[:-1]
        neg_deg = noff[1:] - noff[:-1]
        deg = np.empty(node_count, dtype=np.int64)
        deg[:n_atoms] = pos_deg + neg_deg
        deg[n_atoms:] = 1
        out_off = np.zeros(node_count + 1, dtype=np.int64)
        np.cumsum(deg, out=out_off[1:])
        total = int(out_off[-1])
        out_dst = np.empty(total, dtype=np.int32)
        out_sign = np.zeros(total, dtype=np.bool_)
        if pocc.size:
            owners = np.repeat(np.arange(n_atoms), pos_deg)
            dest = out_off[owners] + (np.arange(pocc.size, dtype=np.int64) - poff[owners])
            out_dst[dest] = pocc + n_atoms
            out_sign[dest] = True
        if nocc.size:
            owners = np.repeat(np.arange(n_atoms), neg_deg)
            dest = (
                out_off[owners]
                + pos_deg[owners]
                + (np.arange(nocc.size, dtype=np.int64) - noff[owners])
            )
            out_dst[dest] = nocc + n_atoms
        rule_pos = out_off[n_atoms:node_count]
        out_dst[rule_pos] = head
        out_sign[rule_pos] = True
        self.out_off = out_off
        self.out_src = np.repeat(np.arange(node_count, dtype=np.int32), deg)
        self.out_dst = out_dst
        self.out_sign = out_sign


def _array_index(idx) -> _ArrayIndex:
    cached = getattr(idx, "_array_cache", None)
    key = (idx.n_atoms, idx.n_rules, len(idx.pos_occ), len(idx.neg_occ))
    if cached is None or cached.key != key:
        cached = _ArrayIndex(idx)
        idx._array_cache = cached
    return cached


def _tarjan_csr(node_count, off, dst, roots):
    """Iterative Tarjan over a flat CSR adjacency (python-int lists).

    Same traversal order as :func:`repro.graphs.scc
    .strongly_connected_components` driven by the live successor lists
    (ascending roots, CSR edge order), so components come out in the
    same reverse topological order; the flat edge-pointer stacks avoid
    the per-node generator objects of the generic version.
    """
    index = [-1] * node_count
    lowlink = [0] * node_count
    on_stack = bytearray(node_count)
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0
    work: list[int] = []
    ptr: list[int] = []
    for root in roots:
        if index[root] != -1:
            continue
        work.append(root)
        ptr.append(off[root])
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        while work:
            u = work[-1]
            p = ptr[-1]
            end = off[u + 1]
            advanced = False
            while p < end:
                v = dst[p]
                p += 1
                if index[v] == -1:
                    ptr[-1] = p
                    index[v] = lowlink[v] = counter
                    counter += 1
                    stack.append(v)
                    on_stack[v] = 1
                    work.append(v)
                    ptr.append(off[v])
                    advanced = True
                    break
                if on_stack[v] and index[v] < lowlink[u]:
                    lowlink[u] = index[v]
            if advanced:
                continue
            work.pop()
            ptr.pop()
            lu = lowlink[u]
            if work:
                parent = work[-1]
                if lu < lowlink[parent]:
                    lowlink[parent] = lu
            if lu == index[u]:
                component: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    component.append(w)
                    if w == u:
                        break
                components.append(component)
    return components


def _scipy_components(node_count, alive_node, srcs, dsts):
    """Strongly connected components of the live subgraph via scipy.

    Labels come from the C-compiled pass; grouping is a stable argsort,
    so each component's node list comes out ascending.  Dead nodes are
    isolated in the filtered edge set (they get singleton labels) and
    are dropped.  Component order differs from Tarjan's reverse
    topological order — nothing downstream depends on it: bottom
    detection counts incoming cross edges and the tie heap orders by
    canonical atom rank, not by cid.
    """
    mat = _sp_csr(
        (np.ones(srcs.size, dtype=np.int8), (srcs, dsts)),
        shape=(node_count, node_count),
    )
    _, labels = _sp_scc(mat, directed=True, connection="strong")
    alive_ids = np.nonzero(alive_node)[0]
    alive_labels = labels[alive_ids]
    order = np.argsort(alive_labels, kind="stable")
    _, cnt = np.unique(alive_labels, return_counts=True)
    flat = alive_ids[order].tolist()
    components: list[list[int]] = []
    lo = 0
    for hi in np.cumsum(cnt).tolist():
        components.append(flat[lo:hi])
        lo = hi
    return components


class ArrayGroundGraphState(GroundGraphState):
    """Array-native evaluation state (requires the numpy extra).

    Drop-in replacement for :class:`GroundGraphState`: same constructor,
    same queries, same trail format, same provenance.  The observable
    differences are performance and :meth:`select_ties` returning every
    independent bottom tie per round instead of one.
    """

    def __init__(self, ground_program: GroundProgram):
        if np is None:
            raise BackendUnavailableError(
                "the array kernel backend requires numpy; install the optional "
                "extra (pip install repro-datalog[array]) or use backend='python'"
            )
        super().__init__(ground_program)
        # Rebind the per-state counters onto buffer-protocol storages so
        # numpy views share their memory; values are unchanged, and every
        # inherited scalar method indexes them exactly as before.
        self.status = bytearray(self.status)
        self.rule_pending = array("i", self.rule_pending)
        self.atom_support = array("i", self.atom_support)
        self.pos_live = array("i", self.pos_live)
        self._src = array("i", self._src)
        self._reason_arg = array("i", self._reason_arg)
        self._rule_slot = array("i", self._rule_slot)
        self._aidx = _array_index(self._idx)
        self._node_local = np.zeros(self.n_atoms + self.n_rules, dtype=np.int32)
        # _scc_comp_of stays the base class's plain list (scalar paths —
        # the close drain, _refine_scc, trail undo — index it constantly
        # and native list access beats numpy scalar indexing); the numpy
        # mirror for vectorized passes is cached here and dropped
        # whenever a scalar path may have rewritten entries.
        self._comp_of_cache = None
        self._install_views()

    def _install_views(self) -> None:
        self._status_np = np.frombuffer(self.status, dtype=np.uint8)
        self._atom_alive_np = np.frombuffer(self.atom_alive, dtype=np.uint8)
        self._rule_alive_np = np.frombuffer(self.rule_alive, dtype=np.uint8)
        self._pending_np = np.frombuffer(self.rule_pending, dtype=np.intc)
        self._pos_live_np = np.frombuffer(self.pos_live, dtype=np.intc)
        self._support_np = np.frombuffer(self.atom_support, dtype=np.intc)
        self._src_np = np.frombuffer(self._src, dtype=np.intc)
        self._reason_kind_np = np.frombuffer(self._reason_kind, dtype=np.uint8)
        self._reason_arg_np = np.frombuffer(self._reason_arg, dtype=np.intc)
        self._rule_slot_np = np.frombuffer(self._rule_slot, dtype=np.intc)

    def _comp_np(self):
        """The numpy mirror of the node → cid map (rebuilt when stale)."""
        cache = self._comp_of_cache
        if cache is None:
            comp_of = self._scc_comp_of
            cache = np.fromiter(comp_of, dtype=np.int32, count=len(comp_of))
            self._comp_of_cache = cache
        return cache

    def _refine_scc(self) -> None:
        super()._refine_scc()
        self._comp_of_cache = None

    def trail_undo(self, mark: int) -> None:
        super().trail_undo(mark)
        self._comp_of_cache = None

    # -- closure -------------------------------------------------------------

    def close(self) -> None:
        t_close = perf_counter()
        idx = self._idx
        if self._initial:
            self._initial = False
            for r_index in idx.empty_body_rules:
                if self.rule_alive[r_index]:
                    self._fire(r_index)
            status = self.status
            for index in idx.zero_support_atoms:
                if status[index] == UNDEF and self.atom_support[index] == 0:
                    self._set(index, FALSE, _R_NO_SUPPORT)
        dirty = self._dirty
        while dirty:
            if len(dirty) >= _BATCH_MIN:
                self._close_batch()
            else:
                self._close_scalar_drain()
        self.phase_s["close_s"] += perf_counter() - t_close

    def _close_scalar_drain(self) -> None:
        """The base kernel's per-atom loop, bounded by the batch threshold.

        Verbatim port of :meth:`GroundGraphState.close`'s hot loop (with
        scalar casts on the numpy component map); hands back to the
        batched path as soon as fires/kills grow the worklist past
        ``_BATCH_MIN``.
        """
        idx = self._idx
        dirty = self._dirty
        status = self.status
        atom_alive = self.atom_alive
        rule_alive = self.rule_alive
        rule_pending = self.rule_pending
        pos_live = self.pos_live
        pos_occ_t = idx.pos_occ_t
        neg_occ_t = idx.neg_occ_t
        live_atoms, atom_slot = self._live_atoms, self._atom_slot
        comp_of = self._scc_comp_of
        track = comp_of is not None
        comps = self._scc_comps
        scc_dirty = self._scc_dirty
        incross = self._scc_incross
        bottom = self._scc_bottom
        heap = self._tie_heap
        sourceless = self._unf_sourceless
        trail = self._trail
        n_atoms = self.n_atoms
        heap_key = self._heap_key

        while dirty and len(dirty) < _BATCH_MIN:
            index = dirty.popleft()
            if not atom_alive[index]:
                continue
            atom_alive[index] = 0
            self._live_atom_count -= 1
            slot = atom_slot[index]
            last = live_atoms.pop()
            if last != index:
                live_atoms[slot] = last
                atom_slot[last] = slot
            atom_slot[index] = -1
            if trail is not None:
                trail.append((_T_ATOM, index, slot))
            if sourceless and index in sourceless:
                sourceless.discard(index)
                if trail is not None:
                    trail.append((_T_SL_DISCARD, index))
            cu = -1
            if track:
                cu = comp_of[index]
                if cu not in scc_dirty:
                    scc_dirty.add(cu)
                    if trail is not None:
                        trail.append((_T_DIRTY, cu))
            value = status[index]
            if value == TRUE:
                if self._unf_valid and sourceless:
                    self._unf_valid = False
                    if trail is not None:
                        trail.append((_T_UNF_VALID, True))
                for r in pos_occ_t[index]:
                    pos_live[r] -= 1
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if trail is not None:
                                    trail.append((_T_INCROSS, cr))
                                if count == 0:
                                    bottom.add(cr)
                                    heappush(heap, (heap_key(comps[cr]), cr))
                        pending = rule_pending[r] - 1
                        rule_pending[r] = pending
                        if pending == 0:
                            self._fire(r)
                for r in neg_occ_t[index]:
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if trail is not None:
                                    trail.append((_T_INCROSS, cr))
                                if count == 0:
                                    bottom.add(cr)
                                    heappush(heap, (heap_key(comps[cr]), cr))
                        self._kill_rule(r)
            else:
                for r in neg_occ_t[index]:
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if trail is not None:
                                    trail.append((_T_INCROSS, cr))
                                if count == 0:
                                    bottom.add(cr)
                                    heappush(heap, (heap_key(comps[cr]), cr))
                        pending = rule_pending[r] - 1
                        rule_pending[r] = pending
                        if pending == 0:
                            self._fire(r)
                for r in pos_occ_t[index]:
                    pos_live[r] -= 1
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if trail is not None:
                                    trail.append((_T_INCROSS, cr))
                                if count == 0:
                                    bottom.add(cr)
                                    heappush(heap, (heap_key(comps[cr]), cr))
                        self._kill_rule(r)

    def _close_batch(self) -> None:
        """Drain the current worklist as one vectorized frontier batch.

        Phase 1 (scalar, in worklist order) performs the per-atom
        bookkeeping the trail format requires; phases 2–5 run the
        per-edge counter updates, cross-edge accounting, and the kill/
        fire sweeps as array operations against rule liveness sampled at
        batch start (kills happen strictly after all decrements, which
        keeps the trail's inverse exact — see the module docstring).
        """
        dirty = self._dirty
        status = self.status
        atom_alive = self.atom_alive
        live_atoms, atom_slot = self._live_atoms, self._atom_slot
        sourceless = self._unf_sourceless
        trail = self._trail
        comp_of = self._scc_comp_of
        track = comp_of is not None
        scc_dirty = self._scc_dirty
        batch_true: list[int] = []
        batch_false: list[int] = []

        while dirty:
            index = dirty.popleft()
            if not atom_alive[index]:
                continue
            atom_alive[index] = 0
            self._live_atom_count -= 1
            slot = atom_slot[index]
            last = live_atoms.pop()
            if last != index:
                live_atoms[slot] = last
                atom_slot[last] = slot
            atom_slot[index] = -1
            if trail is not None:
                trail.append((_T_ATOM, index, slot))
            if sourceless and index in sourceless:
                sourceless.discard(index)
                if trail is not None:
                    trail.append((_T_SL_DISCARD, index))
            if track:
                cu = comp_of[index]
                if cu not in scc_dirty:
                    scc_dirty.add(cu)
                    if trail is not None:
                        trail.append((_T_DIRTY, cu))
            if status[index] == TRUE:
                if self._unf_valid and sourceless:
                    self._unf_valid = False
                    if trail is not None:
                        trail.append((_T_UNF_VALID, True))
                batch_true.append(index)
            else:
                batch_false.append(index)

        aidx = self._aidx
        n_rules = self.n_rules
        rule_alive_np = self._rule_alive_np
        pending_np = self._pending_np
        pos_live_np = self._pos_live_np
        kill_parts: list = []
        touched = False
        cross_src: list = []
        cross_dst: list = []

        if batch_true:
            A = np.fromiter(batch_true, dtype=np.int64, count=len(batch_true))
            owners, flat = _gather(aidx.pos_occ_off, A)
            P = aidx.pos_occ[flat]
            if P.size:
                pos_live_np -= np.bincount(P, minlength=n_rules).astype(np.intc)
                alive = rule_alive_np[P] != 0
                Pa = P[alive]
                if Pa.size:
                    pending_np -= np.bincount(Pa, minlength=n_rules).astype(np.intc)
                    touched = True
                    if track:
                        cross_src.append(owners[alive])
                        cross_dst.append(Pa)
            owners_n, flat_n = _gather(aidx.neg_occ_off, A)
            N = aidx.neg_occ[flat_n]
            if N.size:
                alive_n = rule_alive_np[N] != 0
                Na = N[alive_n]
                if Na.size:
                    kill_parts.append(Na)
                    if track:
                        cross_src.append(owners_n[alive_n])
                        cross_dst.append(Na)
        if batch_false:
            A = np.fromiter(batch_false, dtype=np.int64, count=len(batch_false))
            owners_n, flat_n = _gather(aidx.neg_occ_off, A)
            N = aidx.neg_occ[flat_n]
            if N.size:
                alive_n = rule_alive_np[N] != 0
                Na = N[alive_n]
                if Na.size:
                    pending_np -= np.bincount(Na, minlength=n_rules).astype(np.intc)
                    touched = True
                    if track:
                        cross_src.append(owners_n[alive_n])
                        cross_dst.append(Na)
            owners, flat = _gather(aidx.pos_occ_off, A)
            P = aidx.pos_occ[flat]
            if P.size:
                pos_live_np -= np.bincount(P, minlength=n_rules).astype(np.intc)
                alive = rule_alive_np[P] != 0
                Pa = P[alive]
                if Pa.size:
                    kill_parts.append(Pa)
                    if track:
                        cross_src.append(owners[alive])
                        cross_dst.append(Pa)

        if track and cross_src:
            src_all = np.concatenate(cross_src)
            dst_all = np.concatenate(cross_dst)
            comp_np = self._comp_np()
            cu_arr = comp_np[src_all]
            cr_arr = comp_np[dst_all.astype(np.int64) + self.n_atoms]
            cross = cr_arr != cu_arr
            if cross.any():
                hit = cr_arr[cross]
                lo = int(hit.min())
                ks_arr = np.bincount(hit.astype(np.int64) - lo)
                cids = np.nonzero(ks_arr)[0]
                incross = self._scc_incross
                bottom = self._scc_bottom
                heap = self._tie_heap
                comps = self._scc_comps
                heap_key = self._heap_key
                ks = ks_arr[cids].tolist()
                for cid, k in zip((cids + lo).tolist(), ks):
                    old = incross[cid]
                    new = old - k
                    incross[cid] = new
                    if trail is not None:
                        entry = (_T_INCROSS, cid)
                        for _ in range(k):
                            trail.append(entry)
                    # Crossed (or landed on) zero in this batch: exactly
                    # when the undo replay will see the count read 0 once.
                    if new <= 0 < old:
                        bottom.add(cid)
                        heappush(heap, (heap_key(comps[cid]), cid))

        kills_np = None
        if kill_parts:
            kb = np.bincount(np.concatenate(kill_parts), minlength=n_rules)
            kills_np = np.nonzero((kb != 0) & (rule_alive_np != 0))[0]
        fires_est = (
            int(np.count_nonzero((pending_np == 0) & (rule_alive_np != 0))) if touched else 0
        )
        nkills = 0 if kills_np is None else int(kills_np.size)
        if trail is None and nkills + fires_est >= _SCALAR_TAIL:
            self._bulk_kill_fire(kills_np if nkills else None)
        else:
            if nkills:
                rule_alive = self.rule_alive
                for r in kills_np.tolist():
                    if rule_alive[r]:
                        self._kill_rule(r)
            if touched:
                F = np.nonzero((pending_np == 0) & (rule_alive_np != 0))[0]
                rule_alive = self.rule_alive
                for r in F.tolist():
                    if rule_alive[r]:
                        self._fire(r)

    def _bulk_kill_fire(self, kills) -> None:
        """Vectorized rule kills and fires for one trail-less batch.

        Equivalent to calling :meth:`_kill_rule` on every rule in
        ``kills`` (ascending) and then :meth:`_fire` on every live rule
        whose pending count reached zero (ascending) — the same order
        the scalar fallback uses.  Head support drops by bincount, heads
        that lose their last support go false, fired heads go true with
        the lowest firing rule as provenance (reversed scatter: last
        write wins, so the reversed ascending order keeps the first),
        and the live-rule compaction is rebuilt wholesale instead of
        swap-removed per rule.  Only callable without an active trail —
        undo needs the per-rule records of the scalar path.
        """
        n_atoms = self.n_atoms
        aidx = self._aidx
        rule_alive_np = self._rule_alive_np
        status_np = self._status_np
        support_np = self._support_np
        reason_kind_np = self._reason_kind_np
        reason_arg_np = self._reason_arg_np
        dirty = self._dirty
        dead_parts: list = []

        if kills is not None:
            rule_alive_np[kills] = 0
            dead_parts.append(kills)
            heads = aidx.head_of[kills].astype(np.int64)
            support_np -= np.bincount(heads, minlength=n_atoms).astype(np.intc)
            if self._unf_valid:
                lost = self._src_np[heads] == kills
                if lost.any():
                    lh = heads[lost]
                    self._src_np[lh] = -1
                    self._unf_lost.extend(lh.tolist())
            newly_false = np.unique(
                heads[(support_np[heads] == 0) & (status_np[heads] == UNDEF)]
            )
            if newly_false.size:
                status_np[newly_false] = FALSE
                reason_kind_np[newly_false] = _R_NO_SUPPORT
                dirty.extend(newly_false.tolist())

        fires = np.nonzero((self._pending_np == 0) & (rule_alive_np != 0))[0]
        if fires.size:
            rule_alive_np[fires] = 0
            dead_parts.append(fires)
            heads = aidx.head_of[fires].astype(np.int64)
            support_np -= np.bincount(heads, minlength=n_atoms).astype(np.intc)
            conflict = status_np[heads] == FALSE
            if conflict.any():
                i = int(np.nonzero(conflict)[0][0])
                r, h = int(fires[i]), int(heads[i])
                raise CloseConflictError(
                    h,
                    f"rule instance #{r} fired but its head atom "
                    f"{self.gp.atoms.atom(h)} is already false",
                )
            undef = status_np[heads] == UNDEF
            nh = heads[undef]
            nr = fires[undef]
            status_np[nh] = TRUE
            reason_kind_np[nh] = _R_FIRED
            reason_arg_np[nh[::-1]] = nr[::-1].astype(np.intc)
            newly_true = np.unique(nh)
            if newly_true.size:
                dirty.extend(newly_true.tolist())

        if not dead_parts:
            return
        gone = dead_parts[0] if len(dead_parts) == 1 else np.concatenate(dead_parts)
        live_rules = self._live_rules
        live_arr = np.fromiter(live_rules, dtype=np.int64, count=len(live_rules))
        still = live_arr[rule_alive_np[live_arr] != 0]
        live_rules[:] = still.tolist()
        rule_slot_np = self._rule_slot_np
        rule_slot_np[still] = np.arange(still.size, dtype=np.intc)
        rule_slot_np[gone] = -1
        if self._scc_comp_of is None:
            return
        comp_np = self._comp_np()
        cr_arr = comp_np[gone + n_atoms]
        self._scc_dirty.update(np.unique(cr_arr).tolist())
        heads = aidx.head_of[gone].astype(np.int64)
        cross = (self._atom_alive_np[heads] != 0) & (comp_np[heads] != cr_arr)
        if not cross.any():
            return
        hit = comp_np[heads[cross]]
        lo = int(hit.min())
        cnts = np.bincount(hit.astype(np.int64) - lo)
        incross = self._scc_incross
        bottom = self._scc_bottom
        heap = self._tie_heap
        comps = self._scc_comps
        heap_key = self._heap_key
        nz = np.nonzero(cnts)[0]
        for cid, k in zip((nz + lo).tolist(), cnts[nz].tolist()):
            old = incross[cid]
            new = old - k
            incross[cid] = new
            if new <= 0 < old:
                bottom.add(cid)
                heappush(heap, (heap_key(comps[cid]), cid))

    # -- unfounded-set cascade ----------------------------------------------

    def _unf_rebuild(self) -> None:
        """Layered vectorized positive cascade installing fresh sources.

        Under an active trail (enumeration) or on small live graphs the
        exact scalar rebuild runs instead — the trail records it appends
        are part of the undo contract, and tiny cascades are faster in
        the interpreter than through numpy call overhead.
        """
        if self._trail is not None or self._live_atom_count < 4 * _BATCH_MIN:
            super()._unf_rebuild()
            return
        aidx = self._aidx
        alive_atom = self._atom_alive_np != 0
        live_rule = self._rule_alive_np != 0
        pend = self._pos_live_np.astype(np.int32)
        derived = np.zeros(self.n_atoms, dtype=bool)
        big = np.iinfo(np.int32).max
        src_new = np.full(self.n_atoms, big, dtype=np.int32)
        head_of = aidx.head_of
        frontier = np.nonzero(live_rule & (pend == 0))[0]
        while frontier.size:
            if frontier.size < _SCALAR_TAIL:
                self._unf_scalar_tail(frontier, pend, derived, src_new)
                break
            heads = head_of[frontier]
            m = alive_atom[heads] & ~derived[heads]
            cand_r = frontier[m]
            cand_h = heads[m]
            if cand_h.size == 0:
                break
            newly = np.unique(cand_h)
            derived[newly] = True
            # Deterministic source choice: the smallest deriving rule.
            np.minimum.at(src_new, cand_h, cand_r.astype(np.int32))
            _, flat = _gather(aidx.pos_occ_off, newly)
            R = aidx.pos_occ[flat]
            if R.size == 0:
                break
            np.subtract.at(pend, R, 1)
            Ru = np.unique(R)
            frontier = Ru[live_rule[Ru] & (pend[Ru] == 0)].astype(np.int64)
        src_final = np.where(derived, src_new, -1).astype(np.intc)
        self._src_np[alive_atom] = src_final[alive_atom]
        self._unf_sourceless = set(np.nonzero(alive_atom & ~derived)[0].tolist())
        self._unf_lost = []
        self._unf_valid = True

    def _unf_scalar_tail(self, frontier, pend, derived, src_new) -> None:
        """Drain a small cascade frontier with the scalar stack loop."""
        head_of_t = self._idx.head_of_t
        pos_occ_t = self._idx.pos_occ_t
        atom_alive = self.atom_alive
        rule_alive = self.rule_alive
        stack = frontier.tolist()
        while stack:
            r = stack.pop()
            h = head_of_t[r]
            if derived[h] or not atom_alive[h]:
                continue
            derived[h] = True
            src_new[h] = r
            for r2 in pos_occ_t[h]:
                p = pend[r2] - 1
                pend[r2] = p
                if p == 0 and rule_alive[r2]:
                    stack.append(r2)

    # -- SCC condensation and tie analysis -----------------------------------

    def _rebuild_scc(self, *, eager_sides: bool = True) -> None:
        if self._trail is not None:
            self._trail.append((_T_REBUILD,))
        self._tie_sides = {}
        n_atoms = self.n_atoms
        node_count = n_atoms + self.n_rules
        aidx = self._aidx
        alive_node = np.empty(node_count, dtype=bool)
        alive_node[:n_atoms] = self._atom_alive_np != 0
        alive_node[n_atoms:] = self._rule_alive_np != 0
        keep = alive_node[aidx.out_src] & alive_node[aidx.out_dst]
        srcs = aidx.out_src[keep]
        dsts = aidx.out_dst[keep]
        if _sp_scc is not None and node_count >= _ANALYZE_MIN:
            components = _scipy_components(node_count, alive_node, srcs, dsts)
        else:
            counts = np.bincount(srcs, minlength=node_count)
            off = np.zeros(node_count + 1, dtype=np.int64)
            np.cumsum(counts, out=off[1:])
            live_nodes = np.nonzero(alive_node)[0].tolist()
            components = _tarjan_csr(node_count, off.tolist(), dsts.tolist(), live_nodes)

        base = self._scc_next_cid
        comps: dict[int, list[int]] = {}
        flat_nodes: list[int] = []
        lens: list[int] = []
        for offset, component in enumerate(components):
            component.sort()
            comps[base + offset] = component
            flat_nodes.extend(component)
            lens.append(len(component))
        comp_of = np.full(node_count, -1, dtype=np.int32)
        if flat_nodes:
            comp_of[np.fromiter(flat_nodes, dtype=np.int64, count=len(flat_nodes))] = np.repeat(
                np.arange(base, base + len(components), dtype=np.int32),
                np.fromiter(lens, dtype=np.int64, count=len(lens)),
            )
        self._scc_comps = comps
        self._scc_comp_of = comp_of.tolist()
        self._comp_of_cache = comp_of
        self._scc_next_cid = base + len(components)
        self._scc_bottom_obj = {}
        self._scc_dirty.clear()

        ncomps = len(components)
        if srcs.size:
            cs = comp_of[srcs]
            cd = comp_of[dsts]
            cross = cs != cd
            cnt = np.bincount(cd[cross] - base, minlength=ncomps)
        else:
            cnt = np.zeros(ncomps, dtype=np.int64)
        incross = {base + i: int(c) for i, c in enumerate(cnt.tolist())}
        self._scc_incross = incross
        bottom = {cid for cid, c in incross.items() if c == 0}
        self._scc_bottom = bottom
        heap = self._tie_heap
        for cid in bottom:
            heappush(heap, (self._heap_key(comps[cid]), cid))

        if eager_sides:
            # One pooled Lemma-1 pass over every cyclic component while
            # the fresh CSR state is hot: later bottom queries — one per
            # tie round in sequential-DAG families — become cache hits
            # instead of per-component spanning walks.  Non-ties are
            # simply left uncached (they re-analyze scalar for the
            # odd-cycle witness if ever queried).
            multi = [cid for cid, component in comps.items() if len(component) > 1]
            if multi:
                t0 = perf_counter()
                spans, side_l, bad_comps = self._pooled_sides(multi)
                tie_sides = self._tie_sides
                for cid, start, end in spans:
                    if cid not in bad_comps:
                        component = comps[cid]
                        tie_sides[cid] = TieSides(
                            set(component), dict(zip(component, side_l[start:end]))
                        )
                dt = perf_counter() - t0
                self.phase_s["tie_analysis_s"] += dt
                self._ta_overlap += dt

    def _bottom_component(self, cid: int, *, fresh: bool = False) -> BottomComponent:
        obj = self._scc_bottom_obj.get(cid)
        if obj is None:
            comps = self._scc_comps
            assert comps is not None
            if fresh or cid in self._tie_sides or len(comps[cid]) < _ANALYZE_MIN:
                # Oracle path, cache hit, or too small to pool: the base
                # implementation covers all three (it serves cached sides
                # itself and runs the CSR-direct scalar pass on a miss).
                return super()._bottom_component(cid, fresh=fresh)
            self._analyze_bottom_batch([cid])
            obj = self._scc_bottom_obj[cid]
        return obj

    def _analyze_bottom_batch(self, cids: list) -> None:
        """Pooled Lemma-1 pass over many bottom components at once.

        Components whose (K, L) sides are already in the incremental
        cache — installed by the eager rebuild pass or derived by
        refinement — skip the pooled pass entirely and just materialize
        their :class:`BottomComponent`.  The rest run the vectorized
        analysis below, and every clean result is installed into the
        cache.  Results land in the memo table either way.

        Bottom components are disjoint, so their nodes pool into one
        array: edges of every component are gathered in a single CSR
        multi-gather, membership is read off the component map (a current
        cid's members are exactly the live nodes mapped to it), sides are
        assigned by a scalar spanning-tree walk per component over the
        pooled local CSR (each component's root is its first node, side
        0 — the scalar :func:`~repro.graphs.ties.analyze_component`
        convention, and path-independence inside a tie makes the
        partition identical), and every in-component edge of every
        component is verified in one vectorized comparison.  Components
        with a violated edge re-run the exact scalar pass to extract the
        odd-cycle witness.
        """
        comps = self._scc_comps
        assert comps is not None
        tie_sides = self._tie_sides
        bottom_obj = self._scc_bottom_obj
        n_atoms = self.n_atoms
        pool_cids: list = []
        for cid in cids:
            cached = tie_sides.get(cid)
            if cached is None:
                pool_cids.append(cid)
                continue
            component = comps[cid]
            cut = bisect_left(component, n_atoms)
            bottom_obj[cid] = BottomComponent(
                component[:cut],
                [n - n_atoms for n in component[cut:]],
                cached.to_analysis(component),
                n_atoms,
            )
        if not pool_cids:
            return
        t0 = perf_counter()
        spans, side_l, bad_comps = self._pooled_sides(pool_cids)
        for cid, start, end in spans:
            component = comps[cid]
            if cid in bad_comps:
                analysis = analyze_component(component, self._live_successors)
            else:
                sides_map = dict(zip(component, side_l[start:end]))
                tie_sides[cid] = TieSides(set(component), sides_map)
                analysis = TieAnalysis(is_tie=True, sides=sides_map)
            # Node lists are sorted and atoms precede shifted rule nodes.
            cut = bisect_left(component, n_atoms)
            atom_ids = component[:cut]
            rule_ids = [n - n_atoms for n in component[cut:]]
            bottom_obj[cid] = BottomComponent(atom_ids, rule_ids, analysis, n_atoms)
        dt = perf_counter() - t0
        self.phase_s["tie_analysis_s"] += dt
        self._ta_overlap += dt

    def _pooled_sides(
        self, cids: list
    ) -> tuple[list[tuple[int, int, int]], list[int], set]:
        """Vectorized (K, L) assignment for disjoint components.

        Returns ``(spans, side_l, bad_comps)``: per-cid ``(cid, start,
        end)`` slices into the pooled side list, the side per pooled
        node, and the cids with a partition-violating edge (their sides
        are meaningless — they are not ties).
        """
        comps = self._scc_comps
        assert comps is not None and self._scc_comp_of is not None
        comp_of = self._comp_np()
        aidx = self._aidx
        pooled: list[int] = []
        spans: list[tuple[int, int, int]] = []
        for cid in cids:
            start = len(pooled)
            pooled.extend(comps[cid])
            spans.append((cid, start, len(pooled)))
        k = len(pooled)
        nodes = np.fromiter(pooled, dtype=np.int64, count=k)
        owners, flat = _gather(aidx.out_off, nodes)
        dst = aidx.out_dst[flat]
        inside = comp_of[dst] == comp_of[owners]
        src_in = owners[inside]
        dst_in = dst[inside]
        sign_in = aidx.out_sign[flat][inside]
        local = self._node_local
        local[nodes] = np.arange(k, dtype=np.int32)
        ls = local[src_in]  # non-decreasing: owners follow pooled order
        ld = local[dst_in]
        if _sp_dijkstra is not None and k >= 4 * _SCALAR_TAIL:
            # Parity-encoding shortest path: weight 2 on positive edges,
            # 1 on negative, a weight-2 edge from a super-source to each
            # component root.  dist = 2·#pos + #neg, so dist mod 2 is
            # the negative-edge parity of SOME root path — and inside a
            # tie every root path has the same parity, so this is the
            # spanning-tree side.  In a non-tie the parities disagree,
            # but then NO assignment satisfies every edge and the
            # vectorized verify below flags the component regardless.
            roots = np.fromiter((s for _, s, _ in spans), dtype=np.int64, count=len(spans))
            w = np.where(sign_in, 2, 1).astype(np.int64)
            src_all = np.concatenate([ls, np.full(roots.size, k, dtype=np.int64)])
            dst_all = np.concatenate([ld, roots])
            w_all = np.concatenate([w, np.full(roots.size, 2, dtype=np.int64)])
            mat = _sp_csr((w_all, (src_all, dst_all)), shape=(k + 1, k + 1))
            dist = _sp_dijkstra(mat, directed=True, indices=k)
            side_arr = (dist[:k].astype(np.int64) & 1).astype(np.int8)
        else:
            cnt = np.bincount(ls, minlength=k)
            loff = np.zeros(k + 1, dtype=np.int64)
            np.cumsum(cnt, out=loff[1:])
            loff_l = loff.tolist()
            ld_l = ld.tolist()
            parity_l = (~sign_in).astype(np.int8).tolist()
            side = [-1] * k
            stack: list[int] = []
            for _, start, _ in spans:
                side[start] = 0
                stack.append(start)
                while stack:
                    u = stack.pop()
                    su = side[u]
                    for p in range(loff_l[u], loff_l[u + 1]):
                        v = ld_l[p]
                        if side[v] == -1:
                            side[v] = su ^ parity_l[p]
                            stack.append(v)
            side_arr = np.fromiter(side, dtype=np.int8, count=k)
        bad = np.where(sign_in, side_arr[ls] != side_arr[ld], side_arr[ls] == side_arr[ld])
        bad_comps: set = set()
        if bool(bad.any()):
            bad_comps = set(comp_of[src_in[bad]].tolist())
        return spans, side_arr.tolist(), bad_comps

    def select_ties(self) -> list[BottomComponent]:
        """All current bottom ties, in canonical (smallest-atom) order.

        One batched round: the returned components are pairwise disjoint
        bottom SCCs with no incoming cross edges, so applying every tie
        choice and closing once reaches the same closure as the python
        kernel's one-tie-per-round loop.  The lazy-discard heap is left
        untouched — :meth:`select_tie` (used by the enumerators) keeps
        its exact sequential contract on this backend too.
        """
        t0 = perf_counter()
        self._ta_overlap = 0.0
        self._require_closed()
        if self._scc_comps is None:
            self._rebuild_scc()
        elif self._scc_dirty:
            self._refine_scc()
        comps = self._scc_comps
        assert comps is not None
        tie_sides = self._tie_sides
        pending = []
        pooled_len = 0
        for cid in self._scc_bottom:
            if len(comps[cid]) == 1:
                raise AssertionError(
                    "singleton bottom component survived close(); graph state corrupt"
                )
            if cid not in self._scc_bottom_obj:
                if cid in tie_sides:
                    # Cache hit: materialized straight from the stored
                    # sides, no spanning walk at all.
                    super()._bottom_component(cid)
                else:
                    pending.append(cid)
                    pooled_len += len(comps[cid])
        if pending:
            if pooled_len < _SCALAR_TAIL:
                for cid in pending:
                    super()._bottom_component(cid)
            else:
                self._analyze_bottom_batch(pending)
        keyed: list[tuple[int, BottomComponent]] = []
        for cid in self._scc_bottom:
            obj = self._bottom_component(cid)
            if obj.is_tie:
                keyed.append((self._heap_key(comps[cid]), obj))
        keyed.sort(key=lambda kv: kv[0])
        ties = [obj for _, obj in keyed]
        if ties:
            self.tie_rounds += 1
        # Sides work inside this window is booked under tie_analysis_s.
        self.phase_s["tie_select_s"] += (perf_counter() - t0) - self._ta_overlap
        return ties

    # -- cloning -------------------------------------------------------------

    def clone(self) -> "ArrayGroundGraphState":
        other = object.__new__(ArrayGroundGraphState)
        other.gp = self.gp
        other._idx = self._idx
        other._aidx = self._aidx
        other.n_atoms = self.n_atoms
        other.n_rules = self.n_rules
        other.status = bytearray(self.status)
        other.atom_alive = bytearray(self.atom_alive)
        other.rule_alive = bytearray(self.rule_alive)
        other.rule_pending = array("i", self.rule_pending)
        other.atom_support = array("i", self.atom_support)
        other.pos_live = array("i", self.pos_live)
        other._live_atoms = list(self._live_atoms)
        other._atom_slot = list(self._atom_slot)
        other._live_rules = list(self._live_rules)
        other._rule_slot = array("i", self._rule_slot)
        other._live_atom_count = self._live_atom_count
        other._order = self._order
        other._reason_kind = bytearray(self._reason_kind)
        other._reason_arg = array("i", self._reason_arg)
        other._labels = list(self._labels)
        other._dirty = deque(self._dirty)
        other._initial = self._initial
        other._scratch = self._scratch
        other._src = array("i", self._src)
        other._unf_valid = self._unf_valid
        other._unf_lost = list(self._unf_lost)
        other._unf_sourceless = set(self._unf_sourceless)
        other._scc_comps = dict(self._scc_comps) if self._scc_comps is not None else None
        comp_of = self._scc_comp_of
        other._scc_comp_of = None if comp_of is None else list(comp_of)
        other._comp_of_cache = None
        other._scc_incross = dict(self._scc_incross)
        other._scc_bottom = set(self._scc_bottom)
        other._scc_bottom_obj = dict(self._scc_bottom_obj)
        other._scc_next_cid = self._scc_next_cid
        other._scc_dirty = set(self._scc_dirty)
        other._tie_sides = dict(self._tie_sides)
        other._ta_overlap = 0.0
        other._tie_heap = list(self._tie_heap)
        other._trail = None
        other.phase_s = dict(self.phase_s)
        other.tie_rounds = self.tie_rounds
        other._node_local = np.zeros(self.n_atoms + self.n_rules, dtype=np.int32)
        other._install_views()
        return other
