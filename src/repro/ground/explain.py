"""Provenance: why did an atom get its truth value?

Every value assigned during an interpreter run carries a reason recorded by
:class:`~repro.ground.state.GroundGraphState` (stored in flat kind/argument
buffers, reconstituted per atom by ``reason_of``):

* ``delta`` — the atom is in the initial database Δ;
* ``edb-absent`` — an EDB atom outside Δ (closed world);
* ``fired`` — head of a rule instance whose body became all-true (the
  instance and its premises are part of the explanation);
* ``no-support`` — every rule instance with this head was deleted because
  a body literal failed;
* ``unfounded`` — falsified as part of a greatest unfounded set (with the
  well-founded iteration number when available);
* ``tie`` — assigned while breaking a tie (with the Lemma-1 side);
* ``stuck`` — never assigned: the atom sits in a bottom component that is
  not a tie (the interpreter's only failure mode, §3).

:func:`explain` builds a finite explanation tree: ``fired`` nodes recurse
into their premises (each premise was valued strictly earlier, so the
recursion terminates; a visited-set guards re-visits), other kinds are
leaves.  :func:`format_explanation` renders it for humans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datalog.atoms import Atom
from repro.errors import SemanticsError
from repro.ground.model import FALSE, TRUE, UNDEF
from repro.ground.state import GroundGraphState

__all__ = ["Explanation", "explain", "format_explanation"]


@dataclass(frozen=True)
class Explanation:
    """One node of an explanation tree."""

    atom: Atom
    value: Optional[bool]
    kind: str
    detail: str = ""
    rule: Optional[str] = None
    premises: tuple["Explanation", ...] = ()

    def leaf_kinds(self) -> set[str]:
        """All reason kinds appearing at the leaves (handy for tests)."""
        if not self.premises:
            return {self.kind}
        kinds: set[str] = set()
        for premise in self.premises:
            kinds |= premise.leaf_kinds()
        return kinds


def _value_of(status: int) -> Optional[bool]:
    return {TRUE: True, FALSE: False, UNDEF: None}[status]


def explain(state: GroundGraphState, atom: Atom, *, max_depth: int = 12) -> Explanation:
    """Explain the value of ``atom`` in a finished interpreter state.

    Pass the ``state`` attribute of a
    :class:`~repro.semantics.well_founded.WellFoundedRun` or
    :class:`~repro.semantics.tie_breaking.TieBreakingRun`.
    """
    gp = state.gp
    index = gp.atoms.get(atom)
    if index is None:
        if atom.predicate in gp.program.edb_predicates:
            present = gp.database.contains_atom(atom)
            return Explanation(
                atom, present, "delta" if present else "edb-absent"
            )
        return Explanation(
            atom,
            False,
            "not-materialized",
            detail="outside the upper-bound model: false in every run",
        )
    return _explain_index(state, index, set(), max_depth)


def _explain_index(
    state: GroundGraphState, index: int, visited: set[int], depth: int
) -> Explanation:
    gp = state.gp
    atom = gp.atoms.atom(index)
    value = _value_of(state.status[index])
    reason = state.reason_of(index)

    if reason is None:
        return Explanation(
            atom,
            value,
            "stuck",
            detail="in a bottom component that is not a tie (no odd-cycle-free resolution)",
        )
    kind = reason[0]
    if kind == "fired":
        r_index = reason[1]
        gr = gp.rules[r_index]
        rule_text = str(gp.instantiated_rule(gr))
        if index in visited or depth <= 0:
            return Explanation(atom, value, "fired", rule=rule_text)
        premises = []
        for premise in (*gr.pos, *gr.neg):
            if premise == index:
                continue
            premises.append(
                _explain_index(state, premise, visited | {index}, depth - 1)
            )
        return Explanation(atom, value, "fired", rule=rule_text, premises=tuple(premises))
    if kind == "assigned":
        label = reason[1]
        if label and label[0] == "unfounded":
            detail = "member of a greatest unfounded set"
            if label[1] is not None:
                detail += f" (well-founded iteration {label[1]})"
            return Explanation(atom, value, "unfounded", detail=detail)
        if label and label[0] == "tie":
            side = "K (true side)" if value else "L (false side)"
            return Explanation(
                atom, value, "tie", detail=f"assigned on side {side} of a broken tie"
            )
        return Explanation(atom, value, "assigned", detail=str(label))
    if kind == "delta":
        return Explanation(atom, value, "delta", detail="fact of the initial database Δ")
    if kind == "edb-absent":
        return Explanation(atom, value, "edb-absent", detail="EDB atom not in Δ")
    if kind == "no-support":
        return Explanation(
            atom, value, "no-support", detail="every rule instance for it was refuted"
        )
    raise SemanticsError(f"unknown provenance record {reason!r}")


def format_explanation(explanation: Explanation, *, indent: int = 0) -> str:
    """Render an explanation tree as indented text."""
    value = {True: "true", False: "false", None: "undefined"}[explanation.value]
    pad = "  " * indent
    line = f"{pad}{explanation.atom} = {value}"
    if explanation.kind == "fired":
        line += f"  [derived by {explanation.rule}]"
    elif explanation.detail:
        line += f"  [{explanation.detail}]"
    lines = [line]
    for premise in explanation.premises:
        lines.append(format_explanation(premise, indent=indent + 1))
    return "\n".join(lines)
