"""Kernel backend selection: ``python`` | ``array`` | ``auto``.

The evaluation kernel comes in two interchangeable implementations of
the same state contract: the pure-Python
:class:`~repro.ground.state.GroundGraphState` (always available, the
differential oracle) and the NumPy-vectorized
:class:`~repro.ground.array_state.ArrayGroundGraphState` (the optional
``[array]`` extra).  :func:`make_state` is the single construction point
the interpreters go through; callers name a backend (or pass ``None``
for the python default) and :func:`resolve_backend` turns it into a
concrete choice:

* ``"python"`` — always the scalar kernel;
* ``"array"`` — the vectorized kernel, or
  :class:`~repro.errors.BackendUnavailableError` when numpy is missing;
* ``"auto"`` — the vectorized kernel when numpy imports **and** the
  ground graph has at least :data:`AUTO_ARRAY_THRESHOLD` nodes
  (below that, per-call numpy overhead beats the interpreter loops);
  silently the scalar kernel otherwise.
"""

from __future__ import annotations

from repro.datalog.grounding import GroundProgram
from repro.errors import BackendUnavailableError, SemanticsError
from repro.ground.state import GroundGraphState

__all__ = ["AUTO_ARRAY_THRESHOLD", "BACKENDS", "make_state", "resolve_backend"]

# Node count (atoms + rule instances) at which backend="auto" switches
# from the scalar kernel to the array kernel.
AUTO_ARRAY_THRESHOLD = 2048

BACKENDS = ("python", "array", "auto")


def _numpy_available() -> bool:
    from repro.ground.array_state import numpy_available

    return numpy_available()


def resolve_backend(ground_program: GroundProgram, backend: str | None) -> str:
    """The concrete backend (``"python"`` or ``"array"``) for a request."""
    if backend is None:
        return "python"
    if backend not in BACKENDS:
        raise SemanticsError(
            f"unknown kernel backend {backend!r}; expected one of {', '.join(BACKENDS)}"
        )
    if backend == "auto":
        if not _numpy_available():
            return "python"
        idx = ground_program.index
        if idx.n_atoms + idx.n_rules >= AUTO_ARRAY_THRESHOLD:
            return "array"
        return "python"
    if backend == "array" and not _numpy_available():
        raise BackendUnavailableError(
            "backend='array' requires numpy; install the optional extra "
            "(pip install repro-datalog[array]) or use backend='auto' to "
            "fall back to the python kernel"
        )
    return backend


def make_state(ground_program: GroundProgram, backend: str | None = None) -> GroundGraphState:
    """Construct the evaluation state for ``ground_program``.

    ``backend`` is ``"python"``, ``"array"``, ``"auto"``, or ``None``
    (python).  Returns a :class:`GroundGraphState` (possibly the array
    subclass) ready for the interpreters.
    """
    if resolve_backend(ground_program, backend) == "array":
        from repro.ground.array_state import ArrayGroundGraphState

        return ArrayGroundGraphState(ground_program)
    return GroundGraphState(ground_program)
