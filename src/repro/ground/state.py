"""Live ground-graph state: the ``close(M, G)`` procedure and its queries.

This is the operational heart of the paper.  The ground graph ``G(Π, Δ)``
is bipartite — predicate (atom) nodes and rule nodes, with signed edges —
and every semantics in §2-3 is phrased as repeatedly:

1. assigning truth values to some atoms, then
2. running ``close(M, G)``: deleting valued atoms, deleting rule nodes
   whose body became false, firing rule nodes with no incoming edges
   (their head becomes true), and falsifying atoms with no incoming edges,
   until nothing changes;

interleaved with two *global* queries on the remaining graph: the greatest
unfounded set ``Atoms[close(M, G+)]`` (well-founded steps) and the bottom
strongly connected components that are ties (tie-breaking steps).

:class:`GroundGraphState` is a *compiled kernel* over the shared
:class:`~repro.datalog.grounding.GroundIndex` (CSR arrays plus tuple
views, built once per ground program):

* ``close`` is an O(edges) worklist over the compiled adjacency with
  per-rule pending counters and per-atom support counters;
* the greatest-unfounded-set query touches only the *live* subgraph: a
  persistent ``pos_live`` counter (live positive body atoms per rule) is
  maintained by ``close`` itself, live atoms/rules sit in swap-remove
  compaction lists, and the derivability cascade runs over epoch-marked
  scratch arrays — nothing of size O(total) is rebuilt or cleared per
  call;
* the bottom-SCC query is fully incremental.  Evaluation only ever
  *removes* nodes, so strongly connected components can split but never
  merge: the cached condensation keeps stable component ids, Tarjan is
  re-run only inside components that lost a node since the last query,
  and each component carries a count of incoming cross edges that
  ``close`` decrements as edges disappear — a component is a bottom
  component exactly when that count hits zero, so the query itself is
  O(answer) plus the refinement work.  Tie analyses and the returned
  :class:`BottomComponent` objects are cached per component and reused
  until the component is touched.  ``bottom_components_live(
  full_recompute=True)`` bypasses all of it (the escape hatch the
  property suite pins against the incremental path).

``close`` is confluent (the paper notes the result is independent of
operation order); a property test shuffles worklist order to confirm.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.datalog.grounding import GroundProgram
from repro.errors import CloseConflictError, SemanticsError
from repro.graphs.scc import strongly_connected_components
from repro.graphs.ties import TieAnalysis, analyze_component
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation

__all__ = ["GroundGraphState", "BottomComponent"]

_DELTA = ("delta",)
_EDB_ABSENT = ("edb-absent",)
_NO_SUPPORT = ("no-support",)


class BottomComponent:
    """One bottom SCC of the live graph, with its tie analysis.

    ``atom_ids`` / ``rule_ids`` split the component's nodes; for ties,
    ``side_of_atom`` maps atom id → 0/1 (the two Lemma-1 sides; which one
    plays K is the interpreter's choice).
    """

    def __init__(
        self, atom_ids: list[int], rule_ids: list[int], analysis: TieAnalysis, atom_count: int
    ):
        self.atom_ids = atom_ids
        self.rule_ids = rule_ids
        self.analysis = analysis
        self._atom_count = atom_count

    @property
    def is_tie(self) -> bool:
        """True iff the component has no cycle with odd negative parity."""
        return self.analysis.is_tie

    def side_of_atom(self) -> dict[int, int]:
        """Atom id → side (0/1) under the Lemma-1 partition."""
        assert self.analysis.sides is not None
        return {
            node: side
            for node, side in self.analysis.sides.items()
            if node < self._atom_count
        }


class _QueryScratch:
    """Epoch-marked scratch for the unfounded-set cascade.

    Shared (by reference) between a state and all of its clones: every
    query bumps the shared epoch, so stale marks from any other state are
    ignored without ever clearing the arrays.
    """

    __slots__ = ("epoch", "rule_mark", "rule_pend", "atom_mark")

    def __init__(self, n_atoms: int, n_rules: int) -> None:
        self.epoch = 0
        self.rule_mark = [0] * n_rules
        self.rule_pend = [0] * n_rules
        self.atom_mark = [0] * n_atoms


class GroundGraphState:
    """Mutable evaluation state over a :class:`GroundProgram`.

    The constructor installs the initial model M₀(Δ) — true for every atom
    of Δ, false for EDB atoms outside Δ, undefined for the remaining IDB
    atoms — but does **not** run ``close``; interpreters call
    :meth:`close` explicitly, mirroring the paper's pseudocode.

    All per-state storage is flat (lists and bytearrays) and initialized
    by C-level copies from the shared
    :class:`~repro.datalog.grounding.GroundIndex`, so construction and
    :meth:`clone` cost O(n) memcpy rather than O(edges) Python loops.
    """

    def __init__(self, ground_program: GroundProgram):
        gp = ground_program
        idx = gp.index
        self.gp = gp
        self._idx = idx
        n_atoms = idx.n_atoms
        n_rules = idx.n_rules
        self.n_atoms = n_atoms
        self.n_rules = n_rules

        # M0(Δ): values for EDB atoms and for atoms of Δ, precompiled.
        self.status: list[int] = list(idx.initial_status)
        self.atom_alive = bytearray(b"\x01" * n_atoms)
        self.rule_alive = bytearray(b"\x01" * n_rules)
        # Provenance: why each atom received its value.  Entries are tuples
        # whose first element is a kind tag:
        #   ("delta",)          — true because it is in Δ
        #   ("edb-absent",)     — EDB atom outside Δ
        #   ("fired", r)        — head of rule instance r, body all true
        #   ("no-support",)     — every rule instance for it was deleted
        #   ("assigned", label) — external assignment (unfounded set / tie)
        self.reason: list[tuple | None] = [None] * n_atoms
        self._assign_label: tuple | None = None
        self.rule_pending: list[int] = list(idx.body_len)
        self.atom_support: list[int] = list(idx.support)
        # Live positive body atoms per rule, maintained incrementally by
        # close(); seeds the unfounded-set cascade without a rebuild.
        self.pos_live: list[int] = list(idx.pos_len)

        # Swap-remove compaction of the live node sets: *_slot maps a node
        # to its slot in the corresponding unordered live list (-1 = dead).
        self._live_atoms: list[int] = list(idx.iota_atoms)
        self._atom_slot: list[int] = list(idx.iota_atoms)
        self._live_rules: list[int] = list(idx.iota_rules)
        self._rule_slot: list[int] = list(idx.iota_rules)
        self._live_atom_count = n_atoms

        self._dirty: deque[int] = deque(idx.initial_valued)
        status = self.status
        reason = self.reason
        for a in idx.initial_valued:
            reason[a] = _DELTA if status[a] == TRUE else _EDB_ABSENT

        self._scratch = _QueryScratch(n_atoms, n_rules)

        # Cached condensation of the live graph (see bottom_components_live).
        # Components have *stable* ids: a dict cid → sorted node list, a
        # node → cid map, a per-cid count of incoming cross edges
        # (decremented by close as edges disappear), the cids whose count
        # reached zero (the bottom components), memoized BottomComponent
        # objects, and the cids that lost a node since the last query.
        self._scc_comps: dict[int, list[int]] | None = None
        self._scc_comp_of: list[int] | None = None
        self._scc_incross: dict[int, int] = {}
        self._scc_bottom: set[int] = set()
        self._scc_bottom_obj: dict[int, BottomComponent] = {}
        self._scc_next_cid = 0
        self._scc_dirty: set[int] = set()

        # Rule nodes that start with no incoming edges (empty bodies) fire
        # during the first close; atoms with no support start falsifiable.
        self._initial = True

    # -- assignment and closure --------------------------------------------

    def _set(self, index: int, value: int, reason: tuple | None = None) -> None:
        current = self.status[index]
        if current == value:
            return
        if current != UNDEF:
            raise CloseConflictError(index)
        self.status[index] = value
        self.reason[index] = reason
        self._dirty.append(index)

    def assign(self, index: int, value: int, label: tuple | None = None) -> None:
        """Externally assign ``M(a) := value`` (queued until :meth:`close`).

        Assigning an already-valued atom to the same value is a no-op;
        to the opposite value raises :class:`CloseConflictError`.
        ``label`` (e.g. ``("unfounded", round)`` or ``("tie", n, side)``)
        is recorded for provenance.
        """
        if value not in (TRUE, FALSE):
            raise SemanticsError("assign() takes TRUE or FALSE")
        self._set(index, value, ("assigned", label))

    def assign_many(
        self, indices: Iterable[int], value: int, label: tuple | None = None
    ) -> None:
        """Assign a batch of atoms the same value."""
        for index in indices:
            self.assign(index, value, label)

    def close(self) -> None:
        """Run the paper's ``close(M, G)`` until no operation applies."""
        idx = self._idx
        if self._initial:
            self._initial = False
            for r_index in idx.empty_body_rules:
                if self.rule_alive[r_index]:
                    self._fire(r_index)
            status = self.status
            for index in idx.zero_support_atoms:
                if status[index] == UNDEF and self.atom_support[index] == 0:
                    self._set(index, FALSE, _NO_SUPPORT)

        dirty = self._dirty
        if not dirty:
            return
        # Hot loop: everything in locals.  Rule fire/kill events happen at
        # most once per rule and stay as method calls; per-edge work is
        # inline.
        status = self.status
        atom_alive = self.atom_alive
        rule_alive = self.rule_alive
        rule_pending = self.rule_pending
        pos_live = self.pos_live
        pos_occ_t = idx.pos_occ_t
        neg_occ_t = idx.neg_occ_t
        live_atoms, atom_slot = self._live_atoms, self._atom_slot
        comp_of = self._scc_comp_of
        track = comp_of is not None
        scc_dirty = self._scc_dirty
        incross = self._scc_incross
        bottom = self._scc_bottom
        n_atoms = self.n_atoms

        while dirty:
            index = dirty.popleft()
            if not atom_alive[index]:
                continue
            atom_alive[index] = 0
            self._live_atom_count -= 1
            slot = atom_slot[index]
            last = live_atoms.pop()
            if last != index:
                live_atoms[slot] = last
                atom_slot[last] = slot
            atom_slot[index] = -1
            cu = -1
            if track:
                cu = comp_of[index]
                scc_dirty.add(cu)
            value = status[index]
            if value == TRUE:
                # Positive occurrences are satisfied, negative ones violated.
                for r in pos_occ_t[index]:
                    pos_live[r] -= 1
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if count == 0:
                                    bottom.add(cr)
                        pending = rule_pending[r] - 1
                        rule_pending[r] = pending
                        if pending == 0:
                            self._fire(r)
                for r in neg_occ_t[index]:
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if count == 0:
                                    bottom.add(cr)
                        self._kill_rule(r)
            else:
                for r in pos_occ_t[index]:
                    pos_live[r] -= 1
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if count == 0:
                                    bottom.add(cr)
                        self._kill_rule(r)
                for r in neg_occ_t[index]:
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if count == 0:
                                    bottom.add(cr)
                        pending = rule_pending[r] - 1
                        rule_pending[r] = pending
                        if pending == 0:
                            self._fire(r)

    def _fire(self, r_index: int) -> None:
        """Rule node with no incoming edges: its head becomes true."""
        self._remove_rule(r_index)
        head = self._idx.head_of_t[r_index]
        self.atom_support[head] -= 1
        if self.status[head] == FALSE:
            raise CloseConflictError(
                head,
                f"rule instance #{r_index} fired but its head atom "
                f"{self.gp.atoms.atom(head)} is already false",
            )
        self._set(head, TRUE, ("fired", r_index))

    def _kill_rule(self, r_index: int) -> None:
        """Rule node deleted because a body literal became false."""
        self._remove_rule(r_index)
        head = self._idx.head_of_t[r_index]
        support = self.atom_support[head] - 1
        self.atom_support[head] = support
        if support == 0 and self.status[head] == UNDEF:
            self._set(head, FALSE, _NO_SUPPORT)

    def _remove_rule(self, r_index: int) -> None:
        """Mark a rule node dead; maintain compaction and the SCC cache.

        The rule's outgoing edge (to its head atom, if still live)
        disappears with it, so the head's component loses an incoming
        edge unless the rule is in the same component.
        """
        self.rule_alive[r_index] = 0
        slot = self._rule_slot[r_index]
        last = self._live_rules.pop()
        if last != r_index:
            self._live_rules[slot] = last
            self._rule_slot[last] = slot
        self._rule_slot[r_index] = -1
        comp_of = self._scc_comp_of
        if comp_of is not None:
            cr = comp_of[self.n_atoms + r_index]
            self._scc_dirty.add(cr)
            head = self._idx.head_of_t[r_index]
            if self.atom_alive[head]:
                ch = comp_of[head]
                if ch != cr:
                    count = self._scc_incross[ch] - 1
                    self._scc_incross[ch] = count
                    if count == 0:
                        self._scc_bottom.add(ch)

    # -- global queries on the live graph -----------------------------------

    def live_atom_ids(self) -> list[int]:
        """Atoms still in the graph (no truth value yet), ascending."""
        return sorted(self._live_atoms)

    @property
    def live_atom_count(self) -> int:
        """Number of atoms still undefined/alive (O(1), maintained)."""
        return self._live_atom_count

    def unfounded_atoms(self) -> list[int]:
        """The greatest unfounded set: ``Atoms[close(M, G+)]`` (§2).

        Graph-theoretically: run the positive firing cascade on the live
        graph restricted to positive edges; live atoms *not* derived form
        the largest set whose induced positive subgraph has no source.
        Must be called on a closed state.

        Touches only the live subgraph: the persistent ``pos_live``
        counters seed the cascade, and the scratch is epoch-marked instead
        of being reallocated or cleared.
        """
        self._require_closed()
        idx = self._idx
        scratch = self._scratch
        scratch.epoch += 1
        epoch = scratch.epoch
        rule_mark = scratch.rule_mark
        rule_pend = scratch.rule_pend
        atom_mark = scratch.atom_mark
        pos_live = self.pos_live
        rule_alive = self.rule_alive
        atom_alive = self.atom_alive
        head_of = idx.head_of_t
        pos_occ_t = idx.pos_occ_t

        # Sourceless rule nodes of the live positive subgraph: every
        # positive body atom already left the graph (necessarily true).
        stack = [r for r in self._live_rules if not pos_live[r]]
        while stack:
            r = stack.pop()
            head = head_of[r]
            if atom_mark[head] == epoch or not atom_alive[head]:
                continue
            atom_mark[head] = epoch
            for r2 in pos_occ_t[head]:
                if rule_alive[r2]:
                    if rule_mark[r2] != epoch:
                        rule_mark[r2] = epoch
                        rule_pend[r2] = pos_live[r2]
                    pending = rule_pend[r2] - 1
                    rule_pend[r2] = pending
                    if pending == 0:
                        stack.append(r2)
        return sorted(i for i in self._live_atoms if atom_mark[i] != epoch)

    def _require_closed(self) -> None:
        if self._dirty or self._initial:
            raise SemanticsError("graph queries require a closed state; call close() first")

    def _live_successors(self, node: int) -> Iterator[tuple[int, bool]]:
        """Signed out-edges of a live node (atoms: 0..n_atoms-1; rules shifted)."""
        idx = self._idx
        n_atoms = self.n_atoms
        if node < n_atoms:
            rule_alive = self.rule_alive
            for r in idx.pos_occ_t[node]:
                if rule_alive[r]:
                    yield n_atoms + r, True
            for r in idx.neg_occ_t[node]:
                if rule_alive[r]:
                    yield n_atoms + r, False
        else:
            head = idx.head_of_t[node - n_atoms]
            if self.atom_alive[head]:
                yield head, True

    def _rebuild_scc(self) -> None:
        """Full Tarjan over the live graph; installs a fresh condensation."""
        n_atoms = self.n_atoms
        node_count = n_atoms + self.n_rules
        live_nodes = sorted(self._live_atoms)
        live_nodes.extend(sorted(n_atoms + r for r in self._live_rules))

        def succ_ids(u: int) -> Iterator[int]:
            return (v for v, _ in self._live_successors(u))

        components = strongly_connected_components(
            node_count, succ_ids, nodes=live_nodes
        )
        if self._scc_comp_of is None:
            self._scc_comp_of = [-1] * node_count
        comp_of = self._scc_comp_of
        comps: dict[int, list[int]] = {}
        for cid, component in enumerate(components):
            # Canonical node order inside each component: deterministic
            # regardless of whether it came from a full or a partial
            # (refinement) Tarjan run.
            component.sort()
            comps[cid] = component
            for node in component:
                comp_of[node] = cid
        self._scc_comps = comps
        self._scc_next_cid = len(components)
        self._scc_bottom_obj = {}
        self._scc_dirty.clear()

        # Count incoming cross edges per component in one edge sweep.
        incross = dict.fromkeys(comps, 0)
        idx = self._idx
        rule_alive = self.rule_alive
        atom_alive = self.atom_alive
        pos_occ_t, neg_occ_t = idx.pos_occ_t, idx.neg_occ_t
        head_of = idx.head_of_t
        for u in self._live_atoms:
            cu = comp_of[u]
            for r in pos_occ_t[u]:
                if rule_alive[r]:
                    cr = comp_of[n_atoms + r]
                    if cr != cu:
                        incross[cr] += 1
            for r in neg_occ_t[u]:
                if rule_alive[r]:
                    cr = comp_of[n_atoms + r]
                    if cr != cu:
                        incross[cr] += 1
        for r in self._live_rules:
            head = head_of[r]
            if atom_alive[head]:
                ch = comp_of[head]
                if ch != comp_of[n_atoms + r]:
                    incross[ch] += 1
        self._scc_incross = incross
        self._scc_bottom = {cid for cid, count in incross.items() if count == 0}

    def _refine_scc(self) -> None:
        """Re-run Tarjan only inside components that lost a node.

        Deletion-only dynamics make this sound: the live graph is a
        subgraph of the one the cache was built on, so every current SCC
        is contained in a cached component — components without deletions
        are still exactly SCCs, and dirty ones split into the SCCs of
        their surviving members.  Incoming-edge counts of surviving
        components are exact (close decrements them per vanished edge);
        only the new pieces are recounted, via the reverse adjacency.
        """
        comps = self._scc_comps
        comp_of = self._scc_comp_of
        assert comps is not None and comp_of is not None
        dirty = self._scc_dirty
        n_atoms = self.n_atoms
        atom_alive = self.atom_alive
        rule_alive = self.rule_alive
        incross = self._scc_incross
        bottom = self._scc_bottom
        bottom_obj = self._scc_bottom_obj

        affected: list[int] = []
        for cid in dirty:
            for node in comps[cid]:
                alive = (
                    atom_alive[node]
                    if node < n_atoms
                    else rule_alive[node - n_atoms]
                )
                if alive:
                    affected.append(node)
            del comps[cid]
            del incross[cid]
            bottom.discard(cid)
            bottom_obj.pop(cid, None)
        dirty.clear()
        if not affected:
            return

        # Successors restricted to the same *old* component (comp_of still
        # holds the old ids for affected nodes): refinement never crosses
        # cached component boundaries.
        def succ_ids(u: int) -> Iterator[int]:
            cu = comp_of[u]
            return (v for v, _ in self._live_successors(u) if comp_of[v] == cu)

        pieces = strongly_connected_components(
            n_atoms + self.n_rules, succ_ids, nodes=affected
        )
        fresh: list[tuple[int, list[int]]] = []
        for piece in pieces:
            piece.sort()
            cid = self._scc_next_cid
            self._scc_next_cid += 1
            comps[cid] = piece
            fresh.append((cid, piece))
        for cid, piece in fresh:
            for node in piece:
                comp_of[node] = cid

        # Recount incoming cross edges of each new piece from its reverse
        # adjacency (edges from other pieces of the same old component
        # became cross edges; edges from other components stayed).
        idx = self._idx
        rules_by_head_t = idx.rules_by_head_t
        pos_off, pos_atoms = idx.pos_off, idx.pos_atoms
        neg_off, neg_atoms = idx.neg_off, idx.neg_atoms
        for cid, piece in fresh:
            count = 0
            for node in piece:
                if node < n_atoms:
                    for r in rules_by_head_t[node]:
                        if rule_alive[r] and comp_of[n_atoms + r] != cid:
                            count += 1
                else:
                    r = node - n_atoms
                    for a in pos_atoms[pos_off[r] : pos_off[r + 1]]:
                        if atom_alive[a] and comp_of[a] != cid:
                            count += 1
                    for a in neg_atoms[neg_off[r] : neg_off[r + 1]]:
                        if atom_alive[a] and comp_of[a] != cid:
                            count += 1
            incross[cid] = count
            if count == 0:
                bottom.add(cid)

    def bottom_components_live(
        self, *, full_recompute: bool = False
    ) -> list[BottomComponent]:
        """Bottom SCCs of the live graph with their tie analyses (§3).

        Singleton components cannot be bottom after ``close`` (a sourceless
        atom would have been falsified, a sourceless rule fired), so every
        returned component is a genuine cyclic component.

        Incremental: the condensation, the per-component incoming-edge
        counts, and the analyses/result objects are all cached; only
        components touched by deletions since the last query cost work.
        ``full_recompute=True`` rebuilds everything from scratch.
        """
        self._require_closed()
        if full_recompute or self._scc_comps is None:
            self._rebuild_scc()
        elif self._scc_dirty:
            self._refine_scc()

        comps = self._scc_comps
        assert comps is not None
        n_atoms = self.n_atoms
        bottom_obj = self._scc_bottom_obj
        result: list[BottomComponent] = []
        for cid in sorted(self._scc_bottom):
            component = comps[cid]
            if len(component) == 1:
                # No self-loops exist in a bipartite graph; a singleton
                # bottom component would have been resolved by close().
                raise AssertionError(
                    "singleton bottom component survived close(); graph state corrupt"
                )
            obj = bottom_obj.get(cid)
            if obj is None:
                analysis = analyze_component(component, self._live_successors)
                atom_ids = [n for n in component if n < n_atoms]
                rule_ids = [n - n_atoms for n in component if n >= n_atoms]
                obj = BottomComponent(atom_ids, rule_ids, analysis, n_atoms)
                bottom_obj[cid] = obj
            result.append(obj)
        return result

    # -- cloning ------------------------------------------------------------

    def clone(self) -> "GroundGraphState":
        """An independent copy of the evaluation state.

        The immutable structure (ground program and its compiled index) is
        shared; the mutable value/liveness/counter arrays are copied at
        C level.  The SCC cache is carried over (component node lists,
        analyses, and result objects are immutable and shared; the id map,
        edge counts, and bookkeeping sets are copied), and the query
        scratch is shared because the epoch discipline makes concurrent
        reuse safe.  Used by the exhaustive tie-breaking enumerator to
        branch on choices.
        """
        other = object.__new__(GroundGraphState)
        other.gp = self.gp
        other._idx = self._idx
        other.n_atoms = self.n_atoms
        other.n_rules = self.n_rules
        other.status = list(self.status)
        other.atom_alive = bytearray(self.atom_alive)
        other.rule_alive = bytearray(self.rule_alive)
        other.rule_pending = list(self.rule_pending)
        other.atom_support = list(self.atom_support)
        other.pos_live = list(self.pos_live)
        other._live_atoms = list(self._live_atoms)
        other._atom_slot = list(self._atom_slot)
        other._live_rules = list(self._live_rules)
        other._rule_slot = list(self._rule_slot)
        other._live_atom_count = self._live_atom_count
        other.reason = list(self.reason)
        other._assign_label = self._assign_label
        other._dirty = deque(self._dirty)
        other._initial = self._initial
        other._scratch = self._scratch
        other._scc_comps = (
            dict(self._scc_comps) if self._scc_comps is not None else None
        )
        other._scc_comp_of = (
            list(self._scc_comp_of) if self._scc_comp_of is not None else None
        )
        other._scc_incross = dict(self._scc_incross)
        other._scc_bottom = set(self._scc_bottom)
        other._scc_bottom_obj = dict(self._scc_bottom_obj)
        other._scc_next_cid = self._scc_next_cid
        other._scc_dirty = set(self._scc_dirty)
        return other

    # -- results -------------------------------------------------------------

    def interpretation(self) -> Interpretation:
        """Snapshot the current (possibly partial) model."""
        return Interpretation(self.gp, tuple(self.status))

    def __repr__(self) -> str:
        return (
            f"GroundGraphState(atoms={self.n_atoms}, rules={self.n_rules}, "
            f"live_atoms={self.live_atom_count})"
        )
