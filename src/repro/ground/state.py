"""Live ground-graph state: the ``close(M, G)`` procedure and its queries.

This is the operational heart of the paper.  The ground graph ``G(Π, Δ)``
is bipartite — predicate (atom) nodes and rule nodes, with signed edges —
and every semantics in §2-3 is phrased as repeatedly:

1. assigning truth values to some atoms, then
2. running ``close(M, G)``: deleting valued atoms, deleting rule nodes
   whose body became false, firing rule nodes with no incoming edges
   (their head becomes true), and falsifying atoms with no incoming edges,
   until nothing changes;

interleaved with two *global* queries on the remaining graph: the greatest
unfounded set ``Atoms[close(M, G+)]`` (well-founded steps) and the bottom
strongly connected components that are ties (tie-breaking steps).

:class:`GroundGraphState` is the v2 *compiled kernel* over the shared
:class:`~repro.datalog.grounding.GroundIndex` (CSR arrays plus tuple
views, built once per ground program):

* ``close`` is an O(edges) worklist over the compiled adjacency with
  per-rule pending counters and per-atom support counters; provenance is
  recorded in flat kind/argument buffers (no per-atom tuple allocation —
  see :meth:`GroundGraphState.reason_of`), and batch assignment
  (:meth:`assign_many`, the fused unfounded step) enqueues directly;
* the greatest-unfounded-set query is **incrementally valid across
  rounds**: every derived live atom carries a *source pointer* (the rule
  that first derived it in the positive cascade).  ``close`` detects when
  a source rule dies and queues the head; a query then only withdraws and
  re-establishes sources in the affected region instead of re-running the
  cascade over the whole live graph — a round in which no source was
  touched answers in O(1).  ``unfounded_atoms(full_recompute=True)`` runs
  the seed-era full cascade (the differential oracle);
  :meth:`falsify_unfounded` fuses query → falsify → close into one call,
  so a well-founded round never rebuilds anything it already knows;
* the bottom-SCC query is fully incremental.  Evaluation only ever
  *removes* nodes, so strongly connected components can split but never
  merge: the cached condensation keeps stable (never reused) component
  ids, Tarjan is re-run only inside components that lost a node, and each
  component carries a count of incoming cross edges that ``close``
  decrements as edges disappear — a component is a bottom component
  exactly when that count hits zero.  On top of the cache sits a
  **min-keyed tie schedule**: every component that becomes bottom is
  pushed onto a heap keyed by its smallest atom id, and
  :meth:`select_tie` peeks the schedule (lazily discarding entries whose
  component split, resolved, or turned out not to be a tie) instead of
  rescanning all bottom components per round.
  ``bottom_components_live(full_recompute=True)`` bypasses the cache (the
  escape hatch the property suite pins against the incremental path);
* branching interpreters use a **trail-based undo log** instead of
  ``clone``: :meth:`trail_begin` starts recording, :meth:`trail_mark`
  marks a decision point, and :meth:`trail_undo` rewinds assignments,
  liveness, counters, and the SCC/unfounded/schedule caches to the mark —
  cost proportional to the work performed since the mark, not to the
  state size.  ``clone`` remains for callers that need an independent
  copy (trails are not cloned).

``close`` is confluent (the paper notes the result is independent of
operation order); a property test shuffles worklist order to confirm.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from heapq import heappop, heappush
from time import perf_counter
from typing import Iterable, Iterator

from repro.datalog.grounding import GroundProgram
from repro.errors import CloseConflictError, SemanticsError
from repro.graphs.scc import strongly_connected_components
from repro.graphs.ties import TieAnalysis, TieSides, analyze_component
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation

__all__ = ["GroundGraphState", "BottomComponent"]

# Provenance kinds, stored in the flat ``_reason_kind`` buffer.  The
# argument buffer holds the fired rule id (R_FIRED) or the interned label
# id (R_ASSIGNED); reason_of() reconstitutes the legacy tuples.
_R_NONE = 0
_R_DELTA = 1
_R_EDB_ABSENT = 2
_R_FIRED = 3
_R_NO_SUPPORT = 4
_R_ASSIGNED = 5

_KIND_TUPLES = {
    _R_DELTA: ("delta",),
    _R_EDB_ABSENT: ("edb-absent",),
    _R_NO_SUPPORT: ("no-support",),
}

# Trail entry tags (first element of each undo-log entry).
_T_SET = 0  # (tag, atom): status/reason were written
_T_ATOM = 1  # (tag, atom, slot): atom left the live set
_T_RULE = 2  # (tag, rule, slot): rule left the live set
_T_INCROSS = 3  # (tag, cid): incoming-cross-edge count decremented
_T_DIRTY = 4  # (tag, cid): cid newly added to the SCC dirty set
_T_REFINE = 5  # (tag, removed, fresh): a refinement replaced components
_T_REBUILD = 6  # (tag,): a full condensation rebuild ran
_T_SRC = 8  # (tag, atom, old): source pointer overwritten
_T_SL_ADD = 9  # (tag, atom): atom added to the sourceless set
_T_SL_DISCARD = 10  # (tag, atom): atom discarded from the sourceless set
_T_SL_REPLACE = 11  # (tag, old_set): sourceless set replaced wholesale
_T_LOST_CLEAR = 12  # (tag, old_list): lost queue consumed
_T_LOST_APPEND = 13  # (tag,): one entry appended to the lost queue
_T_UNF_VALID = 14  # (tag, old): validity flag overwritten


class BottomComponent:
    """One bottom SCC of the live graph, with its tie analysis.

    ``atom_ids`` / ``rule_ids`` split the component's nodes; for ties,
    ``side_of_atom`` maps atom id → 0/1 (the two Lemma-1 sides; which one
    plays K is the interpreter's choice).
    """

    def __init__(
        self,
        atom_ids: list[int],
        rule_ids: list[int],
        analysis: TieAnalysis | None,
        atom_count: int,
        sides_map: dict[int, int] | None = None,
    ):
        self.atom_ids = atom_ids
        self.rule_ids = rule_ids
        # Either a materialized analysis, or (hot path: served from the
        # incremental sides cache) just the canonical node → side dict;
        # the TieAnalysis view is then built on first ``.analysis`` touch.
        self._analysis = analysis
        self._sides_map = sides_map
        self._atom_count = atom_count
        self._side_of_atom: dict[int, int] | None = None

    @property
    def analysis(self) -> TieAnalysis:
        """The frozen Lemma-1 analysis (materialized lazily)."""
        a = self._analysis
        if a is None:
            a = TieAnalysis(is_tie=True, sides=self._sides_map)
            self._analysis = a
        return a

    @property
    def is_tie(self) -> bool:
        """True iff the component has no cycle with odd negative parity."""
        a = self._analysis
        return True if a is None else a.is_tie

    def side_of_atom(self) -> dict[int, int]:
        """Atom id → side (0/1) under the Lemma-1 partition (cached)."""
        cached = self._side_of_atom
        if cached is None:
            sides = self._sides_map
            if sides is None:
                sides = self.analysis.sides
            assert sides is not None
            atom_count = self._atom_count
            cached = {
                node: side for node, side in sides.items() if node < atom_count
            }
            self._side_of_atom = cached
        return cached

    def side_counts(self) -> tuple[int, int]:
        """Number of *atoms* on side 0 and side 1."""
        sides = self.side_of_atom()
        ones = sum(sides.values())
        return len(sides) - ones, ones


class _QueryScratch:
    """Epoch-marked scratch for the unfounded-set cascades.

    Shared (by reference) between a state and all of its clones: every
    query bumps the shared epoch, so stale marks from any other state are
    ignored without ever clearing the arrays.
    """

    __slots__ = ("epoch", "rule_mark", "rule_pend", "atom_mark")

    def __init__(self, n_atoms: int, n_rules: int) -> None:
        self.epoch = 0
        self.rule_mark = [0] * n_rules
        self.rule_pend = [0] * n_rules
        self.atom_mark = [0] * n_atoms

    def grow(self, n_atoms: int, n_rules: int) -> None:
        """Extend the mark arrays (the streaming-update overlay appends
        atoms and instances to a live ground program; a scratch shared
        with pre-update states must cover the grown id space)."""
        if len(self.rule_mark) < n_rules:
            pad = n_rules - len(self.rule_mark)
            self.rule_mark.extend([0] * pad)
            self.rule_pend.extend([0] * pad)
        if len(self.atom_mark) < n_atoms:
            self.atom_mark.extend([0] * (n_atoms - len(self.atom_mark)))


class GroundGraphState:
    """Mutable evaluation state over a :class:`GroundProgram`.

    The constructor installs the initial model M₀(Δ) — true for every atom
    of Δ, false for EDB atoms outside Δ, undefined for the remaining IDB
    atoms — but does **not** run ``close``; interpreters call
    :meth:`close` explicitly, mirroring the paper's pseudocode.

    All per-state storage is flat (lists, bytearrays, and parallel
    kind/argument buffers) and initialized by C-level copies from the
    shared :class:`~repro.datalog.grounding.GroundIndex`, so construction
    and :meth:`clone` cost O(n) memcpy rather than O(edges) Python loops.
    ``phase_s`` accumulates wall-clock seconds per kernel phase
    (``close_s`` / ``unfounded_s`` / ``tie_select_s`` / ``tie_apply_s`` /
    ``tie_analysis_s`` — the last carved out of tie selection so the
    Lemma-1 sides work is attributable on its own) for the solve-phase
    accounting surfaced in :class:`~repro.api.solution.Solution` timings.
    """

    def __init__(self, ground_program: GroundProgram):
        gp = ground_program
        idx = gp.index
        self.gp = gp
        self._idx = idx
        n_atoms = idx.n_atoms
        n_rules = idx.n_rules
        self.n_atoms = n_atoms
        self.n_rules = n_rules

        # M0(Δ): values for EDB atoms and for atoms of Δ, precompiled.
        self.status: list[int] = list(idx.initial_status)
        self.atom_alive = bytearray(b"\x01" * n_atoms)
        alive_init = idx.initial_rule_alive
        if alive_init is None:
            self.rule_alive = bytearray(b"\x01" * n_rules)
        else:
            # Streaming updates disable instances a retraction killed;
            # they start dead (never fired, never killed, invisible to
            # every live-set sweep) rather than being compacted away.
            self.rule_alive = bytearray(alive_init)
        # Provenance, as flat parallel buffers (kind byte + int argument;
        # assignment labels interned once per batch in _labels) instead of
        # one tuple per atom; reason_of() rebuilds the legacy tuples:
        #   ("delta",)          — true because it is in Δ
        #   ("edb-absent",)     — EDB atom outside Δ
        #   ("fired", r)        — head of rule instance r, body all true
        #   ("no-support",)     — every rule instance for it was deleted
        #   ("assigned", label) — external assignment (unfounded set / tie)
        self._reason_kind = bytearray(n_atoms)
        self._reason_arg: list[int] = [0] * n_atoms
        self._labels: list[tuple | None] = []
        self.rule_pending: list[int] = list(idx.body_len)
        self.atom_support: list[int] = list(idx.support)
        # Live positive body atoms per rule, maintained incrementally by
        # close(); seeds the unfounded-set cascades without a rebuild.
        self.pos_live: list[int] = list(idx.pos_len)

        # Swap-remove compaction of the live node sets: *_slot maps a node
        # to its slot in the corresponding unordered live list (-1 = dead).
        self._live_atoms: list[int] = list(idx.iota_atoms)
        self._atom_slot: list[int] = list(idx.iota_atoms)
        if alive_init is None:
            self._live_rules: list[int] = list(idx.iota_rules)
            self._rule_slot: list[int] = list(idx.iota_rules)
        else:
            self._live_rules = list(idx.live_rules_init)
            self._rule_slot = list(idx.rule_slot_init)
        self._live_atom_count = n_atoms

        # Canonical atom order installed by the streaming-update overlay:
        # ranks live atom ids exactly as a fresh grounding would assign
        # them, so order-sensitive choices (tie scheduling, side
        # comparisons) match a full rebuild.  None = ids are the order.
        self._order = idx.atom_order

        self._dirty: deque[int] = deque(idx.initial_valued)
        status = self.status
        kind = self._reason_kind
        for a in idx.initial_valued:
            kind[a] = _R_DELTA if status[a] == TRUE else _R_EDB_ABSENT

        self._scratch = _QueryScratch(n_atoms, n_rules)

        # Incremental unfounded-set machinery (source pointers).  _src[a]
        # is the live rule whose firing derived a in the last positive
        # cascade (-1 = none); valid only while _unf_valid.  _unf_lost
        # queues atoms whose source rule died since the last query;
        # _unf_sourceless is the current greatest unfounded set.
        self._src: list[int] = [-1] * n_atoms
        self._unf_valid = False
        self._unf_lost: list[int] = []
        self._unf_sourceless: set[int] = set()

        # Cached condensation of the live graph (see bottom_components_live).
        # Components have *stable, never reused* ids: a dict cid → sorted
        # node list, a node → cid map, a per-cid count of incoming cross
        # edges (decremented by close as edges disappear), the cids whose
        # count reached zero (the bottom components), memoized
        # BottomComponent objects, and the cids that lost a node since the
        # last query.
        self._scc_comps: dict[int, list[int]] | None = None
        self._scc_comp_of: list[int] | None = None
        self._scc_incross: dict[int, int] = {}
        self._scc_bottom: set[int] = set()
        self._scc_bottom_obj: dict[int, BottomComponent] = {}
        self._scc_next_cid = 0
        self._scc_dirty: set[int] = set()

        # Incremental Lemma-1 (K, L) sides per component (clean/tie
        # components only — non-ties fall back to analyze_component for
        # the odd-cycle witness).  Keyed by cid; because component node
        # lists are immutable, cids are never reused, and any component
        # that loses a member is replaced by _refine_scc before the next
        # query, an entry for a *current* cid can never be stale — the
        # sides are a pure function of the cid.  Refinement derives the
        # pieces' sides by restriction (a valid partition stays valid on
        # any subgraph); a full rebuild assigns new cids, so the dict is
        # simply reset there.
        self._tie_sides: dict[int, TieSides] = {}
        # tie_analysis_s seconds accrued inside the current select_tie /
        # select_ties window, subtracted so the two phases never overlap.
        self._ta_overlap = 0.0

        # Min-keyed schedule of bottom components: (smallest node, cid)
        # heap entries pushed whenever a component becomes bottom; stale
        # entries (split, resolved, or non-tie components) are discarded
        # lazily by select_tie().
        self._tie_heap: list[tuple[int, int]] = []

        # Undo trail (None = disabled).  See trail_begin/trail_mark/undo.
        self._trail: list[tuple] | None = None

        # Per-phase wall-clock accounting (seconds, accumulated).
        self.phase_s: dict[str, float] = {
            "close_s": 0.0,
            "unfounded_s": 0.0,
            "tie_select_s": 0.0,
            "tie_apply_s": 0.0,
            "tie_analysis_s": 0.0,
        }

        # Number of nonempty tie rounds served by select_ties() — the
        # batched-round property tests assert the array backend collapses
        # independent ties into O(DAG depth) rounds against this counter.
        self.tie_rounds = 0

        # Rule nodes that start with no incoming edges (empty bodies) fire
        # during the first close; atoms with no support start falsifiable.
        self._initial = True

    # -- provenance ---------------------------------------------------------

    def _intern_label(self, label: tuple | None) -> int:
        self._labels.append(label)
        return len(self._labels) - 1

    def reason_of(self, index: int) -> tuple | None:
        """Why atom ``index`` received its value (legacy tuple form).

        Returns ``None`` for unvalued atoms; otherwise one of the
        provenance tuples documented on the class (``("fired", r)``,
        ``("assigned", label)``, ``("delta",)``, ...).
        """
        kind = self._reason_kind[index]
        if kind == _R_NONE:
            return None
        if kind == _R_FIRED:
            return ("fired", self._reason_arg[index])
        if kind == _R_ASSIGNED:
            return ("assigned", self._labels[self._reason_arg[index]])
        return _KIND_TUPLES[kind]

    # -- assignment and closure --------------------------------------------

    def _set(self, index: int, value: int, kind: int, arg: int = 0) -> None:
        current = self.status[index]
        if current == value:
            return
        if current != UNDEF:
            raise CloseConflictError(index)
        self.status[index] = value
        self._reason_kind[index] = kind
        self._reason_arg[index] = arg
        if self._trail is not None:
            self._trail.append((_T_SET, index))
        self._dirty.append(index)

    def assign(self, index: int, value: int, label: tuple | None = None) -> None:
        """Externally assign ``M(a) := value`` (queued until :meth:`close`).

        Assigning an already-valued atom to the same value is a no-op;
        to the opposite value raises :class:`CloseConflictError`.
        ``label`` (e.g. ``("unfounded", round)`` or ``("tie", n, side)``)
        is recorded for provenance.
        """
        if value not in (TRUE, FALSE):
            raise SemanticsError("assign() takes TRUE or FALSE")
        self._set(index, value, _R_ASSIGNED, self._intern_label(label))

    def assign_many(
        self, indices: Iterable[int], value: int, label: tuple | None = None
    ) -> None:
        """Assign a batch of atoms the same value.

        The label is interned once and the batch is written straight into
        the flat buffers and the close worklist — no per-atom tuple is
        allocated.
        """
        if value not in (TRUE, FALSE):
            raise SemanticsError("assign() takes TRUE or FALSE")
        arg = self._intern_label(label)
        status = self.status
        kind = self._reason_kind
        reason_arg = self._reason_arg
        dirty = self._dirty
        trail = self._trail
        for index in indices:
            current = status[index]
            if current == value:
                continue
            if current != UNDEF:
                raise CloseConflictError(index)
            status[index] = value
            kind[index] = _R_ASSIGNED
            reason_arg[index] = arg
            if trail is not None:
                trail.append((_T_SET, index))
            dirty.append(index)

    def close(self) -> None:
        """Run the paper's ``close(M, G)`` until no operation applies."""
        t_close = perf_counter()
        idx = self._idx
        if self._initial:
            self._initial = False
            for r_index in idx.empty_body_rules:
                if self.rule_alive[r_index]:
                    self._fire(r_index)
            status = self.status
            for index in idx.zero_support_atoms:
                if status[index] == UNDEF and self.atom_support[index] == 0:
                    self._set(index, FALSE, _R_NO_SUPPORT)

        dirty = self._dirty
        if not dirty:
            self.phase_s["close_s"] += perf_counter() - t_close
            return
        # Hot loop: everything in locals.  Rule fire/kill events happen at
        # most once per rule and stay as method calls; per-edge work is
        # inline.
        status = self.status
        atom_alive = self.atom_alive
        rule_alive = self.rule_alive
        rule_pending = self.rule_pending
        pos_live = self.pos_live
        pos_occ_t = idx.pos_occ_t
        neg_occ_t = idx.neg_occ_t
        live_atoms, atom_slot = self._live_atoms, self._atom_slot
        comp_of = self._scc_comp_of
        track = comp_of is not None
        comps = self._scc_comps
        scc_dirty = self._scc_dirty
        incross = self._scc_incross
        bottom = self._scc_bottom
        heap = self._tie_heap
        sourceless = self._unf_sourceless
        trail = self._trail
        n_atoms = self.n_atoms
        heap_key = self._heap_key

        while dirty:
            index = dirty.popleft()
            if not atom_alive[index]:
                continue
            atom_alive[index] = 0
            self._live_atom_count -= 1
            slot = atom_slot[index]
            last = live_atoms.pop()
            if last != index:
                live_atoms[slot] = last
                atom_slot[last] = slot
            atom_slot[index] = -1
            if trail is not None:
                trail.append((_T_ATOM, index, slot))
            if sourceless and index in sourceless:
                sourceless.discard(index)
                if trail is not None:
                    trail.append((_T_SL_DISCARD, index))
            cu = -1
            if track:
                cu = comp_of[index]
                if cu not in scc_dirty:
                    scc_dirty.add(cu)
                    if trail is not None:
                        trail.append((_T_DIRTY, cu))
            value = status[index]
            if value == TRUE:
                # A true exit can only make *more* atoms derivable, which
                # is irrelevant while every live atom has a source — but
                # with standing unfounded atoms it could re-found them, so
                # the incremental machinery surrenders to a full rebuild.
                if self._unf_valid and sourceless:
                    self._unf_valid = False
                    if trail is not None:
                        trail.append((_T_UNF_VALID, True))
                # Positive occurrences are satisfied, negative ones violated.
                for r in pos_occ_t[index]:
                    pos_live[r] -= 1
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if trail is not None:
                                    trail.append((_T_INCROSS, cr))
                                if count == 0:
                                    bottom.add(cr)
                                    heappush(heap, (heap_key(comps[cr]), cr))
                        pending = rule_pending[r] - 1
                        rule_pending[r] = pending
                        if pending == 0:
                            self._fire(r)
                for r in neg_occ_t[index]:
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if trail is not None:
                                    trail.append((_T_INCROSS, cr))
                                if count == 0:
                                    bottom.add(cr)
                                    heappush(heap, (heap_key(comps[cr]), cr))
                        self._kill_rule(r)
            else:
                # Negative occurrences first (satisfaction decrements),
                # then positive ones (kills): decrements strictly precede
                # same-atom kills, so the trail undo can replay the exact
                # inverse without recording per-edge entries.
                for r in neg_occ_t[index]:
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if trail is not None:
                                    trail.append((_T_INCROSS, cr))
                                if count == 0:
                                    bottom.add(cr)
                                    heappush(heap, (heap_key(comps[cr]), cr))
                        pending = rule_pending[r] - 1
                        rule_pending[r] = pending
                        if pending == 0:
                            self._fire(r)
                for r in pos_occ_t[index]:
                    pos_live[r] -= 1
                    if rule_alive[r]:
                        if track:
                            cr = comp_of[n_atoms + r]
                            if cr != cu:
                                count = incross[cr] - 1
                                incross[cr] = count
                                if trail is not None:
                                    trail.append((_T_INCROSS, cr))
                                if count == 0:
                                    bottom.add(cr)
                                    heappush(heap, (heap_key(comps[cr]), cr))
                        self._kill_rule(r)
        self.phase_s["close_s"] += perf_counter() - t_close

    def _fire(self, r_index: int) -> None:
        """Rule node with no incoming edges: its head becomes true."""
        self._remove_rule(r_index)
        head = self._idx.head_of_t[r_index]
        self.atom_support[head] -= 1
        if self.status[head] == FALSE:
            raise CloseConflictError(
                head,
                f"rule instance #{r_index} fired but its head atom "
                f"{self.gp.atoms.atom(head)} is already false",
            )
        self._set(head, TRUE, _R_FIRED, r_index)

    def _kill_rule(self, r_index: int) -> None:
        """Rule node deleted because a body literal became false."""
        self._remove_rule(r_index)
        head = self._idx.head_of_t[r_index]
        support = self.atom_support[head] - 1
        self.atom_support[head] = support
        if self._unf_valid and self._src[head] == r_index:
            # The head's derivation rule died: queue it for the next
            # incremental unfounded query to re-derive or falsify.
            self._src[head] = -1
            self._unf_lost.append(head)
            if self._trail is not None:
                self._trail.append((_T_SRC, head, r_index))
                self._trail.append((_T_LOST_APPEND,))
        if support == 0 and self.status[head] == UNDEF:
            self._set(head, FALSE, _R_NO_SUPPORT)

    def _remove_rule(self, r_index: int) -> None:
        """Mark a rule node dead; maintain compaction and the SCC cache.

        The rule's outgoing edge (to its head atom, if still live)
        disappears with it, so the head's component loses an incoming
        edge unless the rule is in the same component.
        """
        self.rule_alive[r_index] = 0
        slot = self._rule_slot[r_index]
        last = self._live_rules.pop()
        if last != r_index:
            self._live_rules[slot] = last
            self._rule_slot[last] = slot
        self._rule_slot[r_index] = -1
        trail = self._trail
        if trail is not None:
            trail.append((_T_RULE, r_index, slot))
        comp_of = self._scc_comp_of
        if comp_of is not None:
            cr = comp_of[self.n_atoms + r_index]
            if cr not in self._scc_dirty:
                self._scc_dirty.add(cr)
                if trail is not None:
                    trail.append((_T_DIRTY, cr))
            head = self._idx.head_of_t[r_index]
            if self.atom_alive[head]:
                ch = comp_of[head]
                if ch != cr:
                    count = self._scc_incross[ch] - 1
                    self._scc_incross[ch] = count
                    if trail is not None:
                        trail.append((_T_INCROSS, ch))
                    if count == 0:
                        self._scc_bottom.add(ch)
                        heappush(self._tie_heap, (self._heap_key(self._scc_comps[ch]), ch))

    # -- canonical atom order ------------------------------------------------

    def order_key(self, a: int) -> int:
        """Canonical rank of atom ``a`` (its fresh-grounding id).

        Identity unless the index carries a streaming-update
        ``atom_order`` overlay; interpreters compare ranks instead of raw
        ids wherever an order-sensitive choice must match a rebuild.
        """
        order = self._order
        return a if order is None else order[a]

    def _heap_key(self, nodes: list[int]) -> int:
        """Tie-schedule key of a component: its first atom in canonical
        order (node lists are sorted, so without an overlay that is just
        the first node — atoms sort before shifted rule nodes)."""
        order = self._order
        if order is None:
            return nodes[0]
        n_atoms = self.n_atoms
        return min((order[n] for n in nodes if n < n_atoms), default=1 << 60)

    # -- global queries on the live graph -----------------------------------

    def live_atom_ids(self) -> list[int]:
        """Atoms still in the graph (no truth value yet), ascending."""
        return sorted(self._live_atoms)

    @property
    def live_atom_count(self) -> int:
        """Number of atoms still undefined/alive (O(1), maintained)."""
        return self._live_atom_count

    def unfounded_atoms(self, *, full_recompute: bool = False) -> list[int]:
        """The greatest unfounded set: ``Atoms[close(M, G+)]`` (§2).

        Graph-theoretically: run the positive firing cascade on the live
        graph restricted to positive edges; live atoms *not* derived form
        the largest set whose induced positive subgraph has no source.
        Must be called on a closed state.

        The default path is incremental: source pointers established by
        the previous query stay valid across rounds, and only the region
        whose sources were invalidated by ``close`` is re-derived — a
        round that killed no source rule answers without touching the
        graph.  ``full_recompute=True`` runs the read-only full cascade
        (the seed-era algorithm, used as the differential oracle).
        """
        self._require_closed()
        t0 = perf_counter()
        if full_recompute:
            result = sorted(self._unfounded_full_scan())
        else:
            self._unfounded_refresh()
            result = sorted(self._unf_sourceless)
        self.phase_s["unfounded_s"] += perf_counter() - t0
        return result

    def falsify_unfounded(self, *, numbered: bool = True, start: int = 1) -> int:
        """Fused well-founded cascade: falsify unfounded sets to fixpoint.

        Equivalent to the §2 loop ``while U := unfounded_atoms():
        assign_many(U, FALSE); close()`` but fused into the kernel: each
        round reuses the incrementally-maintained source pointers, writes
        the batch straight into the worklist, and re-closes — no sorted
        list or per-atom label tuple crosses the API per round.  Returns
        the number of nonempty rounds.  Provenance labels are
        ``("unfounded", k)`` with ``k`` counting from ``start``
        (``numbered=False`` records ``("unfounded", None)``, matching the
        tie-breaking interpreter's convention).
        """
        self._require_closed()
        rounds = 0
        while True:
            t0 = perf_counter()
            self._unfounded_refresh()
            sourceless = self._unf_sourceless
            if not sourceless:
                self.phase_s["unfounded_s"] += perf_counter() - t0
                return rounds
            label = ("unfounded", start + rounds if numbered else None)
            rounds += 1
            # Sorted order keeps the close trajectory (and hence
            # fired-rule provenance) identical to the step-by-step
            # unfounded_atoms()/assign_many() loop.
            self.assign_many(sorted(sourceless), FALSE, label)
            self.phase_s["unfounded_s"] += perf_counter() - t0
            self.close()

    def _unfounded_full_scan(self) -> list[int]:
        """Read-only full positive cascade (the seed-era query).

        Touches only the live subgraph: the persistent ``pos_live``
        counters seed the cascade, and the scratch is epoch-marked instead
        of being reallocated or cleared.  Does not touch the incremental
        source-pointer state — this is the differential oracle for it.
        """
        idx = self._idx
        scratch = self._scratch
        scratch.grow(self.n_atoms, self.n_rules)
        scratch.epoch += 1
        epoch = scratch.epoch
        rule_mark = scratch.rule_mark
        rule_pend = scratch.rule_pend
        atom_mark = scratch.atom_mark
        pos_live = self.pos_live
        rule_alive = self.rule_alive
        atom_alive = self.atom_alive
        head_of = idx.head_of_t
        pos_occ_t = idx.pos_occ_t

        # Sourceless rule nodes of the live positive subgraph: every
        # positive body atom already left the graph (necessarily true).
        stack = [r for r in self._live_rules if not pos_live[r]]
        while stack:
            r = stack.pop()
            head = head_of[r]
            if atom_mark[head] == epoch or not atom_alive[head]:
                continue
            atom_mark[head] = epoch
            for r2 in pos_occ_t[head]:
                if rule_alive[r2]:
                    if rule_mark[r2] != epoch:
                        rule_mark[r2] = epoch
                        rule_pend[r2] = pos_live[r2]
                    pending = rule_pend[r2] - 1
                    rule_pend[r2] = pending
                    if pending == 0:
                        stack.append(r2)
        return [i for i in self._live_atoms if atom_mark[i] != epoch]

    def _unfounded_refresh(self) -> None:
        """Bring the source pointers up to date with the live graph."""
        if not self._unf_valid:
            self._unf_rebuild()
        elif self._unf_lost:
            self._unf_repair()

    def _unf_rebuild(self) -> None:
        """Full positive cascade installing fresh source pointers."""
        idx = self._idx
        scratch = self._scratch
        scratch.grow(self.n_atoms, self.n_rules)
        scratch.epoch += 1
        epoch = scratch.epoch
        rule_mark = scratch.rule_mark
        rule_pend = scratch.rule_pend
        atom_mark = scratch.atom_mark
        pos_live = self.pos_live
        rule_alive = self.rule_alive
        atom_alive = self.atom_alive
        head_of = idx.head_of_t
        pos_occ_t = idx.pos_occ_t
        src = self._src
        trail = self._trail

        stack = [r for r in self._live_rules if not pos_live[r]]
        while stack:
            r = stack.pop()
            head = head_of[r]
            if atom_mark[head] == epoch or not atom_alive[head]:
                continue
            atom_mark[head] = epoch
            if trail is not None:
                trail.append((_T_SRC, head, src[head]))
            src[head] = r
            for r2 in pos_occ_t[head]:
                if rule_alive[r2]:
                    if rule_mark[r2] != epoch:
                        rule_mark[r2] = epoch
                        rule_pend[r2] = pos_live[r2]
                    pending = rule_pend[r2] - 1
                    rule_pend[r2] = pending
                    if pending == 0:
                        stack.append(r2)
        new_sourceless: set[int] = set()
        for i in self._live_atoms:
            if atom_mark[i] != epoch:
                new_sourceless.add(i)
                if src[i] != -1:
                    if trail is not None:
                        trail.append((_T_SRC, i, src[i]))
                    src[i] = -1
        if trail is not None:
            trail.append((_T_SL_REPLACE, self._unf_sourceless))
            if self._unf_lost:
                trail.append((_T_LOST_CLEAR, self._unf_lost))
            trail.append((_T_UNF_VALID, self._unf_valid))
        self._unf_sourceless = new_sourceless
        self._unf_lost = []
        self._unf_valid = True

    def _unf_repair(self) -> None:
        """Re-derive only the region whose sources were invalidated.

        Phase 1 transitively withdraws sources that depended (through
        positive edges) on atoms that lost theirs; phase 2 re-establishes
        sources inside that affected region via rules whose live positive
        body atoms are all sourced (counters initialized lazily per
        touched rule, cascaded to fixpoint); whatever remains sourceless
        joins the unfounded set.  Soundness rests on deletion-only
        dynamics: anything derivable now was derivable before, so sources
        outside the affected region stay exact.
        """
        idx = self._idx
        atom_alive = self.atom_alive
        rule_alive = self.rule_alive
        head_of = idx.head_of_t
        pos_occ_t = idx.pos_occ_t
        src = self._src
        trail = self._trail
        scratch = self._scratch
        scratch.grow(self.n_atoms, self.n_rules)
        scratch.epoch += 1
        epoch = scratch.epoch
        atom_mark = scratch.atom_mark
        rule_mark = scratch.rule_mark
        rule_pend = scratch.rule_pend

        stack = [a for a in self._unf_lost if atom_alive[a]]
        if trail is not None:
            trail.append((_T_LOST_CLEAR, self._unf_lost))
        self._unf_lost = []
        affected: list[int] = []
        while stack:
            a = stack.pop()
            if atom_mark[a] == epoch:
                continue
            atom_mark[a] = epoch
            affected.append(a)
            for r in pos_occ_t[a]:
                if rule_alive[r]:
                    h = head_of[r]
                    if src[h] == r:
                        if trail is not None:
                            trail.append((_T_SRC, h, r))
                        src[h] = -1
                        if atom_alive[h]:
                            stack.append(h)
        if not affected:
            return

        pos_off, pos_atoms = idx.pos_off, idx.pos_atoms
        rules_by_head_t = idx.rules_by_head_t
        ready: list[int] = []
        for a in affected:
            for r in rules_by_head_t[a]:
                if rule_alive[r] and rule_mark[r] != epoch:
                    rule_mark[r] = epoch
                    bad = 0
                    for b in pos_atoms[pos_off[r] : pos_off[r + 1]]:
                        if atom_alive[b] and src[b] == -1:
                            bad += 1
                    rule_pend[r] = bad
                    if bad == 0:
                        ready.append(r)
        while ready:
            r = ready.pop()
            h = head_of[r]
            if src[h] != -1 or not atom_alive[h] or atom_mark[h] != epoch:
                continue
            if trail is not None:
                trail.append((_T_SRC, h, -1))
            src[h] = r
            for r2 in pos_occ_t[h]:
                if rule_alive[r2] and rule_mark[r2] == epoch:
                    pending = rule_pend[r2] - 1
                    rule_pend[r2] = pending
                    if pending == 0:
                        ready.append(r2)
        sourceless = self._unf_sourceless
        for a in affected:
            if src[a] == -1 and atom_alive[a]:
                sourceless.add(a)
                if trail is not None:
                    trail.append((_T_SL_ADD, a))

    def _require_closed(self) -> None:
        if self._dirty or self._initial:
            raise SemanticsError("graph queries require a closed state; call close() first")

    def _live_successors(self, node: int) -> Iterator[tuple[int, bool]]:
        """Signed out-edges of a live node (atoms: 0..n_atoms-1; rules shifted)."""
        idx = self._idx
        n_atoms = self.n_atoms
        if node < n_atoms:
            rule_alive = self.rule_alive
            for r in idx.pos_occ_t[node]:
                if rule_alive[r]:
                    yield n_atoms + r, True
            for r in idx.neg_occ_t[node]:
                if rule_alive[r]:
                    yield n_atoms + r, False
        else:
            head = idx.head_of_t[node - n_atoms]
            if self.atom_alive[head]:
                yield head, True

    def _rebuild_scc(self, *, eager_sides: bool = True) -> None:
        """Full Tarjan over the live graph; installs a fresh condensation.

        Component ids continue from ``_scc_next_cid`` so ids are never
        reused across rebuilds — stale schedule entries and trail records
        referring to pre-rebuild components can be recognized as such.
        The sides cache is reset (its keys are pre-rebuild cids); the
        pure-Python kernel repopulates it lazily per bottom query, while
        the array backend overrides this to run one pooled Lemma-1 pass
        when ``eager_sides`` is set (``full_recompute`` clears it so the
        oracle path stays on fresh :func:`analyze_component` calls).
        """
        if self._trail is not None:
            self._trail.append((_T_REBUILD,))
        self._tie_sides = {}
        n_atoms = self.n_atoms
        node_count = n_atoms + self.n_rules
        live_nodes = sorted(self._live_atoms)
        live_nodes.extend(sorted(n_atoms + r for r in self._live_rules))

        # Materialize live out-edges as plain lists up front: Tarjan and
        # the incross sweep below then iterate them at C speed instead of
        # paying two generator frames per edge.  Dead slots share one
        # (never-mutated) empty list and are never visited.
        idx = self._idx
        rule_alive = self.rule_alive
        atom_alive = self.atom_alive
        pos_occ_t, neg_occ_t = idx.pos_occ_t, idx.neg_occ_t
        head_of = idx.head_of_t
        empty: list[int] = []
        adj: list[list[int]] = [empty] * node_count
        for u in self._live_atoms:
            adj[u] = [
                n_atoms + r for r in pos_occ_t[u] if rule_alive[r]
            ] + [n_atoms + r for r in neg_occ_t[u] if rule_alive[r]]
        for r in self._live_rules:
            head = head_of[r]
            if atom_alive[head]:
                adj[n_atoms + r] = [head]

        components = strongly_connected_components(
            node_count, adj.__getitem__, nodes=live_nodes
        )
        if self._scc_comp_of is None:
            self._scc_comp_of = [-1] * node_count
        comp_of = self._scc_comp_of
        base = self._scc_next_cid
        comps: dict[int, list[int]] = {}
        for offset, component in enumerate(components):
            # Canonical node order inside each component: deterministic
            # regardless of whether it came from a full or a partial
            # (refinement) Tarjan run.
            component.sort()
            cid = base + offset
            comps[cid] = component
            for node in component:
                comp_of[node] = cid
        self._scc_comps = comps
        self._scc_next_cid = base + len(components)
        self._scc_bottom_obj = {}
        self._scc_dirty.clear()

        # Count incoming cross edges per component in one edge sweep
        # over the adjacency lists built above.
        incross = dict.fromkeys(comps, 0)
        for u in live_nodes:
            cu = comp_of[u]
            for v in adj[u]:
                cv = comp_of[v]
                if cv != cu:
                    incross[cv] += 1
        self._scc_incross = incross
        self._scc_bottom = {cid for cid, count in incross.items() if count == 0}
        heap = self._tie_heap
        for cid in self._scc_bottom:
            heappush(heap, (self._heap_key(comps[cid]), cid))

    def _refine_scc(self) -> None:
        """Re-run Tarjan only inside components that lost a node.

        Deletion-only dynamics make this sound: the live graph is a
        subgraph of the one the cache was built on, so every current SCC
        is contained in a cached component — components without deletions
        are still exactly SCCs, and dirty ones split into the SCCs of
        their surviving members.  Incoming-edge counts of surviving
        components are exact (close decrements them per vanished edge);
        only the new pieces are recounted, via the reverse adjacency.
        """
        comps = self._scc_comps
        comp_of = self._scc_comp_of
        assert comps is not None and comp_of is not None
        dirty = self._scc_dirty
        n_atoms = self.n_atoms
        atom_alive = self.atom_alive
        rule_alive = self.rule_alive
        incross = self._scc_incross
        bottom = self._scc_bottom
        bottom_obj = self._scc_bottom_obj
        trail = self._trail

        tie_sides = self._tie_sides
        popped_sides: dict[int, TieSides] = {}
        removed: list[tuple] = []
        affected: list[int] = []
        for cid in dirty:
            for node in comps[cid]:
                alive = (
                    atom_alive[node]
                    if node < n_atoms
                    else rule_alive[node - n_atoms]
                )
                if alive:
                    affected.append(node)
            sides = tie_sides.pop(cid, None)
            if sides is not None:
                popped_sides[cid] = sides
            if trail is not None:
                removed.append(
                    (
                        cid,
                        comps[cid],
                        incross[cid],
                        cid in bottom,
                        bottom_obj.get(cid),
                        sides,
                    )
                )
            del comps[cid]
            del incross[cid]
            bottom.discard(cid)
            bottom_obj.pop(cid, None)
        dirty.clear()
        if not affected:
            if trail is not None:
                trail.append((_T_REFINE, removed, []))
            return

        # Successors restricted to the same *old* component (comp_of still
        # holds the old ids for affected nodes): refinement never crosses
        # cached component boundaries.
        def succ_ids(u: int) -> Iterator[int]:
            cu = comp_of[u]
            return (v for v, _ in self._live_successors(u) if comp_of[v] == cu)

        pieces = strongly_connected_components(
            n_atoms + self.n_rules, succ_ids, nodes=affected
        )
        fresh: list[tuple[int, list[int]]] = []
        for piece in pieces:
            piece.sort()
            cid = self._scc_next_cid
            self._scc_next_cid += 1
            comps[cid] = piece
            fresh.append((cid, piece))
            if len(piece) > 1:
                # Derive the piece's (K, L) sides from its old component:
                # a clean partition restricted to any subgraph stays
                # clean, so the surviving piece inherits its labels with
                # no re-verification — the incremental reuse this cache
                # exists for.  comp_of still holds the old cid here.
                old = popped_sides.get(comp_of[piece[0]])
                if old is not None and old.is_tie:
                    tie_sides[cid] = old.restricted(piece)
        for cid, piece in fresh:
            for node in piece:
                comp_of[node] = cid
        if trail is not None:
            trail.append((_T_REFINE, removed, [cid for cid, _ in fresh]))

        # Recount incoming cross edges of each new piece from its reverse
        # adjacency (edges from other pieces of the same old component
        # became cross edges; edges from other components stayed).
        idx = self._idx
        rules_by_head_t = idx.rules_by_head_t
        pos_off, pos_atoms = idx.pos_off, idx.pos_atoms
        neg_off, neg_atoms = idx.neg_off, idx.neg_atoms
        heap = self._tie_heap
        for cid, piece in fresh:
            count = 0
            for node in piece:
                if node < n_atoms:
                    for r in rules_by_head_t[node]:
                        if rule_alive[r] and comp_of[n_atoms + r] != cid:
                            count += 1
                else:
                    r = node - n_atoms
                    for a in pos_atoms[pos_off[r] : pos_off[r + 1]]:
                        if atom_alive[a] and comp_of[a] != cid:
                            count += 1
                    for a in neg_atoms[neg_off[r] : neg_off[r + 1]]:
                        if atom_alive[a] and comp_of[a] != cid:
                            count += 1
            incross[cid] = count
            if count == 0:
                bottom.add(cid)
                heappush(heap, (self._heap_key(piece), cid))

    def _sides_scalar(self, component: list[int]) -> TieSides | None:
        """One CSR-direct Lemma-1 pass over a live component; ``None`` if
        the component is not a tie.

        Equivalent to the spanning-walk-plus-verify of
        :func:`analyze_component` (root ``component[0]``, side 0) but
        reads the compiled adjacency directly instead of going through
        the ``_live_successors`` generator.  Membership and liveness are
        one test: a node belongs to the component iff ``comp_of`` maps it
        to this cid — dead nodes keep their stale, never-reused cids, so
        they can never collide with a current one.
        """
        idx = self._idx
        n_atoms = self.n_atoms
        comp_of = self._scc_comp_of
        assert comp_of is not None
        cid = comp_of[component[0]]
        pos_occ_t, neg_occ_t = idx.pos_occ_t, idx.neg_occ_t
        head_of = idx.head_of_t
        root = component[0]
        side: dict[int, int] = {root: 0}
        stack = [root]
        while stack:
            u = stack.pop()
            su = side[u]
            if u < n_atoms:
                for r in pos_occ_t[u]:
                    v = n_atoms + r
                    if comp_of[v] == cid and v not in side:
                        side[v] = su
                        stack.append(v)
                for r in neg_occ_t[u]:
                    v = n_atoms + r
                    if comp_of[v] == cid and v not in side:
                        side[v] = su ^ 1
                        stack.append(v)
            else:
                h = head_of[u - n_atoms]
                if comp_of[h] == cid and h not in side:
                    side[h] = su
                    stack.append(h)
        for u in component:
            su = side[u]
            if u < n_atoms:
                for r in pos_occ_t[u]:
                    v = n_atoms + r
                    if comp_of[v] == cid and side[v] != su:
                        return None
                for r in neg_occ_t[u]:
                    v = n_atoms + r
                    if comp_of[v] == cid and side[v] == su:
                        return None
            else:
                h = head_of[u - n_atoms]
                if comp_of[h] == cid and side[h] != su:
                    return None
        return TieSides(set(component), side)

    def _cached_sides(self, cid: int, component: list[int]) -> TieSides | None:
        """Sides for ``cid`` from the incremental cache, computing (and
        installing) them on a miss; ``None`` marks a non-tie.

        Installs need no trail record: the sides are a pure function of
        the (never reused) cid, so an entry that survives a rewind — like
        a memoized ``_scc_bottom_obj`` — revalidates naturally, and a
        missing one is simply recomputed.  Time is attributed to
        ``tie_analysis_s`` (and to the overlap accumulator, so an
        enclosing select window does not double-count it).
        """
        sides = self._tie_sides.get(cid)
        if sides is None:
            t0 = perf_counter()
            sides = self._sides_scalar(component)
            if sides is not None:
                self._tie_sides[cid] = sides
            dt = perf_counter() - t0
            self.phase_s["tie_analysis_s"] += dt
            self._ta_overlap += dt
        return sides

    def _bottom_component(self, cid: int, *, fresh: bool = False) -> BottomComponent:
        """Memoized :class:`BottomComponent` (with analysis) for one cid.

        Serves the analysis from the incremental sides cache when it can;
        non-ties (and ``fresh=True``, the ``full_recompute`` oracle) run
        the one-shot :func:`analyze_component`, which also produces the
        odd-cycle witness.
        """
        obj = self._scc_bottom_obj.get(cid)
        if obj is None:
            comps = self._scc_comps
            assert comps is not None
            component = comps[cid]
            n_atoms = self.n_atoms
            analysis: TieAnalysis | None = None
            sides_map: dict[int, int] | None = None
            if not fresh:
                sides = self._cached_sides(cid, component)
                if sides is not None:
                    # Canonicalize (component head on side 0) without the
                    # TieAnalysis round trip; flip 0 shares the cached
                    # dict, which the kernel never mutates in place.
                    s = sides.side
                    sides_map = (
                        s if s[component[0]] == 0 else {n: s[n] ^ 1 for n in component}
                    )
            if sides_map is None:
                analysis = analyze_component(component, self._live_successors)
            # Component node lists are sorted, so the atom/rule halves are
            # contiguous slices.
            cut = bisect_left(component, n_atoms)
            atom_ids = component[:cut]
            rule_ids = [n - n_atoms for n in component[cut:]]
            obj = BottomComponent(atom_ids, rule_ids, analysis, n_atoms, sides_map)
            self._scc_bottom_obj[cid] = obj
        return obj

    def bottom_components_live(
        self, *, full_recompute: bool = False
    ) -> list[BottomComponent]:
        """Bottom SCCs of the live graph with their tie analyses (§3).

        Singleton components cannot be bottom after ``close`` (a sourceless
        atom would have been falsified, a sourceless rule fired), so every
        returned component is a genuine cyclic component.

        Incremental: the condensation, the per-component incoming-edge
        counts, and the (K, L) sides are all cached; only components
        touched by deletions since the last query cost work.
        ``full_recompute=True`` rebuilds everything from scratch — the
        condensation via a full Tarjan and every analysis via a fresh
        :func:`analyze_component`, bypassing the incremental sides cache
        (the differential oracle for it).
        """
        self._require_closed()
        if full_recompute or self._scc_comps is None:
            self._rebuild_scc(eager_sides=not full_recompute)
        elif self._scc_dirty:
            self._refine_scc()

        comps = self._scc_comps
        assert comps is not None
        result: list[BottomComponent] = []
        for cid in sorted(self._scc_bottom):
            if len(comps[cid]) == 1:
                # No self-loops exist in a bipartite graph; a singleton
                # bottom component would have been resolved by close().
                raise AssertionError(
                    "singleton bottom component survived close(); graph state corrupt"
                )
            result.append(self._bottom_component(cid, fresh=full_recompute))
        return result

    def select_tie(self) -> BottomComponent | None:
        """The bottom tie containing the smallest atom id, or ``None``.

        Serves from the min-keyed schedule: the heap holds every
        component that became bottom, and this peeks the smallest valid
        entry, lazily discarding components that split (their cid left
        the condensation), resolved (no longer bottom), or analyze as
        non-ties.  Equivalent to scanning
        ``bottom_components_live()`` for the tie with the smallest atom
        id, at O(log n) instead of O(components) per round.
        """
        t0 = perf_counter()
        self._ta_overlap = 0.0
        self._require_closed()
        if self._scc_comps is None:
            self._rebuild_scc()
        elif self._scc_dirty:
            self._refine_scc()
        comps = self._scc_comps
        assert comps is not None
        bottom = self._scc_bottom
        heap = self._tie_heap
        result: BottomComponent | None = None
        while heap:
            cid = heap[0][1]
            component = comps.get(cid)
            if component is None or cid not in bottom:
                # Stale: the component split, resolved, or (under an
                # active trail) belongs to an undone timeline.  Pops are
                # permanent — component ids are never reused, and the
                # trail undo re-pushes any component it restores to
                # bottom, so a dropped entry can never be missed.
                heappop(heap)
                continue
            if len(component) == 1:
                raise AssertionError(
                    "singleton bottom component survived close(); graph state corrupt"
                )
            obj = self._bottom_component(cid)
            if not obj.is_tie:
                # Non-ties stay non-ties until the component splits, at
                # which point the fresh pieces get their own entries.
                heappop(heap)
                continue
            result = obj
            break
        # Sides work done inside this window was already booked under
        # tie_analysis_s; subtract it so the phase totals stay disjoint.
        self.phase_s["tie_select_s"] += (perf_counter() - t0) - self._ta_overlap
        return result

    def select_ties(self) -> list[BottomComponent]:
        """The bottom ties to break in this round (one batched round).

        The pure-Python kernel keeps the sequential semantics — one tie
        per round, the one :meth:`select_tie` returns — so existing golden
        trails are unchanged; the array backend overrides this to return
        *all* current bottom ties at once (they are disjoint and have no
        incoming cross edges, so breaking them in one round reaches the
        same closure as breaking them one by one).  Every nonempty round
        increments :attr:`tie_rounds`.
        """
        tie = self.select_tie()
        if tie is None:
            return []
        self.tie_rounds += 1
        return [tie]

    # -- trail-based undo ----------------------------------------------------

    def trail_begin(self) -> None:
        """Start recording an undo trail (idempotent).

        Every subsequent mutation — assignments, liveness changes,
        counter updates, SCC-cache and schedule maintenance, source
        pointer moves — appends an inverse record, so
        :meth:`trail_undo` can rewind to any :meth:`trail_mark` at cost
        proportional to the work performed since.  Clones never inherit
        an active trail.
        """
        if self._trail is None:
            self._trail = []

    def trail_mark(self):
        """An opaque mark for the current state (requires an active trail)."""
        trail = self._trail
        if trail is None:
            raise SemanticsError("trail_mark() requires trail_begin() first")
        return (len(trail), len(self._labels), self._initial, tuple(self._dirty))

    def trail_undo(self, mark) -> None:
        """Rewind the state to ``mark``, undoing everything since.

        Replays the trail in reverse: each record restores exactly the
        state its operation observed (liveness conditions at undo time
        equal those at do time because every later change has already
        been reverted).  Auxiliary caches are restored to a *consistent*
        view: component ids are never reused, so schedule entries and
        memoized analyses that were re-pushed or survive the rewind
        revalidate naturally.
        """
        trail = self._trail
        if trail is None:
            raise SemanticsError("trail_undo() requires trail_begin() first")
        length, labels_len, initial, dirty_snapshot = mark
        idx = self._idx
        status = self.status
        reason_kind = self._reason_kind
        atom_alive = self.atom_alive
        rule_alive = self.rule_alive
        rule_pending = self.rule_pending
        pos_live = self.pos_live
        pos_occ_t = idx.pos_occ_t
        neg_occ_t = idx.neg_occ_t
        head_of = idx.head_of_t
        live_atoms, atom_slot = self._live_atoms, self._atom_slot
        live_rules, rule_slot = self._live_rules, self._rule_slot
        for pos in range(len(trail) - 1, length - 1, -1):
            entry = trail[pos]
            tag = entry[0]
            if tag == _T_SET:
                a = entry[1]
                status[a] = UNDEF
                reason_kind[a] = _R_NONE
            elif tag == _T_ATOM:
                a, slot = entry[1], entry[2]
                if slot == len(live_atoms):
                    live_atoms.append(a)
                else:
                    moved = live_atoms[slot]
                    live_atoms.append(moved)
                    atom_slot[moved] = len(live_atoms) - 1
                    live_atoms[slot] = a
                atom_slot[a] = slot
                atom_alive[a] = 1
                self._live_atom_count += 1
                # The atom's value is still set (its _T_SET record is
                # earlier in the trail); replay the inverse edge updates
                # under the liveness the original operation observed.
                if status[a] == TRUE:
                    for r in pos_occ_t[a]:
                        pos_live[r] += 1
                        if rule_alive[r]:
                            rule_pending[r] += 1
                else:
                    for r in pos_occ_t[a]:
                        pos_live[r] += 1
                    for r in neg_occ_t[a]:
                        if rule_alive[r]:
                            rule_pending[r] += 1
            elif tag == _T_RULE:
                r, slot = entry[1], entry[2]
                if slot == len(live_rules):
                    live_rules.append(r)
                else:
                    moved = live_rules[slot]
                    live_rules.append(moved)
                    rule_slot[moved] = len(live_rules) - 1
                    live_rules[slot] = r
                rule_slot[r] = slot
                rule_alive[r] = 1
                self.atom_support[head_of[r]] += 1
            elif tag == _T_INCROSS:
                cid = entry[1]
                count = self._scc_incross.get(cid)
                if count is not None:
                    if count == 0:
                        self._scc_bottom.discard(cid)
                    self._scc_incross[cid] = count + 1
            elif tag == _T_DIRTY:
                self._scc_dirty.discard(entry[1])
            elif tag == _T_REFINE:
                comps = self._scc_comps
                if comps is not None:
                    for cid in entry[2]:
                        comps.pop(cid, None)
                        self._scc_incross.pop(cid, None)
                        self._scc_bottom.discard(cid)
                        self._scc_bottom_obj.pop(cid, None)
                        self._tie_sides.pop(cid, None)
                    comp_of = self._scc_comp_of
                    assert comp_of is not None
                    for cid, nodes, count, was_bottom, obj, sides in entry[1]:
                        comps[cid] = nodes
                        self._scc_incross[cid] = count
                        if was_bottom:
                            self._scc_bottom.add(cid)
                            # Its schedule entry may have been dropped as
                            # stale meanwhile; restore the invariant that
                            # every bottom component has a live entry.
                            heappush(self._tie_heap, (self._heap_key(nodes), cid))
                        if obj is not None:
                            self._scc_bottom_obj[cid] = obj
                        if sides is not None:
                            self._tie_sides[cid] = sides
                        for node in nodes:
                            comp_of[node] = cid
                        self._scc_dirty.add(cid)
            elif tag == _T_REBUILD:
                # Drop the whole condensation (rebuilt on next query).
                # comp_of must go too: close() keys its tracking off it,
                # and the counts it would maintain no longer exist.
                self._scc_comps = None
                self._scc_comp_of = None
                self._scc_incross = {}
                self._scc_bottom = set()
                self._scc_bottom_obj = {}
                self._scc_dirty = set()
                self._tie_sides = {}
            elif tag == _T_SRC:
                self._src[entry[1]] = entry[2]
            elif tag == _T_SL_ADD:
                self._unf_sourceless.discard(entry[1])
            elif tag == _T_SL_DISCARD:
                self._unf_sourceless.add(entry[1])
            elif tag == _T_SL_REPLACE:
                self._unf_sourceless = entry[1]
            elif tag == _T_LOST_CLEAR:
                self._unf_lost = entry[1]
            elif tag == _T_LOST_APPEND:
                self._unf_lost.pop()
            else:  # _T_UNF_VALID
                self._unf_valid = entry[1]
        del trail[length:]
        # Labels interned since the mark are unreferenced once the _T_SET
        # records are unwound; reclaim them so a long DFS on one state
        # stays bounded by its current depth, not its total history.
        del self._labels[labels_len:]
        self._initial = initial
        self._dirty.clear()
        self._dirty.extend(dirty_snapshot)

    # -- cloning ------------------------------------------------------------

    def clone(self) -> "GroundGraphState":
        """An independent copy of the evaluation state.

        The immutable structure (ground program and its compiled index) is
        shared; the mutable value/liveness/counter arrays are copied at
        C level.  The SCC cache and tie schedule are carried over
        (component node lists, analyses, and result objects are immutable
        and shared; the id map, edge counts, and bookkeeping sets are
        copied), as is the incremental unfounded-set state.  The query
        scratch is shared because the epoch discipline makes concurrent
        reuse safe.  An active undo trail is *not* inherited — clones
        start with recording disabled.
        """
        other = object.__new__(GroundGraphState)
        other.gp = self.gp
        other._idx = self._idx
        other.n_atoms = self.n_atoms
        other.n_rules = self.n_rules
        other.status = list(self.status)
        other.atom_alive = bytearray(self.atom_alive)
        other.rule_alive = bytearray(self.rule_alive)
        other.rule_pending = list(self.rule_pending)
        other.atom_support = list(self.atom_support)
        other.pos_live = list(self.pos_live)
        other._live_atoms = list(self._live_atoms)
        other._atom_slot = list(self._atom_slot)
        other._live_rules = list(self._live_rules)
        other._rule_slot = list(self._rule_slot)
        other._live_atom_count = self._live_atom_count
        other._order = self._order
        other._reason_kind = bytearray(self._reason_kind)
        other._reason_arg = list(self._reason_arg)
        other._labels = list(self._labels)
        other._dirty = deque(self._dirty)
        other._initial = self._initial
        other._scratch = self._scratch
        other._src = list(self._src)
        other._unf_valid = self._unf_valid
        other._unf_lost = list(self._unf_lost)
        other._unf_sourceless = set(self._unf_sourceless)
        other._scc_comps = (
            dict(self._scc_comps) if self._scc_comps is not None else None
        )
        other._scc_comp_of = (
            list(self._scc_comp_of) if self._scc_comp_of is not None else None
        )
        other._scc_incross = dict(self._scc_incross)
        other._scc_bottom = set(self._scc_bottom)
        other._scc_bottom_obj = dict(self._scc_bottom_obj)
        other._scc_next_cid = self._scc_next_cid
        other._scc_dirty = set(self._scc_dirty)
        other._tie_sides = dict(self._tie_sides)
        other._ta_overlap = 0.0
        other._tie_heap = list(self._tie_heap)
        other._trail = None
        other.phase_s = dict(self.phase_s)
        other.tie_rounds = self.tie_rounds
        return other

    # -- results -------------------------------------------------------------

    def interpretation(self) -> Interpretation:
        """Snapshot the current (possibly partial) model."""
        return Interpretation(self.gp, tuple(self.status))

    def __repr__(self) -> str:
        return (
            f"GroundGraphState(atoms={self.n_atoms}, rules={self.n_rules}, "
            f"live_atoms={self.live_atom_count})"
        )
