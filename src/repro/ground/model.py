"""Truth values and interpretations (the paper's partial models).

A *partial model* maps ground atoms to true/false, leaving some undefined;
it is *total* when every atom has a value (§2).  :class:`Interpretation`
is the immutable result object returned by every interpreter: it wraps the
ground program's atom table plus a status array, and answers queries both
for materialized atoms and — under relevant grounding — for the
closed-world remainder (EDB atoms by Δ, unmaterialized IDB atoms false).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import GroundProgram

__all__ = ["UNDEF", "TRUE", "FALSE", "Interpretation"]

UNDEF = 0
TRUE = 1
FALSE = 2

_BOOL_OF = {TRUE: True, FALSE: False, UNDEF: None}


@dataclass(frozen=True)
class Interpretation:
    """A (possibly partial) model of a ground program.

    ``status[i]`` is the truth value of atom ``i`` in the ground program's
    atom table.  Atoms that were never materialized (possible only under
    relevant grounding) are resolved by the closed-world convention: EDB
    atoms by membership in Δ, IDB atoms false — this matches the paper's
    semantics because unmaterialized atoms always lie outside the
    upper-bound model U\\* and are false in every run of the well-founded
    (tie-breaking) interpreter.
    """

    ground_program: GroundProgram
    status: tuple[int, ...]

    def value(self, atom: Atom) -> Optional[bool]:
        """Truth value of a ground atom: True / False / None (undefined)."""
        index = self.ground_program.atoms.get(atom)
        # Streaming updates can append atoms to the shared table after
        # this snapshot was taken; ids beyond the snapshot degrade to the
        # same closed-world default as unmaterialized atoms.
        if index is not None and index < len(self.status):
            return _BOOL_OF[self.status[index]]
        if atom.predicate in self.ground_program.program.edb_predicates:
            return self.ground_program.database.contains_atom(atom)
        return False

    def __getitem__(self, atom: Atom) -> Optional[bool]:
        return self.value(atom)

    @property
    def is_total(self) -> bool:
        """True iff no materialized atom is undefined."""
        return UNDEF not in self.status

    @property
    def undefined_count(self) -> int:
        """Number of materialized atoms left undefined."""
        return sum(1 for s in self.status if s == UNDEF)

    def _atoms_with(self, wanted: int) -> Iterator[Atom]:
        table = self.ground_program.atoms
        for index, s in enumerate(self.status):
            if s == wanted:
                yield table.atom(index)

    def true_atoms(self) -> Iterator[Atom]:
        """Materialized atoms with value true."""
        return self._atoms_with(TRUE)

    def false_atoms(self) -> Iterator[Atom]:
        """Materialized atoms with value false."""
        return self._atoms_with(FALSE)

    def undefined_atoms(self) -> Iterator[Atom]:
        """Materialized atoms left without a truth value."""
        return self._atoms_with(UNDEF)

    def true_set(self) -> frozenset[Atom]:
        """The set of true atoms (the model's positive part)."""
        return frozenset(self.true_atoms())

    def true_rows(self, predicate: str) -> frozenset[tuple]:
        """Constant tuples of the true atoms of one predicate."""
        return frozenset(
            a.args for a in self.true_atoms() if a.predicate == predicate
        )

    def holds(self, atom: Atom) -> bool:
        """True iff the atom is *true* (undefined counts as not holding)."""
        return self.value(atom) is True

    def as_database(self) -> Database:
        """The true atoms as a :class:`Database` (the output instance)."""
        return Database.from_atoms(self.true_atoms())

    def agrees_with(self, other: "Interpretation") -> bool:
        """True iff both models give identical values on *shared* atoms.

        Used to compare runs under different groundings: atoms materialized
        in only one interpretation are compared through :meth:`value`, so a
        full-grounding FALSE matches a relevant-grounding closed-world
        default.
        """
        mine = {self.ground_program.atoms.atom(i): s for i, s in enumerate(self.status)}
        for atom, s in mine.items():
            if _BOOL_OF[s] != other.value(atom):
                return False
        theirs = {
            other.ground_program.atoms.atom(i): s for i, s in enumerate(other.status)
        }
        for atom, s in theirs.items():
            if _BOOL_OF[s] != self.value(atom):
                return False
        return True

    def summary(self) -> str:
        """Counts of true/false/undefined materialized atoms."""
        true = sum(1 for s in self.status if s == TRUE)
        false = sum(1 for s in self.status if s == FALSE)
        return (
            f"Interpretation(true={true}, false={false}, "
            f"undefined={len(self.status) - true - false}, total={self.is_total})"
        )

    def __repr__(self) -> str:
        return self.summary()
