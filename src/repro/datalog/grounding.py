"""Grounding: from (program, database) to ground rule instances.

The paper's ground graph ``G(Π, Δ)`` has a rule node ``r(a1, ..., ak)`` for
*every* rule ``r`` with ``k`` variables and *every* k-tuple of universe
constants (§2).  That **full grounding** is implemented faithfully here, and
is exponential in the number of variables per rule.

For programs where that blows up (e.g. the ``[X = i]`` chains of the
Theorem 6 reduction), the **relevant grounding** keeps only instances whose
positive body atoms all lie in the *upper-bound model* U\\* (EDB facts of Δ
plus the least model of the positivized program).  Atoms outside U\\* form
an unfounded set, so the well-founded and well-founded tie-breaking
semantics are unchanged (property-tested against full grounding); *pure*
tie-breaking and exhaustive fixpoint enumeration should use ``full``.

Both grounders produce a :class:`GroundProgram`: an atom table (dense ids),
a list of :class:`GroundRule` (deduplicated positive/negative body ids),
and the originating substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Iterator, Literal as TypingLiteral, Mapping, Sequence

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine.facts import FactStore
from repro.engine.matching import Binding, enumerate_bindings, order_body_for_join
from repro.engine.seminaive import upper_bound_model
from repro.errors import GroundingError, ValidationError

__all__ = ["AtomTable", "GroundRule", "GroundProgram", "ground", "universe_of", "GroundingMode"]

GroundingMode = TypingLiteral["full", "relevant", "edb"]


class AtomTable:
    """Bidirectional mapping between ground atoms and dense integer ids."""

    def __init__(self) -> None:
        self._ids: dict[Atom, int] = {}
        self._atoms: list[Atom] = []

    def id_of(self, atom: Atom) -> int:
        """The id of ``atom``, inserting it if new."""
        idx = self._ids.get(atom)
        if idx is None:
            idx = len(self._atoms)
            self._ids[atom] = idx
            self._atoms.append(atom)
        return idx

    def get(self, atom: Atom) -> int | None:
        """The id of ``atom`` or ``None`` if it was never materialized."""
        return self._ids.get(atom)

    def atom(self, index: int) -> Atom:
        """The atom with dense id ``index``."""
        return self._atoms[index]

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._ids

    def atoms(self) -> Sequence[Atom]:
        """All materialized atoms, in id order."""
        return tuple(self._atoms)


@dataclass(frozen=True, slots=True)
class GroundRule:
    """One instantiated rule: the paper's rule node ``r(a1, ..., ak)``.

    ``pos`` / ``neg`` are *deduplicated* atom ids (the ground graph's edge
    sets), preserving first-occurrence order.  ``rule_index`` points into the
    source program and ``substitution`` is the constant tuple aligned with
    ``rule.variables()``.
    """

    head: int
    pos: tuple[int, ...]
    neg: tuple[int, ...]
    rule_index: int
    substitution: tuple[Constant, ...]


@dataclass
class GroundProgram:
    """The result of grounding: atoms, rule instances, and provenance."""

    program: Program
    database: Database
    universe: tuple[Constant, ...]
    mode: GroundingMode
    atoms: AtomTable
    rules: list[GroundRule] = field(default_factory=list)

    @property
    def atom_count(self) -> int:
        """Number of materialized ground atoms."""
        return len(self.atoms)

    @property
    def rule_count(self) -> int:
        """Number of ground rule instances."""
        return len(self.rules)

    def instantiated_rule(self, ground_rule: GroundRule) -> Rule:
        """The source rule with the instance's substitution applied."""
        source = self.program.rules[ground_rule.rule_index]
        binding = dict(zip(source.variables(), ground_rule.substitution))
        return source.substitute(binding)

    def describe(self) -> str:
        """One-line summary, for logs and benchmarks."""
        return (
            f"GroundProgram(mode={self.mode}, |U|={len(self.universe)}, "
            f"atoms={self.atom_count}, instances={self.rule_count})"
        )


def universe_of(program: Program, database: Database, extra: Iterable[Constant] = ()) -> tuple[Constant, ...]:
    """The universe U: all constants of the program, the database, and ``extra``.

    Sorted by string rendering for deterministic grounding order.
    """
    constants = set(program.constants) | set(database.constants()) | set(extra)
    return tuple(sorted(constants, key=str))


def _literal_atom_id(table: AtomTable, literal: Literal, binding: Mapping[Variable, Constant]) -> int:
    return table.id_of(literal.atom.substitute(binding))


def _make_instance(
    table: AtomTable,
    rule: Rule,
    rule_index: int,
    variables: Sequence[Variable],
    binding: Mapping[Variable, Constant],
) -> GroundRule:
    head_id = table.id_of(rule.head.substitute(binding))
    pos: dict[int, None] = {}
    neg: dict[int, None] = {}
    for lit in rule.body:
        target = pos if lit.positive else neg
        target.setdefault(_literal_atom_id(table, lit, binding))
    return GroundRule(
        head=head_id,
        pos=tuple(pos),
        neg=tuple(neg),
        rule_index=rule_index,
        substitution=tuple(binding[v] for v in variables),
    )


def _ground_full(
    program: Program,
    database: Database,
    universe: tuple[Constant, ...],
    max_instances: int,
) -> GroundProgram:
    # Guard: predict the instance count before enumerating.
    total = 0
    for r in program.rules:
        k = len(r.variables())
        count = len(universe) ** k if k else 1
        total += count
        if total > max_instances:
            raise GroundingError(
                f"full grounding needs more than {max_instances} instances "
                f"(rule {r} alone has |U|^{k} = {count}); use mode='relevant' "
                "or raise max_instances"
            )

    table = AtomTable()
    # VP: every ground atom of every predicate, per the paper's definition.
    for pred in sorted(program.predicates | database.predicates()):
        arity = program.arities.get(pred)
        if arity is None:
            rows = database[pred]
            arity = len(next(iter(rows))) if rows else 0
        for args in product(universe, repeat=arity):
            table.id_of(Atom(pred, args))

    gp = GroundProgram(program, database, universe, "full", table)
    for rule_index, r in enumerate(program.rules):
        variables = r.variables()
        if not variables:
            gp.rules.append(_make_instance(table, r, rule_index, variables, {}))
            continue
        for values in product(universe, repeat=len(variables)):
            binding = dict(zip(variables, values))
            gp.rules.append(_make_instance(table, r, rule_index, variables, binding))
    return gp


def _ground_joined(
    program: Program,
    database: Database,
    universe: tuple[Constant, ...],
    max_instances: int,
    prune_false_negative_edb: bool,
    mode: GroundingMode,
) -> GroundProgram:
    """Shared implementation of the ``relevant`` and ``edb`` modes.

    ``relevant`` joins every positive body literal against the upper-bound
    model U\\*; ``edb`` joins only the positive *EDB* literals against Δ and
    enumerates the remaining variables — a superset of ``relevant`` that is
    exact for fixpoint/stable enumeration (an atom true in any fixpoint is
    supported by an instance whose EDB literals hold in Δ, hence the
    instance — and the atom — is materialized here).
    """
    edb = program.edb_predicates
    if mode == "relevant":
        join_store = upper_bound_model(program, database, universe=universe)
    else:
        join_store = FactStore.from_database(database)
    table = AtomTable()
    # Materialize the join store (U* respectively Δ) so negative IDB
    # literals and unfounded atoms have nodes to be falsified on.
    for atom_ in sorted(join_store.atoms(), key=str):
        table.id_of(atom_)

    gp = GroundProgram(program, database, universe, mode, table)

    for rule_index, r in enumerate(program.rules):
        variables = r.variables()
        joinable = [
            lit
            for lit in r.positive_body()
            if mode == "relevant" or lit.predicate in edb
        ]
        positive = order_body_for_join(joinable)
        for partial in enumerate_bindings(positive, join_store):
            unbound = [v for v in variables if v not in partial]
            # Over an empty universe, rules with unbound variables have no
            # instances (matching the full grounder's |U|^k = 0).
            for values in product(universe, repeat=len(unbound)):
                binding = dict(partial)
                binding.update(zip(unbound, values))
                if prune_false_negative_edb and any(
                    not lit.positive
                    and lit.predicate in edb
                    and database.contains_atom(lit.atom.substitute(binding))
                    for lit in r.body
                ):
                    # A negative EDB literal is violated: the instance's body
                    # is false in every model; close() would delete its node
                    # before it could influence anything.
                    continue
                gp.rules.append(_make_instance(table, r, rule_index, variables, binding))
                if len(gp.rules) > max_instances:
                    raise GroundingError(
                        f"{mode} grounding exceeded {max_instances} instances"
                    )
    return gp


def ground(
    program: Program,
    database: Database,
    *,
    mode: GroundingMode = "full",
    extra_constants: Iterable[Constant] = (),
    max_instances: int = 2_000_000,
    prune_false_negative_edb: bool = True,
) -> GroundProgram:
    """Ground ``program`` over ``database``.

    ``mode='full'`` reproduces the paper's ``G(Π, Δ)`` exactly (every
    substitution over the universe; every ground atom materialized);
    ``mode='relevant'`` restricts to instances whose positive body lies in
    the upper-bound model U\\* — sound for the well-founded and
    well-founded tie-breaking semantics, exponentially smaller on rules
    with many variables; ``mode='edb'`` joins only positive EDB literals
    against Δ — a superset of ``relevant`` that is additionally *exact for
    fixpoint and stable-model enumeration* (see :mod:`repro.semantics.completion`),
    since an atom true in any fixpoint is supported by an instance whose
    EDB literals hold in Δ.

    ``extra_constants`` extends the universe beyond the constants mentioned
    by the program and database (the paper lets Δ fix the universe; tests of
    Theorem 2/3 use this to stress larger universes).
    """
    universe = universe_of(program, database, extra_constants)
    if mode == "full":
        return _ground_full(program, database, universe, max_instances)
    if mode in ("relevant", "edb"):
        return _ground_joined(
            program, database, universe, max_instances, prune_false_negative_edb, mode
        )
    raise ValueError(f"unknown grounding mode {mode!r}")
