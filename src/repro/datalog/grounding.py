"""Grounding: from (program, database) to ground rule instances.

The paper's ground graph ``G(Π, Δ)`` has a rule node ``r(a1, ..., ak)`` for
*every* rule ``r`` with ``k`` variables and *every* k-tuple of universe
constants (§2).  That **full grounding** is implemented faithfully here, and
is exponential in the number of variables per rule.

For programs where that blows up (e.g. the ``[X = i]`` chains of the
Theorem 6 reduction), the **relevant grounding** keeps only instances whose
positive body atoms all lie in the *upper-bound model* U\\* (EDB facts of Δ
plus the least model of the positivized program).  Atoms outside U\\* form
an unfounded set, so the well-founded and well-founded tie-breaking
semantics are unchanged (property-tested against full grounding); *pure*
tie-breaking and exhaustive fixpoint enumeration should use ``full``.

Both grounders produce a :class:`GroundProgram`: an atom table (dense ids),
a list of :class:`GroundRule` (deduplicated positive/negative body ids),
and the originating substitutions.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Literal as TypingLiteral, Mapping, Sequence

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine.facts import FactStore
from repro.engine.matching import enumerate_bindings, order_body_for_join
from repro.engine.seminaive import upper_bound_model
from repro.errors import GroundingError

__all__ = [
    "AtomTable",
    "GroundRule",
    "GroundIndex",
    "GroundProgram",
    "ground",
    "universe_of",
    "GroundingMode",
]

GroundingMode = TypingLiteral["full", "relevant", "edb"]


class AtomTable:
    """Bidirectional mapping between ground atoms and dense integer ids."""

    def __init__(self) -> None:
        self._ids: dict[Atom, int] = {}
        self._atoms: list[Atom] = []

    def id_of(self, atom: Atom) -> int:
        """The id of ``atom``, inserting it if new."""
        idx = self._ids.get(atom)
        if idx is None:
            idx = len(self._atoms)
            self._ids[atom] = idx
            self._atoms.append(atom)
        return idx

    def get(self, atom: Atom) -> int | None:
        """The id of ``atom`` or ``None`` if it was never materialized."""
        return self._ids.get(atom)

    def atom(self, index: int) -> Atom:
        """The atom with dense id ``index``."""
        return self._atoms[index]

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._ids

    def atoms(self) -> Sequence[Atom]:
        """All materialized atoms, in id order."""
        return tuple(self._atoms)


@dataclass(frozen=True, slots=True)
class GroundRule:
    """One instantiated rule: the paper's rule node ``r(a1, ..., ak)``.

    ``pos`` / ``neg`` are *deduplicated* atom ids (the ground graph's edge
    sets), preserving first-occurrence order.  ``rule_index`` points into the
    source program and ``substitution`` is the constant tuple aligned with
    ``rule.variables()``.
    """

    head: int
    pos: tuple[int, ...]
    neg: tuple[int, ...]
    rule_index: int
    substitution: tuple[Constant, ...]


class GroundIndex:
    """The compiled, immutable kernel view of a ground program.

    Flat CSR-style integer arrays replacing the per-state Python
    list-of-lists the evaluation state used to rebuild on every
    construction.  Built once per :class:`GroundProgram` (see
    :attr:`GroundProgram.index`) and shared by every
    :class:`~repro.ground.state.GroundGraphState` and all of its clones:

    * ``head_of[r]`` — head atom id of rule instance ``r``;
    * ``pos_off``/``pos_atoms`` (and ``neg_off``/``neg_atoms``) — rule →
      positive (negative) body atom ids, ``pos_atoms[pos_off[r]:pos_off[r+1]]``;
    * ``pos_occ_off``/``pos_occ`` (and ``neg_occ_off``/``neg_occ``) — the
      transposed adjacency: atom → rule instances whose body contains the
      atom positively (negatively), in ascending rule order;
    * ``body_len[r]`` / ``pos_len[r]`` — body-literal counters, the initial
      values of the state's ``rule_pending`` / ``pos_live`` arrays;
    * ``support[a]`` — number of rule instances with head ``a``;
    * ``initial_status`` / ``initial_valued`` — the paper's M₀(Δ): Δ atoms
      true, EDB atoms outside Δ false, the rest undefined; ``initial_valued``
      lists the valued atom ids in ascending order (the initial worklist);
    * ``empty_body_rules`` / ``zero_support_atoms`` — the seeds of the first
      ``close()`` sweep;
    * ``edb_mask[a]`` — 1 iff atom ``a``'s predicate is extensional.

    The flat arrays are ``array('i')`` / ``array('b')`` / ``bytearray``, so
    state construction and cloning reduce to C-level copies.  Alongside
    them, ``head_of_t`` / ``pos_occ_t`` / ``neg_occ_t`` are tuple *views*
    of the same adjacency: CPython iterates and indexes tuples faster than
    typed arrays, so the worklist hot loops read the views.  The flat CSR
    form is the interchange surface (buffer-protocol arrays, ready for
    serialization or a vectorized backend); view/CSR consistency is pinned
    by ``tests/datalog/test_ground_index.py``.
    """

    __slots__ = (
        "n_atoms",
        "n_rules",
        "head_of",
        "head_of_t",
        "body_len",
        "pos_len",
        "pos_off",
        "pos_atoms",
        "neg_off",
        "neg_atoms",
        "pos_occ_off",
        "pos_occ",
        "pos_occ_t",
        "neg_occ_off",
        "neg_occ",
        "neg_occ_t",
        "support",
        "rules_by_head_t",
        "initial_status",
        "initial_valued",
        "empty_body_rules",
        "zero_support_atoms",
        "edb_mask",
        "iota_atoms",
        "iota_rules",
    )

    def __init__(self, gp: "GroundProgram") -> None:
        # Local imports of the truth values would be circular through
        # repro.ground; the constants are fixed by the model module.
        from repro.ground.model import FALSE, TRUE

        n_atoms = len(gp.atoms)
        n_rules = len(gp.rules)
        self.n_atoms = n_atoms
        self.n_rules = n_rules

        rules = gp.rules
        self.head_of_t = tuple(gr.head for gr in rules)
        self.head_of = array("i", self.head_of_t)
        self.body_len = array("i", (len(gr.pos) + len(gr.neg) for gr in rules))
        self.pos_len = array("i", (len(gr.pos) for gr in rules))

        support = array("i", bytes(4 * n_atoms))
        pos_lists: list[list[int]] = [[] for _ in range(n_atoms)]
        neg_lists: list[list[int]] = [[] for _ in range(n_atoms)]
        head_lists: list[list[int]] = [[] for _ in range(n_atoms)]
        for r_index, gr in enumerate(rules):
            support[gr.head] += 1
            head_lists[gr.head].append(r_index)
            for a in gr.pos:
                pos_lists[a].append(r_index)
            for a in gr.neg:
                neg_lists[a].append(r_index)
        self.support = support
        # Reverse head adjacency: atom → rule instances whose head it is
        # (the in-edges of an atom node; used by the incremental bottom-SCC
        # bookkeeping to recount a split component's incoming edges).
        self.rules_by_head_t = tuple(tuple(rs) for rs in head_lists)

        # Rule → body CSR.
        pos_off = array("i", [0])
        neg_off = array("i", [0])
        pos_atoms = array("i")
        neg_atoms = array("i")
        for gr in rules:
            pos_atoms.extend(gr.pos)
            neg_atoms.extend(gr.neg)
            pos_off.append(len(pos_atoms))
            neg_off.append(len(neg_atoms))
        self.pos_off, self.pos_atoms = pos_off, pos_atoms
        self.neg_off, self.neg_atoms = neg_off, neg_atoms

        # Atom → rule adjacency (the transposed occurrence lists), in
        # ascending rule order — the append order of the old per-state
        # list-of-lists, keeping traversals deterministic.  Tuple views for
        # the hot loops; flat CSR alongside.
        self.pos_occ_t = tuple(tuple(rs) for rs in pos_lists)
        self.neg_occ_t = tuple(tuple(rs) for rs in neg_lists)
        pos_occ_off = array("i", [0])
        neg_occ_off = array("i", [0])
        pos_occ = array("i")
        neg_occ = array("i")
        for a in range(n_atoms):
            pos_occ.extend(pos_lists[a])
            neg_occ.extend(neg_lists[a])
            pos_occ_off.append(len(pos_occ))
            neg_occ_off.append(len(neg_occ))
        self.pos_occ_off, self.pos_occ = pos_occ_off, pos_occ
        self.neg_occ_off, self.neg_occ = neg_occ_off, neg_occ

        # M₀(Δ) and the EDB mask, computed once instead of per state.
        # Δ membership is resolved by iterating the (typically much
        # smaller) database once rather than hashing every table atom.
        edb = gp.program.edb_predicates
        table = gp.atoms
        initial_status = array("b", bytes(n_atoms))
        edb_mask = bytearray(n_atoms)
        if edb:
            for a, atom_ in enumerate(table.atoms()):
                if atom_.predicate in edb:
                    edb_mask[a] = 1
                    initial_status[a] = FALSE
        for atom_ in gp.database.atoms():
            a = table.get(atom_)
            if a is not None:
                initial_status[a] = TRUE
        self.initial_status = initial_status
        self.initial_valued = array(
            "i", (a for a in range(n_atoms) if initial_status[a])
        )
        self.edb_mask = edb_mask

        body_len = self.body_len
        self.empty_body_rules = array(
            "i", (r for r in range(n_rules) if body_len[r] == 0)
        )
        self.zero_support_atoms = array(
            "i", (a for a in range(n_atoms) if support[a] == 0)
        )

        # Identity permutations: copied (memcpy) into each state's live-set
        # bookkeeping instead of being rebuilt element by element.
        self.iota_atoms = array("i", range(n_atoms))
        self.iota_rules = array("i", range(n_rules))


@dataclass
class GroundProgram:
    """The result of grounding: atoms, rule instances, and provenance."""

    program: Program
    database: Database
    universe: tuple[Constant, ...]
    mode: GroundingMode
    atoms: AtomTable
    rules: list[GroundRule] = field(default_factory=list)

    @property
    def atom_count(self) -> int:
        """Number of materialized ground atoms."""
        return len(self.atoms)

    @property
    def rule_count(self) -> int:
        """Number of ground rule instances."""
        return len(self.rules)

    @property
    def index(self) -> GroundIndex:
        """The compiled CSR kernel view (built once, then shared).

        The index is invalidated automatically if the rule list or atom
        table grew since it was built (the grounders append while
        constructing); after grounding completes the same instance is
        shared by every evaluation state and every ``clone()``.
        """
        cached: GroundIndex | None = getattr(self, "_index_cache", None)
        if (
            cached is None
            or cached.n_rules != len(self.rules)
            or cached.n_atoms != len(self.atoms)
        ):
            cached = GroundIndex(self)
            object.__setattr__(self, "_index_cache", cached)
        return cached

    def instantiated_rule(self, ground_rule: GroundRule) -> Rule:
        """The source rule with the instance's substitution applied."""
        source = self.program.rules[ground_rule.rule_index]
        binding = dict(zip(source.variables(), ground_rule.substitution))
        return source.substitute(binding)

    def describe(self) -> str:
        """One-line summary, for logs and benchmarks."""
        return (
            f"GroundProgram(mode={self.mode}, |U|={len(self.universe)}, "
            f"atoms={self.atom_count}, instances={self.rule_count})"
        )


def universe_of(program: Program, database: Database, extra: Iterable[Constant] = ()) -> tuple[Constant, ...]:
    """The universe U: all constants of the program, the database, and ``extra``.

    Sorted by string rendering for deterministic grounding order.
    """
    constants = set(program.constants) | set(database.constants()) | set(extra)
    return tuple(sorted(constants, key=str))


def _literal_atom_id(table: AtomTable, literal: Literal, binding: Mapping[Variable, Constant]) -> int:
    return table.id_of(literal.atom.substitute(binding))


def _make_instance(
    table: AtomTable,
    rule: Rule,
    rule_index: int,
    variables: Sequence[Variable],
    binding: Mapping[Variable, Constant],
) -> GroundRule:
    head_id = table.id_of(rule.head.substitute(binding))
    pos: dict[int, None] = {}
    neg: dict[int, None] = {}
    for lit in rule.body:
        target = pos if lit.positive else neg
        target.setdefault(_literal_atom_id(table, lit, binding))
    return GroundRule(
        head=head_id,
        pos=tuple(pos),
        neg=tuple(neg),
        rule_index=rule_index,
        substitution=tuple(binding[v] for v in variables),
    )


def _ground_full(
    program: Program,
    database: Database,
    universe: tuple[Constant, ...],
    max_instances: int,
) -> GroundProgram:
    # Guard: predict the instance count before enumerating.
    total = 0
    for r in program.rules:
        k = len(r.variables())
        count = len(universe) ** k if k else 1
        total += count
        if total > max_instances:
            raise GroundingError(
                f"full grounding needs more than {max_instances} instances "
                f"(rule {r} alone has |U|^{k} = {count}); use mode='relevant' "
                "or raise max_instances"
            )

    table = AtomTable()
    # VP: every ground atom of every predicate, per the paper's definition.
    for pred in sorted(program.predicates | database.predicates()):
        arity = program.arities.get(pred)
        if arity is None:
            rows = database[pred]
            arity = len(next(iter(rows))) if rows else 0
        for args in product(universe, repeat=arity):
            table.id_of(Atom(pred, args))

    gp = GroundProgram(program, database, universe, "full", table)
    for rule_index, r in enumerate(program.rules):
        variables = r.variables()
        if not variables:
            gp.rules.append(_make_instance(table, r, rule_index, variables, {}))
            continue
        for values in product(universe, repeat=len(variables)):
            binding = dict(zip(variables, values))
            gp.rules.append(_make_instance(table, r, rule_index, variables, binding))
    return gp


def _ground_joined(
    program: Program,
    database: Database,
    universe: tuple[Constant, ...],
    max_instances: int,
    prune_false_negative_edb: bool,
    mode: GroundingMode,
) -> GroundProgram:
    """Shared implementation of the ``relevant`` and ``edb`` modes.

    ``relevant`` joins every positive body literal against the upper-bound
    model U\\*; ``edb`` joins only the positive *EDB* literals against Δ and
    enumerates the remaining variables — a superset of ``relevant`` that is
    exact for fixpoint/stable enumeration (an atom true in any fixpoint is
    supported by an instance whose EDB literals hold in Δ, hence the
    instance — and the atom — is materialized here).
    """
    edb = program.edb_predicates
    if mode == "relevant":
        join_store = upper_bound_model(program, database, universe=universe)
    else:
        join_store = FactStore.from_database(database)
    table = AtomTable()
    # Materialize the join store (U* respectively Δ) so negative IDB
    # literals and unfounded atoms have nodes to be falsified on.
    for atom_ in sorted(join_store.atoms(), key=str):
        table.id_of(atom_)

    gp = GroundProgram(program, database, universe, mode, table)

    for rule_index, r in enumerate(program.rules):
        variables = r.variables()
        joinable = [
            lit
            for lit in r.positive_body()
            if mode == "relevant" or lit.predicate in edb
        ]
        positive = order_body_for_join(joinable)
        for partial in enumerate_bindings(positive, join_store):
            unbound = [v for v in variables if v not in partial]
            # Over an empty universe, rules with unbound variables have no
            # instances (matching the full grounder's |U|^k = 0).
            for values in product(universe, repeat=len(unbound)):
                binding = dict(partial)
                binding.update(zip(unbound, values))
                if prune_false_negative_edb and any(
                    not lit.positive
                    and lit.predicate in edb
                    and database.contains_atom(lit.atom.substitute(binding))
                    for lit in r.body
                ):
                    # A negative EDB literal is violated: the instance's body
                    # is false in every model; close() would delete its node
                    # before it could influence anything.
                    continue
                gp.rules.append(_make_instance(table, r, rule_index, variables, binding))
                if len(gp.rules) > max_instances:
                    raise GroundingError(
                        f"{mode} grounding exceeded {max_instances} instances"
                    )
    return gp


def ground(
    program: Program,
    database: Database,
    *,
    mode: GroundingMode = "full",
    extra_constants: Iterable[Constant] = (),
    max_instances: int = 2_000_000,
    prune_false_negative_edb: bool = True,
) -> GroundProgram:
    """Ground ``program`` over ``database``.

    ``mode='full'`` reproduces the paper's ``G(Π, Δ)`` exactly (every
    substitution over the universe; every ground atom materialized);
    ``mode='relevant'`` restricts to instances whose positive body lies in
    the upper-bound model U\\* — sound for the well-founded and
    well-founded tie-breaking semantics, exponentially smaller on rules
    with many variables; ``mode='edb'`` joins only positive EDB literals
    against Δ — a superset of ``relevant`` that is additionally *exact for
    fixpoint and stable-model enumeration* (see :mod:`repro.semantics.completion`),
    since an atom true in any fixpoint is supported by an instance whose
    EDB literals hold in Δ.

    ``extra_constants`` extends the universe beyond the constants mentioned
    by the program and database (the paper lets Δ fix the universe; tests of
    Theorem 2/3 use this to stress larger universes).
    """
    universe = universe_of(program, database, extra_constants)
    if mode == "full":
        return _ground_full(program, database, universe, max_instances)
    if mode in ("relevant", "edb"):
        return _ground_joined(
            program, database, universe, max_instances, prune_false_negative_edb, mode
        )
    raise ValueError(f"unknown grounding mode {mode!r}")
