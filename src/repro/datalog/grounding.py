"""Grounding: from (program, database) to ground rule instances.

The paper's ground graph ``G(Π, Δ)`` has a rule node ``r(a1, ..., ak)`` for
*every* rule ``r`` with ``k`` variables and *every* k-tuple of universe
constants (§2).  That **full grounding** is implemented faithfully here, and
is exponential in the number of variables per rule.

For programs where that blows up (e.g. the ``[X = i]`` chains of the
Theorem 6 reduction), the **relevant grounding** keeps only instances whose
positive body atoms all lie in the *upper-bound model* U\\* (EDB facts of Δ
plus the least model of the positivized program).  Atoms outside U\\* form
an unfounded set, so the well-founded and well-founded tie-breaking
semantics are unchanged (property-tested against full grounding); *pure*
tie-breaking and exhaustive fixpoint enumeration should use ``full``.

Both grounders run as a **compiled join-plan pipeline**
(:mod:`repro.engine.plan`): constants are interned once into a
:class:`~repro.engine.plan.ConstantPool` (shareable across the grounding
modes of one :class:`~repro.api.Engine` session), rule bodies are
compiled into :class:`~repro.engine.plan.JoinPlan` slot schedules, and
ground rules are emitted *directly as atom-id arrays into the CSR
builders* of :class:`GroundIndex` — no ``Atom`` object is created
between grounding and the kernel compile.  The object-level surface
(:class:`AtomTable`, :class:`GroundRule`) is materialized lazily, on
first access, from the interned arrays.

Both grounders produce a :class:`GroundProgram`: an atom table (dense ids),
a sequence of :class:`GroundRule` (deduplicated positive/negative body
ids), and the originating substitutions.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right, insort
from collections.abc import Sequence as AbcSequence
from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Literal as TypingLiteral, Sequence

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant
from repro.engine.matching import order_body_for_join
from repro.engine.plan import (
    ConstantPool,
    IntFactStore,
    IntRow,
    JoinPlan,
    compile_row_spec,
)
from repro.engine.seminaive import SemiNaiveSession, least_model_interned
from repro.errors import GroundingError

__all__ = [
    "AtomTable",
    "GroundRule",
    "GroundIndex",
    "GroundProgram",
    "GroundDeltaSession",
    "ground",
    "apply_facts_delta",
    "universe_of",
    "GroundingMode",
]

GroundingMode = TypingLiteral["full", "relevant", "edb"]


class AtomTable:
    """Bidirectional mapping between ground atoms and dense integer ids."""

    def __init__(self) -> None:
        self._ids: dict[Atom, int] = {}
        self._atoms: list[Atom] = []

    def id_of(self, atom: Atom) -> int:
        """The id of ``atom``, inserting it if new."""
        idx = self._ids.get(atom)
        if idx is None:
            idx = len(self._atoms)
            self._ids[atom] = idx
            self._atoms.append(atom)
        return idx

    def get(self, atom: Atom) -> int | None:
        """The id of ``atom`` or ``None`` if it was never materialized."""
        return self._ids.get(atom)

    def atom(self, index: int) -> Atom:
        """The atom with dense id ``index``."""
        return self._atoms[index]

    def __len__(self) -> int:
        return len(self._atoms)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._ids

    def atoms(self) -> Sequence[Atom]:
        """All materialized atoms, in id order."""
        return tuple(self._atoms)


class _InternedAtomTable(AtomTable):
    """Atom table over interned (predicate, int-row) keys, decoded lazily.

    Built by the joined grounders: atoms exist as a predicate name plus a
    row of :class:`ConstantPool` ids; :class:`~repro.datalog.atoms.Atom`
    objects are constructed only when asked for.  Inserting an atom the
    grounder never saw (``id_of`` on a fresh atom) falls back to the
    eager base representation — the growth path the index cache watches.
    """

    def __init__(
        self,
        pool: ConstantPool,
        pred_of: list[str],
        row_of: list[IntRow],
        ids_by_pred: dict[str, dict[IntRow, int]],
    ) -> None:
        self._pool = pool
        self._pred_of = pred_of
        self._row_of = row_of
        self._ids_by_pred = ids_by_pred
        self._cache: dict[int, Atom] = {}
        self._eager = False

    def _materialize(self) -> None:
        if not self._eager:
            self._atoms = [self.atom(i) for i in range(len(self._pred_of))]
            self._ids = {a: i for i, a in enumerate(self._atoms)}
            self._eager = True
        elif len(self._atoms) < len(self._pred_of):
            self._grow()

    def _grow(self) -> None:
        """Sync the eager mirror after the delta overlay appended atoms.

        The streaming-update session appends to ``pred_of``/``row_of``
        directly; an already-materialized eager view must pick the new
        atoms up, or ``atom(i)``/``get`` would miss ids it is supposed
        to know.  (A table grown *by hand* through ``id_of`` fallback is
        the reverse desync — ``_atoms`` longer than ``_pred_of`` — and
        disqualifies the program from incremental updates entirely.)
        """
        constant = self._pool.constant
        for i in range(len(self._atoms), len(self._pred_of)):
            a = Atom(self._pred_of[i], tuple([constant(v) for v in self._row_of[i]]))
            self._ids[a] = i
            self._atoms.append(a)

    def id_of(self, atom: Atom) -> int:
        if not self._eager:
            idx = self.get(atom)
            if idx is not None:
                return idx
        self._materialize()
        return super().id_of(atom)

    def get(self, atom: Atom) -> int | None:
        if self._eager:
            return self._ids.get(atom)
        ids = self._ids_by_pred.get(atom.predicate)
        if ids is None:
            return None
        get_id = self._pool.get
        row = []
        for term in atom.args:
            v = get_id(term)
            if v is None:
                return None
            row.append(v)
        return ids.get(tuple(row))

    def atom(self, index: int) -> Atom:
        if self._eager:
            return self._atoms[index]
        cached = self._cache.get(index)
        if cached is None:
            constant = self._pool.constant
            cached = Atom(
                self._pred_of[index],
                tuple([constant(v) for v in self._row_of[index]]),
            )
            self._cache[index] = cached
        return cached

    def __len__(self) -> int:
        return len(self._atoms) if self._eager else len(self._pred_of)

    def __contains__(self, atom: Atom) -> bool:
        return self.get(atom) is not None

    def atoms(self) -> Sequence[Atom]:
        self._materialize()
        return tuple(self._atoms)


class _DenseAtomTable(AtomTable):
    """Full-grounding atom table with arithmetic (id ↔ atom) conversion.

    Under full grounding the atom universe is *every* ground atom of every
    predicate, laid out predicate-major in universe-lexicographic order —
    so ids are pure positional arithmetic over the universe digits and no
    per-atom storage is needed at all.  ``id_of`` on an atom outside that
    dense block falls back to the eager base representation.
    """

    def __init__(
        self,
        pool: ConstantPool,
        universe: tuple[Constant, ...],
        pred_arities: list[tuple[str, int]],
    ) -> None:
        self._pool = pool
        self._universe = universe
        self._preds = [p for p, _ in pred_arities]
        self._arities = [a for _, a in pred_arities]
        self._pred_index = {p: i for i, p in enumerate(self._preds)}
        n_u = len(universe)
        self._n_u = n_u
        bases: list[int] = []
        total = 0
        for _, arity in pred_arities:
            bases.append(total)
            total += n_u**arity
        self._bases = bases
        self._dense_count = total
        self._cache: dict[int, Atom] = {}
        self._eager = False

    def _materialize(self) -> None:
        if not self._eager:
            self._atoms = [self.atom(i) for i in range(self._dense_count)]
            self._ids = {a: i for i, a in enumerate(self._atoms)}
            self._eager = True

    def id_of(self, atom: Atom) -> int:
        idx = self.get(atom)
        if idx is not None:
            return idx
        self._materialize()
        return super().id_of(atom)

    def get(self, atom: Atom) -> int | None:
        if self._eager:
            return self._ids.get(atom)
        pi = self._pred_index.get(atom.predicate)
        if pi is None or len(atom.args) != self._arities[pi]:
            return None
        n_u = self._n_u
        get_id = self._pool.get
        offset = 0
        for term in atom.args:
            v = get_id(term)
            if v is None or v >= n_u:
                return None
            offset = offset * n_u + v
        return self._bases[pi] + offset

    def atom(self, index: int) -> Atom:
        if self._eager:
            return self._atoms[index]
        cached = self._cache.get(index)
        if cached is None:
            pi = bisect_right(self._bases, index) - 1
            offset = index - self._bases[pi]
            n_u = self._n_u
            digits = []
            for _ in range(self._arities[pi]):
                offset, d = divmod(offset, n_u)
                digits.append(d)
            universe = self._universe
            cached = Atom(self._preds[pi], tuple([universe[d] for d in reversed(digits)]))
            self._cache[index] = cached
        return cached

    def __len__(self) -> int:
        return len(self._atoms) if self._eager else self._dense_count

    def __contains__(self, atom: Atom) -> bool:
        return self.get(atom) is not None

    def atoms(self) -> Sequence[Atom]:
        self._materialize()
        return tuple(self._atoms)


@dataclass(frozen=True, slots=True)
class GroundRule:
    """One instantiated rule: the paper's rule node ``r(a1, ..., ak)``.

    ``pos`` / ``neg`` are *deduplicated* atom ids (the ground graph's edge
    sets), preserving first-occurrence order.  ``rule_index`` points into the
    source program and ``substitution`` is the constant tuple aligned with
    ``rule.variables()``.
    """

    head: int
    pos: tuple[int, ...]
    neg: tuple[int, ...]
    rule_index: int
    substitution: tuple[Constant, ...]


class _CompiledRules(AbcSequence):
    """Lazy :class:`GroundRule` sequence over the grounder's CSR arrays.

    The compiled grounders emit instances straight into flat id arrays;
    the object view exists for provenance consumers (``explain``, the
    per-rule semantics, the seed kernel) and is materialized — and
    cached — one rule at a time.
    """

    __slots__ = (
        "_pool",
        "_heads",
        "_pos_off",
        "_pos",
        "_neg_off",
        "_neg",
        "_rule_index",
        "_sub_off",
        "_sub",
        "_cache",
    )

    def __init__(
        self,
        pool: ConstantPool,
        heads: array,
        pos_off: array,
        pos: array,
        neg_off: array,
        neg: array,
        rule_index: array,
        sub_off: array,
        sub: array,
    ) -> None:
        self._pool = pool
        self._heads = heads
        self._pos_off = pos_off
        self._pos = pos
        self._neg_off = neg_off
        self._neg = neg
        self._rule_index = rule_index
        self._sub_off = sub_off
        self._sub = sub
        self._cache: list[GroundRule | None] = [None] * len(heads)

    def _rule(self, i: int) -> GroundRule:
        cache = self._cache
        if i >= len(cache):
            # The CSR arrays grew (streaming updates append instances in
            # place); stretch the lazy cache to match.
            cache.extend([None] * (len(self._heads) - len(cache)))
        cached = cache[i]
        if cached is None:
            constant = self._pool.constant
            cached = GroundRule(
                head=self._heads[i],
                pos=tuple(self._pos[self._pos_off[i] : self._pos_off[i + 1]]),
                neg=tuple(self._neg[self._neg_off[i] : self._neg_off[i + 1]]),
                rule_index=self._rule_index[i],
                substitution=tuple(
                    [constant(v) for v in self._sub[self._sub_off[i] : self._sub_off[i + 1]]]
                ),
            )
            self._cache[i] = cached
        return cached

    def __len__(self) -> int:
        return len(self._heads)

    def __getitem__(self, index):
        n = len(self._heads)
        if isinstance(index, slice):
            return [self._rule(i) for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("ground rule index out of range")
        return self._rule(index)

    def __iter__(self):
        for i in range(len(self._heads)):
            yield self._rule(i)


class GroundIndex:
    """The compiled, immutable kernel view of a ground program.

    Flat CSR-style integer arrays replacing the per-state Python
    list-of-lists the evaluation state used to rebuild on every
    construction.  The compiled grounders emit these arrays *directly*
    (:meth:`from_compiled` — no intermediate rule objects); the
    object-level constructor recompiles from ``gp.rules`` when a ground
    program is built or grown by hand.  Built once per
    :class:`GroundProgram` (see :attr:`GroundProgram.index`) and shared
    by every :class:`~repro.ground.state.GroundGraphState` and all of
    its clones:

    * ``head_of[r]`` — head atom id of rule instance ``r``;
    * ``pos_off``/``pos_atoms`` (and ``neg_off``/``neg_atoms``) — rule →
      positive (negative) body atom ids, ``pos_atoms[pos_off[r]:pos_off[r+1]]``;
    * ``pos_occ_off``/``pos_occ`` (and ``neg_occ_off``/``neg_occ``) — the
      transposed adjacency: atom → rule instances whose body contains the
      atom positively (negatively), in ascending rule order;
    * ``body_len[r]`` / ``pos_len[r]`` — body-literal counters, the initial
      values of the state's ``rule_pending`` / ``pos_live`` arrays;
    * ``support[a]`` — number of rule instances with head ``a``;
    * ``initial_status`` / ``initial_valued`` — the paper's M₀(Δ): Δ atoms
      true, EDB atoms outside Δ false, the rest undefined; ``initial_valued``
      lists the valued atom ids in ascending order (the initial worklist);
    * ``empty_body_rules`` / ``zero_support_atoms`` — the seeds of the first
      ``close()`` sweep;
    * ``edb_mask[a]`` — 1 iff atom ``a``'s predicate is extensional.

    The flat arrays are ``array('i')`` / ``array('b')`` / ``bytearray``, so
    state construction and cloning reduce to C-level copies.  Alongside
    them, ``head_of_t`` / ``pos_occ_t`` / ``neg_occ_t`` are tuple *views*
    of the same adjacency: CPython iterates and indexes tuples faster than
    typed arrays, so the worklist hot loops read the views.  The flat CSR
    form is the interchange surface (buffer-protocol arrays, ready for
    serialization or a vectorized backend); view/CSR consistency is pinned
    by ``tests/datalog/test_ground_index.py``.
    """

    __slots__ = (
        "n_atoms",
        "n_rules",
        "head_of",
        "head_of_t",
        "body_len",
        "pos_len",
        "pos_off",
        "pos_atoms",
        "neg_off",
        "neg_atoms",
        "pos_occ_off",
        "pos_occ",
        "pos_occ_t",
        "neg_occ_off",
        "neg_occ",
        "neg_occ_t",
        "support",
        "rules_by_head_t",
        "initial_status",
        "initial_valued",
        "empty_body_rules",
        "zero_support_atoms",
        "edb_mask",
        "iota_atoms",
        "iota_rules",
        "atom_order",
        "initial_rule_alive",
        "live_rules_init",
        "rule_slot_init",
        # NumPy mirror of the CSR arrays plus the static node-graph
        # adjacency, built lazily by repro.ground.array_state and shared
        # by every array-backend state over this index.
        "_array_cache",
    )

    def __getattr__(self, name: str):
        # Extended (delta-overlay) indexes defer the flat occurrence CSR:
        # the tuple views carry the hot paths, and the flat arrays are
        # only needed by serialization — rebuild them from the views on
        # first touch.
        if name in ("pos_occ_off", "pos_occ", "neg_occ_off", "neg_occ"):
            for prefix in ("pos", "neg"):
                views = object.__getattribute__(self, f"{prefix}_occ_t")
                off = array("i", [0])
                flat = array("i")
                for rs in views:
                    flat.extend(rs)
                    off.append(len(flat))
                setattr(self, f"{prefix}_occ_off", off)
                setattr(self, f"{prefix}_occ", flat)
            return object.__getattribute__(self, name)
        raise AttributeError(name)

    def __init__(self, gp: "GroundProgram") -> None:
        # Local imports of the truth values would be circular through
        # repro.ground; the constants are fixed by the model module.
        from repro.ground.model import FALSE, TRUE

        n_atoms = len(gp.atoms)
        n_rules = len(gp.rules)

        rules = gp.rules
        heads = array("i", (gr.head for gr in rules))
        pos_off = array("i", [0])
        neg_off = array("i", [0])
        pos_atoms = array("i")
        neg_atoms = array("i")
        for gr in rules:
            pos_atoms.extend(gr.pos)
            neg_atoms.extend(gr.neg)
            pos_off.append(len(pos_atoms))
            neg_off.append(len(neg_atoms))

        # M₀(Δ) and the EDB mask, computed once instead of per state.
        # Δ membership is resolved by iterating the (typically much
        # smaller) database once rather than hashing every table atom.
        edb = gp.program.edb_predicates
        table = gp.atoms
        initial_status = array("b", bytes(n_atoms))
        edb_mask = bytearray(n_atoms)
        if edb:
            for a, atom_ in enumerate(table.atoms()):
                if atom_.predicate in edb:
                    edb_mask[a] = 1
                    initial_status[a] = FALSE
        for atom_ in gp.database.atoms():
            a = table.get(atom_)
            if a is not None:
                initial_status[a] = TRUE

        self._build(
            n_atoms,
            n_rules,
            heads,
            pos_off,
            pos_atoms,
            neg_off,
            neg_atoms,
            edb_mask,
            initial_status,
        )

    @classmethod
    def from_compiled(
        cls,
        n_atoms: int,
        heads: array,
        pos_off: array,
        pos_atoms: array,
        neg_off: array,
        neg_atoms: array,
        edb_mask: bytearray,
        initial_status: array,
    ) -> "GroundIndex":
        """Build the index straight from the grounder's CSR emission."""
        self = cls.__new__(cls)
        self._build(
            n_atoms,
            len(heads),
            heads,
            pos_off,
            pos_atoms,
            neg_off,
            neg_atoms,
            edb_mask,
            initial_status,
        )
        return self

    @classmethod
    def from_arrays(
        cls,
        n_atoms: int,
        heads: array,
        pos_off: array,
        pos_atoms: array,
        neg_off: array,
        neg_atoms: array,
        edb_mask: bytearray,
        initial_status: array,
        *,
        support: array,
        body_len: array,
        pos_len: array,
        pos_occ_off: array,
        pos_occ: array,
        neg_occ_off: array,
        neg_occ: array,
        head_occ_off: array,
        head_occ: array,
        initial_valued: array,
        empty_body_rules: array,
        zero_support_atoms: array,
    ) -> "GroundIndex":
        """Restore a fully compiled index from its flat arrays.

        The deserialization twin of :meth:`_build`: every derived array —
        the occurrence-list transpositions, counters, M₀ worklist, and
        ``close()`` seeds — is taken as given (e.g. read back from a
        ``repro-ground/1`` artifact, see :mod:`repro.io.artifact`), so
        construction is dominated by rebuilding the tuple views and does
        no per-rule Python work at all.
        """
        self = cls.__new__(cls)
        self.n_atoms = n_atoms
        self.n_rules = len(heads)
        self.head_of = heads
        self.head_of_t = tuple(heads)
        self.pos_off, self.pos_atoms = pos_off, pos_atoms
        self.neg_off, self.neg_atoms = neg_off, neg_atoms
        self.support = support
        self.body_len = body_len
        self.pos_len = pos_len
        self.pos_occ_off, self.pos_occ = pos_occ_off, pos_occ
        self.neg_occ_off, self.neg_occ = neg_occ_off, neg_occ
        # Box each flat adjacency once, then cut tuple views by slicing the
        # boxed tuple — slice-of-tuple is a C pointer copy, so restoring the
        # views costs O(edges) rather than O(edges) boxing per view entry.
        flat = tuple(pos_occ)
        self.pos_occ_t = tuple(flat[pos_occ_off[a] : pos_occ_off[a + 1]] for a in range(n_atoms))
        flat = tuple(neg_occ)
        self.neg_occ_t = tuple(flat[neg_occ_off[a] : neg_occ_off[a + 1]] for a in range(n_atoms))
        flat = tuple(head_occ)
        self.rules_by_head_t = tuple(
            flat[head_occ_off[a] : head_occ_off[a + 1]] for a in range(n_atoms)
        )
        self.initial_status = initial_status
        self.initial_valued = initial_valued
        self.edb_mask = edb_mask
        self.empty_body_rules = empty_body_rules
        self.zero_support_atoms = zero_support_atoms
        self.iota_atoms = array("i", range(n_atoms))
        self.iota_rules = array("i", range(self.n_rules))
        self.atom_order = None
        self.initial_rule_alive = None
        self.live_rules_init = None
        self.rule_slot_init = None
        return self

    def _build(
        self,
        n_atoms: int,
        n_rules: int,
        heads: array,
        pos_off: array,
        pos_atoms: array,
        neg_off: array,
        neg_atoms: array,
        edb_mask: bytearray,
        initial_status: array,
    ) -> None:
        self.n_atoms = n_atoms
        self.n_rules = n_rules

        self.head_of = heads
        self.head_of_t = tuple(heads)
        self.pos_off, self.pos_atoms = pos_off, pos_atoms
        self.neg_off, self.neg_atoms = neg_off, neg_atoms
        pos_len = array("i", (pos_off[r + 1] - pos_off[r] for r in range(n_rules)))
        neg_len = (neg_off[r + 1] - neg_off[r] for r in range(n_rules))
        self.body_len = array("i", (p + q for p, q in zip(pos_len, neg_len)))
        self.pos_len = pos_len

        support = array("i", bytes(4 * n_atoms))
        pos_lists: list[list[int]] = [[] for _ in range(n_atoms)]
        neg_lists: list[list[int]] = [[] for _ in range(n_atoms)]
        head_lists: list[list[int]] = [[] for _ in range(n_atoms)]
        for r in range(n_rules):
            h = heads[r]
            support[h] += 1
            head_lists[h].append(r)
            for a in pos_atoms[pos_off[r] : pos_off[r + 1]]:
                pos_lists[a].append(r)
            for a in neg_atoms[neg_off[r] : neg_off[r + 1]]:
                neg_lists[a].append(r)
        self.support = support
        # Reverse head adjacency: atom → rule instances whose head it is
        # (the in-edges of an atom node; used by the incremental bottom-SCC
        # bookkeeping to recount a split component's incoming edges).
        self.rules_by_head_t = tuple(tuple(rs) for rs in head_lists)

        # Atom → rule adjacency (the transposed occurrence lists), in
        # ascending rule order — keeping traversals deterministic.  Tuple
        # views for the hot loops; flat CSR alongside.
        self.pos_occ_t = tuple(tuple(rs) for rs in pos_lists)
        self.neg_occ_t = tuple(tuple(rs) for rs in neg_lists)
        pos_occ_off = array("i", [0])
        neg_occ_off = array("i", [0])
        pos_occ = array("i")
        neg_occ = array("i")
        for a in range(n_atoms):
            pos_occ.extend(pos_lists[a])
            neg_occ.extend(neg_lists[a])
            pos_occ_off.append(len(pos_occ))
            neg_occ_off.append(len(neg_occ))
        self.pos_occ_off, self.pos_occ = pos_occ_off, pos_occ
        self.neg_occ_off, self.neg_occ = neg_occ_off, neg_occ

        self.initial_status = initial_status
        self.initial_valued = array("i", (a for a in range(n_atoms) if initial_status[a]))
        self.edb_mask = edb_mask

        body_len = self.body_len
        self.empty_body_rules = array("i", (r for r in range(n_rules) if body_len[r] == 0))
        self.zero_support_atoms = array("i", (a for a in range(n_atoms) if support[a] == 0))

        # Identity permutations: copied (memcpy) into each state's live-set
        # bookkeeping instead of being rebuilt element by element.
        self.iota_atoms = array("i", range(n_atoms))
        self.iota_rules = array("i", range(n_rules))

        # Delta-overlay fields: a freshly built index has every instance
        # alive and uses raw atom ids as the canonical order.
        self.atom_order = None
        self.initial_rule_alive = None
        self.live_rules_init = None
        self.rule_slot_init = None


@dataclass
class GroundProgram:
    """The result of grounding: atoms, rule instances, and provenance."""

    program: Program
    database: Database
    universe: tuple[Constant, ...]
    mode: GroundingMode
    atoms: AtomTable
    rules: Sequence[GroundRule] = field(default_factory=list)

    @property
    def atom_count(self) -> int:
        """Number of materialized ground atoms."""
        return len(self.atoms)

    @property
    def rule_count(self) -> int:
        """Number of ground rule instances."""
        return len(self.rules)

    @property
    def index(self) -> GroundIndex:
        """The compiled CSR kernel view (built once, then shared).

        The compiled grounders attach the index they emitted; it is
        invalidated automatically if the rule list or atom table grew
        since it was built (hand-built ground programs append while
        constructing).  After grounding completes the same instance is
        shared by every evaluation state and every ``clone()``.
        """
        cached: GroundIndex | None = getattr(self, "_index_cache", None)
        if (
            cached is None
            or cached.n_rules != len(self.rules)
            or cached.n_atoms != len(self.atoms)
        ):
            csr: _CsrEmitter | None = getattr(self, "_csr", None)
            if (
                csr is not None
                and csr.n_atoms == len(self.atoms)
                and len(csr.heads) == len(self.rules)
            ):
                cached = GroundIndex.from_compiled(
                    csr.n_atoms,
                    csr.heads,
                    csr.pos_off,
                    csr.pos,
                    csr.neg_off,
                    csr.neg,
                    csr.edb_mask,
                    csr.initial_status,
                )
            else:
                cached = GroundIndex(self)
            object.__setattr__(self, "_index_cache", cached)
        return cached

    def instantiated_rule(self, ground_rule: GroundRule) -> Rule:
        """The source rule with the instance's substitution applied."""
        source = self.program.rules[ground_rule.rule_index]
        binding = dict(zip(source.variables(), ground_rule.substitution))
        return source.substitute(binding)

    def describe(self) -> str:
        """One-line summary, for logs and benchmarks."""
        return (
            f"GroundProgram(mode={self.mode}, |U|={len(self.universe)}, "
            f"atoms={self.atom_count}, instances={self.rule_count})"
        )


def universe_of(
    program: Program, database: Database, extra: Iterable[Constant] = ()
) -> tuple[Constant, ...]:
    """The universe U: all constants of the program, the database, and ``extra``.

    Sorted by string rendering for deterministic grounding order.
    """
    constants = set(program.constants) | set(database.constants()) | set(extra)
    return tuple(sorted(constants, key=str))


class _CsrEmitter:
    """The grounder's shared CSR builders: instances as flat id arrays."""

    __slots__ = (
        "heads",
        "pos_off",
        "pos",
        "neg_off",
        "neg",
        "rule_index",
        "sub_off",
        "sub",
        "n_atoms",
        "edb_mask",
        "initial_status",
    )

    def __init__(self) -> None:
        self.heads = array("i")
        self.pos_off = array("i", [0])
        self.pos = array("i")
        self.neg_off = array("i", [0])
        self.neg = array("i")
        self.rule_index = array("i")
        self.sub_off = array("i", [0])
        self.sub = array("i")

    def finish(
        self,
        gp: "GroundProgram",
        n_atoms: int,
        edb_mask: bytearray,
        initial_status: array,
        pool: ConstantPool,
    ) -> None:
        """Attach the lazy rule view and the emitted CSR arrays to ``gp``.

        The occurrence-list transposition (:meth:`GroundIndex.from_compiled`)
        runs on first :attr:`GroundProgram.index` access — the compile
        phase, timed separately from grounding by the Engine.
        """
        self.n_atoms = n_atoms
        self.edb_mask = edb_mask
        self.initial_status = initial_status
        gp.rules = _CompiledRules(
            pool,
            self.heads,
            self.pos_off,
            self.pos,
            self.neg_off,
            self.neg,
            self.rule_index,
            self.sub_off,
            self.sub,
        )
        object.__setattr__(gp, "_csr", self)


def _initial_model(
    n_atoms: int,
    pred_of: Sequence[str],
    ids_by_pred: dict[str, dict[IntRow, int]],
    delta: IntFactStore,
    edb: frozenset[str],
) -> tuple[bytearray, array]:
    """M₀(Δ) and the EDB mask over interned atom ids."""
    from repro.ground.model import FALSE, TRUE

    edb_mask = bytearray(n_atoms)
    initial_status = array("b", bytes(n_atoms))
    if edb:
        for a, pred in enumerate(pred_of):
            if pred in edb:
                edb_mask[a] = 1
                initial_status[a] = FALSE
    for pred, rows in delta.items():
        ids = ids_by_pred.get(pred)
        if ids:
            for row in rows:
                a = ids.get(row)
                if a is not None:
                    initial_status[a] = TRUE
    return edb_mask, initial_status


def _ground_full(
    program: Program,
    database: Database,
    universe: tuple[Constant, ...],
    max_instances: int,
) -> GroundProgram:
    # Guard: predict the instance count before enumerating.
    total = 0
    for r in program.rules:
        k = len(r.variables())
        count = len(universe) ** k if k else 1
        total += count
        if total > max_instances:
            raise GroundingError(
                f"full grounding needs more than {max_instances} instances "
                f"(rule {r} alone has |U|^{k} = {count}); use mode='relevant' "
                "or raise max_instances"
            )

    # VP: every ground atom of every predicate, per the paper's definition —
    # laid out predicate-major in universe-lexicographic order, so atom ids
    # are pure arithmetic over universe digits (no hashing, no Atom objects).
    pool = ConstantPool(universe)
    n_u = len(universe)
    pred_arities: list[tuple[str, int]] = []
    for pred in sorted(program.predicates | database.predicates()):
        arity = program.arities.get(pred)
        if arity is None:
            rows = database[pred]
            arity = len(next(iter(rows))) if rows else 0
        pred_arities.append((pred, arity))
    table = _DenseAtomTable(pool, universe, pred_arities)
    base_of: dict[str, int] = {p: table._bases[i] for i, (p, _) in enumerate(pred_arities)}
    n_atoms = len(table)

    def atom_spec(atom: Atom, var_pos: dict) -> tuple[int, list[tuple[int, int]]]:
        """(constant offset incl. base, [(stride, substitution index)])."""
        arity = len(atom.args)
        offset = base_of[atom.predicate]
        var_terms: list[tuple[int, int]] = []
        for p, term in enumerate(atom.args):
            stride = n_u ** (arity - 1 - p)
            if isinstance(term, Constant):
                offset += stride * pool.intern(term)
            else:
                var_terms.append((stride, var_pos[term]))
        return offset, var_terms

    out = _CsrEmitter()
    heads, pos, neg = out.heads, out.pos, out.neg
    heads_append, pos_extend, neg_extend = heads.append, pos.extend, neg.extend
    pos_off_append, neg_off_append = out.pos_off.append, out.neg_off.append
    rule_index_append = out.rule_index.append
    sub_extend, sub_off_append = out.sub.extend, out.sub_off.append
    sub = out.sub
    for rule_index, r in enumerate(program.rules):
        variables = r.variables()
        k = len(variables)
        var_pos = {v: j for j, v in enumerate(variables)}
        head_spec = atom_spec(r.head, var_pos)
        body_specs = [(lit.positive, atom_spec(lit.atom, var_pos)) for lit in r.body]
        for digits in product(range(n_u), repeat=k):
            offset, var_terms = head_spec
            for stride, j in var_terms:
                offset += stride * digits[j]
            heads_append(offset)
            pos_seen: list[int] = []
            neg_seen: list[int] = []
            for positive, (offset, var_terms) in body_specs:
                for stride, j in var_terms:
                    offset += stride * digits[j]
                seen = pos_seen if positive else neg_seen
                if offset not in seen:
                    seen.append(offset)
            pos_extend(pos_seen)
            pos_off_append(len(pos))
            neg_extend(neg_seen)
            neg_off_append(len(neg))
            rule_index_append(rule_index)
            # Universe digits are pool ids (the pool interned the universe
            # first), so they double as the substitution row.
            sub_extend(digits)
            sub_off_append(len(sub))

    gp = GroundProgram(program, database, universe, "full", table)
    delta = IntFactStore()
    ids_by_pred: dict[str, dict[IntRow, int]] = {}
    for pred in database.predicates():
        ids = ids_by_pred.setdefault(pred, {})
        for const_row in database[pred]:
            row = tuple([pool.intern(c) for c in const_row])
            delta.add(pred, row)
            a = table.get(Atom(pred, const_row))
            if a is not None:
                ids[row] = a
    edb_mask, initial_status = _initial_model(n_atoms, [], ids_by_pred, delta, frozenset())
    # The EDB mask covers whole predicate blocks under the dense layout.
    from repro.ground.model import FALSE

    edb = program.edb_predicates
    for i, (pred, arity) in enumerate(pred_arities):
        if pred in edb:
            base, size = table._bases[i], n_u**arity
            edb_mask[base : base + size] = b"\x01" * size
            for a in range(base, base + size):
                if initial_status[a] == 0:
                    initial_status[a] = FALSE
    out.finish(gp, n_atoms, edb_mask, initial_status, pool)
    return gp


def _ground_joined(
    program: Program,
    database: Database,
    universe: tuple[Constant, ...],
    max_instances: int,
    prune_false_negative_edb: bool,
    mode: GroundingMode,
    pool: ConstantPool | None,
) -> GroundProgram:
    """Shared implementation of the ``relevant`` and ``edb`` modes.

    ``relevant`` joins every positive body literal against the upper-bound
    model U\\*; ``edb`` joins only the positive *EDB* literals against Δ and
    enumerates the remaining variables — a superset of ``relevant`` that is
    exact for fixpoint/stable enumeration (an atom true in any fixpoint is
    supported by an instance whose EDB literals hold in Δ, hence the
    instance — and the atom — is materialized here).
    """
    edb = program.edb_predicates
    if pool is None:
        pool = ConstantPool()
    uni_ids = [pool.intern(c) for c in universe]

    delta = IntFactStore()
    for pred in database.predicates():
        for const_row in database[pred]:
            delta.add(pred, tuple([pool.intern(c) for c in const_row]))
    if mode == "relevant":
        positivized = [Rule(r.head, r.positive_body()) for r in program.rules]
        join_store = least_model_interned(
            positivized, database, universe=universe, pool=pool, database_rows=delta
        )
    else:
        join_store = delta

    # Materialize the join store (U* respectively Δ) so negative IDB
    # literals and unfounded atoms have nodes to be falsified on; sorted
    # predicate-major, rows by *universe rank* — pool ids only agree with
    # universe order on a fresh pool, and a reused session pool (engine
    # re-ground after updates) may have interned a returning constant
    # late.  Canonical order must be a function of the database alone.
    rank = {pid: i for i, pid in enumerate(uni_ids)}
    ids_by_pred: dict[str, dict[IntRow, int]] = {}
    pred_of: list[str] = []
    row_of: list[IntRow] = []
    for pred in sorted(join_store.predicates()):
        ids = ids_by_pred.setdefault(pred, {})
        for row in sorted(join_store.rows(pred), key=lambda r: [rank[v] for v in r]):
            ids[row] = len(pred_of)
            pred_of.append(pred)
            row_of.append(row)

    out = _CsrEmitter()
    heads, pos, neg = out.heads, out.pos, out.neg
    heads_append, pos_extend, neg_extend = heads.append, pos.extend, neg.extend
    pos_off_append, neg_off_append = out.pos_off.append, out.neg_off.append
    rule_index_append = out.rule_index.append
    sub_extend, sub_off_append = out.sub.extend, out.sub_off.append
    sub = out.sub
    pred_of_append, row_of_append = pred_of.append, row_of.append
    intern = pool.intern
    for rule_index, r in enumerate(program.rules):
        variables = r.variables()
        head_pred = r.head.predicate
        head_ids = ids_by_pred.setdefault(head_pred, {})

        if not variables:
            # Fully ground rule: the join is pure membership, one instance —
            # the unrolled twin of ``instantiate`` below over direct rows.
            satisfied = True
            for lit in r.body:
                if lit.positive and (mode == "relevant" or lit.predicate in edb):
                    if tuple([intern(t) for t in lit.atom.args]) not in join_store.rows(
                        lit.predicate
                    ):
                        satisfied = False
                        break
                elif not lit.positive and prune_false_negative_edb and lit.predicate in edb:
                    if tuple([intern(t) for t in lit.atom.args]) in delta.rows(lit.predicate):
                        satisfied = False
                        break
            if not satisfied:
                continue
            row = tuple([intern(t) for t in r.head.args])
            head_id = head_ids.get(row)
            if head_id is None:
                head_id = len(pred_of)
                head_ids[row] = head_id
                pred_of_append(head_pred)
                row_of_append(row)
            heads_append(head_id)
            pos_seen = []
            neg_seen = []
            for lit in r.body:
                row = tuple([intern(t) for t in lit.atom.args])
                ids = ids_by_pred.setdefault(lit.predicate, {})
                atom_id = ids.get(row)
                if atom_id is None:
                    atom_id = len(pred_of)
                    ids[row] = atom_id
                    pred_of_append(lit.predicate)
                    row_of_append(row)
                seen = pos_seen if lit.positive else neg_seen
                if atom_id not in seen:
                    seen.append(atom_id)
            pos_extend(pos_seen)
            pos_off_append(len(pos))
            neg_extend(neg_seen)
            neg_off_append(len(neg))
            rule_index_append(rule_index)
            sub_off_append(len(sub))
            if len(heads) > max_instances:
                raise GroundingError(f"{mode} grounding exceeded {max_instances} instances")
            continue

        slot_of = {v: i for i, v in enumerate(variables)}
        joinable = [lit for lit in r.positive_body() if mode == "relevant" or lit.predicate in edb]
        head_spec = compile_row_spec(r.head, slot_of, pool)
        body_probes = [
            (
                lit.positive,
                compile_row_spec(lit.atom, slot_of, pool),
                ids_by_pred.setdefault(lit.predicate, {}),
                lit.predicate,
            )
            for lit in r.body
        ]
        neg_edb_probes = (
            [
                (compile_row_spec(lit.atom, slot_of, pool), delta.rows(lit.predicate))
                for lit in r.body
                if not lit.positive and lit.predicate in edb
            ]
            if prune_false_negative_edb
            else []
        )

        def instantiate(slots: Sequence[int]) -> None:
            for spec, delta_rows in neg_edb_probes:
                if tuple([slots[v] if v >= 0 else ~v for v in spec]) in delta_rows:
                    # A negative EDB literal is violated: the instance's body
                    # is false in every model; close() would delete its node
                    # before it could influence anything.
                    return
            row = tuple([slots[v] if v >= 0 else ~v for v in head_spec])
            head_id = head_ids.get(row)
            if head_id is None:
                head_id = len(pred_of)
                head_ids[row] = head_id
                pred_of_append(head_pred)
                row_of_append(row)
            heads_append(head_id)
            pos_seen: list[int] = []
            neg_seen: list[int] = []
            for positive, spec, ids, pred in body_probes:
                row = tuple([slots[v] if v >= 0 else ~v for v in spec])
                atom_id = ids.get(row)
                if atom_id is None:
                    atom_id = len(pred_of)
                    ids[row] = atom_id
                    pred_of_append(pred)
                    row_of_append(row)
                seen = pos_seen if positive else neg_seen
                if atom_id not in seen:
                    seen.append(atom_id)
            pos_extend(pos_seen)
            pos_off_append(len(pos))
            neg_extend(neg_seen)
            neg_off_append(len(neg))
            rule_index_append(rule_index)
            sub_extend(slots)
            sub_off_append(len(sub))
            if len(heads) > max_instances:
                raise GroundingError(f"{mode} grounding exceeded {max_instances} instances")

        plan = JoinPlan.compile(order_body_for_join(joinable), slot_of, pool)
        # Over an empty universe, rules with unbound variables have no
        # instances (matching the full grounder's |U|^k = 0).
        unbound = [slot_of[v] for v in variables if slot_of[v] not in plan.bound_slots]
        if unbound:

            def emit(slots: list[int]) -> None:
                for values in product(uni_ids, repeat=len(unbound)):
                    for s, v in zip(unbound, values):
                        slots[s] = v
                    instantiate(slots)

        else:
            emit = instantiate

        plan.execute(join_store, [0] * len(variables), emit)

    n_atoms = len(pred_of)
    table = _InternedAtomTable(pool, pred_of, row_of, ids_by_pred)
    gp = GroundProgram(program, database, universe, mode, table)
    edb_mask, initial_status = _initial_model(n_atoms, pred_of, ids_by_pred, delta, edb)
    out.finish(gp, n_atoms, edb_mask, initial_status, pool)
    if mode == "relevant":
        # Retain the join-time raw materials: a streaming-update session
        # adopts U* and Δ as they stand instead of recomputing them.
        gp._delta_ctx = _DeltaContext(pool, delta, join_store, uni_ids)
    return gp


class _DeltaContext:
    """Raw materials the relevant grounder retains for streaming updates."""

    __slots__ = ("pool", "delta", "join_store", "uni_ids")

    def __init__(
        self,
        pool: ConstantPool,
        delta: IntFactStore,
        join_store: IntFactStore,
        uni_ids: list[int],
    ) -> None:
        self.pool = pool
        self.delta = delta
        self.join_store = join_store
        self.uni_ids = uni_ids


def ground(
    program: Program,
    database: Database,
    *,
    mode: GroundingMode = "full",
    extra_constants: Iterable[Constant] = (),
    max_instances: int = 2_000_000,
    prune_false_negative_edb: bool = True,
    pool: ConstantPool | None = None,
) -> GroundProgram:
    """Ground ``program`` over ``database``.

    ``mode='full'`` reproduces the paper's ``G(Π, Δ)`` exactly (every
    substitution over the universe; every ground atom materialized);
    ``mode='relevant'`` restricts to instances whose positive body lies in
    the upper-bound model U\\* — sound for the well-founded and
    well-founded tie-breaking semantics, exponentially smaller on rules
    with many variables; ``mode='edb'`` joins only positive EDB literals
    against Δ — a superset of ``relevant`` that is additionally *exact for
    fixpoint and stable-model enumeration* (see :mod:`repro.semantics.completion`),
    since an atom true in any fixpoint is supported by an instance whose
    EDB literals hold in Δ.

    ``extra_constants`` extends the universe beyond the constants mentioned
    by the program and database (the paper lets Δ fix the universe; tests of
    Theorem 2/3 use this to stress larger universes).  ``pool`` supplies a
    shared :class:`~repro.engine.plan.ConstantPool` so one interning session
    serves several groundings (the :class:`~repro.api.Engine` passes its
    session pool; ``full`` mode uses its own universe-aligned pool).
    """
    universe = universe_of(program, database, extra_constants)
    if mode == "full":
        return _ground_full(program, database, universe, max_instances)
    if mode in ("relevant", "edb"):
        return _ground_joined(
            program, database, universe, max_instances, prune_false_negative_edb, mode, pool
        )
    raise ValueError(f"unknown grounding mode {mode!r}")


class _DeltaRulePlan:
    """One source rule compiled for delta re-grounding.

    The same slot layout as the initial grounder (``rule.variables()``
    order), so discovered substitutions are directly comparable with the
    CSR's stored ones; one delta-promoted :class:`JoinPlan` per positive
    body literal, exactly like the semi-naive engine.
    """

    __slots__ = (
        "rule_index",
        "head_pred",
        "head_spec",
        "body_probes",
        "delta_plans",
        "unbound",
        "n_slots",
    )

    def __init__(self, rule_index: int, r: Rule, pool: ConstantPool) -> None:
        variables = r.variables()
        self.rule_index = rule_index
        self.n_slots = len(variables)
        self.head_pred = r.head.predicate
        slot_of = {v: i for i, v in enumerate(variables)}
        self.head_spec = compile_row_spec(r.head, slot_of, pool)
        self.body_probes = [
            (lit.positive, compile_row_spec(lit.atom, slot_of, pool), lit.predicate)
            for lit in r.body
        ]
        joinable = list(r.positive_body())
        self.delta_plans: list[tuple[str, JoinPlan]] = []
        bound: frozenset[int] = frozenset()
        for i, lit in enumerate(joinable):
            ordered = [lit] + order_body_for_join(joinable[:i] + joinable[i + 1 :])
            jp = JoinPlan.compile(ordered, slot_of, pool)
            bound = jp.bound_slots
            self.delta_plans.append((lit.predicate, jp))
        self.unbound = (
            tuple(s for s in range(self.n_slots) if s not in bound)
            if self.delta_plans
            else ()
        )


class GroundDeltaSession:
    """Streaming EDB updates on a relevant-mode ground program.

    Owns the mutable overlay that keeps a :class:`GroundProgram` live
    across ``insert``/``retract`` fact deltas:

    * U\\* is maintained by a :class:`~repro.engine.seminaive.SemiNaiveSession`
      (semi-naive advance on insert, DRed on retract) adopting the
      grounder's join store and Δ;
    * new rule instances are discovered by re-firing per-literal
      delta-promoted join plans from the newly-true rows, appended **in
      place** to the shared CSR emitter arrays (old indexes stay valid:
      their reads are bounded by their stored counts), and deduplicated
      against a ``(rule, substitution) → instance`` ledger that also
      re-enables instances a past retraction disabled;
    * atoms leaving U\\* become *ghosts*: their ids persist, dependent
      instances are disabled via ``initial_rule_alive``, and zero live
      support falsifies them in the kernel's first ``close()`` — the
      closed-world reading of :class:`~repro.ground.model.Interpretation`
      makes a materialized-false ghost indistinguishable from a fresh
      grounding that never materialized it;
    * ``atom_order`` ranks live atom ids exactly as a fresh relevant
      grounding would assign them (predicate-major, rows ascending), so
      deterministic tie-breaking trajectories match a full rebuild.

    Each update ends by publishing a fresh :class:`GroundIndex` built
    over the shared arrays; solves construct pristine states from it, so
    an update costs the delta joins plus O(atoms + instances) array
    copies — no ground-from-scratch, no recompile of join plans.
    """

    def __init__(self, gp: "GroundProgram") -> None:
        ctx: _DeltaContext = gp._delta_ctx
        self.gp = gp
        self.pool = ctx.pool
        self.uni_ids = ctx.uni_ids
        self.edb = gp.program.edb_predicates
        table = gp.atoms
        self.table = table
        self.pred_of: list[str] = table._pred_of
        self.row_of: list[IntRow] = table._row_of
        self.ids_by_pred: dict[str, dict[IntRow, int]] = table._ids_by_pred
        self.csr: _CsrEmitter = gp._csr
        positivized = [Rule(r.head, r.positive_body()) for r in gp.program.rules]
        self.sem = SemiNaiveSession(
            positivized,
            gp.database,
            universe=gp.universe,
            pool=self.pool,
            database_rows=ctx.delta,
            store=ctx.join_store,
        )

        idx = gp.index
        n_atoms = idx.n_atoms
        n_rules = idx.n_rules
        self.pos_occ_lists: list[tuple[int, ...]] = list(idx.pos_occ_t)
        self.neg_occ_lists: list[tuple[int, ...]] = list(idx.neg_occ_t)
        self.head_lists: list[tuple[int, ...]] = list(idx.rules_by_head_t)
        self.support_live = array("i", idx.support)
        alive = idx.initial_rule_alive
        self.alive = bytearray(alive) if alive is not None else bytearray(b"\x01" * n_rules)
        self.body_len = array("i", idx.body_len)
        self.pos_len = array("i", idx.pos_len)
        self.empty_body_rules = idx.empty_body_rules

        store = self.sem.store
        pred_of, row_of = self.pred_of, self.row_of
        self.in_ustar = bytearray(n_atoms)
        for a in range(n_atoms):
            if store.contains(pred_of[a], row_of[a]):
                self.in_ustar[a] = 1
        # Canonical order: a fresh relevant grounding assigns ids
        # predicate-major with rows ascending under a pool that interned
        # the (string-sorted) universe first — so ranking live atoms by
        # (predicate, universe-rank row) reproduces fresh ids exactly.
        self._rank_of = {self.pool.intern(c): i for i, c in enumerate(gp.universe)}
        self.sorted_keys: list[tuple] = sorted(
            (self._key(a), a) for a in range(n_atoms) if self.in_ustar[a]
        )
        ri, so, sub = self.csr.rule_index, self.csr.sub_off, self.csr.sub
        self.ledger: dict[tuple[int, IntRow], int] = {
            (ri[r], tuple(sub[so[r] : so[r + 1]])): r for r in range(n_rules)
        }
        self._plans_by_pred: dict[str, list[tuple[_DeltaRulePlan, JoinPlan]]] = {}
        self._ground_rules: list[tuple] = []
        intern = self.pool.intern
        for rule_index, r in enumerate(gp.program.rules):
            if r.variables():
                plan = _DeltaRulePlan(rule_index, r, self.pool)
                for pred, jp in plan.delta_plans:
                    self._plans_by_pred.setdefault(pred, []).append((plan, jp))
            else:
                pos_rows = [
                    (lit.predicate, tuple([intern(t) for t in lit.atom.args]))
                    for lit in r.positive_body()
                ]
                body_probes = [
                    (lit.positive, compile_row_spec(lit.atom, {}, self.pool), lit.predicate)
                    for lit in r.body
                ]
                head_spec = compile_row_spec(r.head, {}, self.pool)
                self._ground_rules.append(
                    (rule_index, r.head.predicate, head_spec, body_probes, pos_rows)
                )
        self.log: list[dict] = []
        self.stats = {
            "inserts": 0,
            "retracts": 0,
            "instances_added": 0,
            "instances_disabled": 0,
            "instances_enabled": 0,
            "atoms_added": 0,
            "atoms_ghosted": 0,
        }

    def _key(self, a: int) -> tuple:
        rank = self._rank_of
        return (self.pred_of[a], tuple([rank[v] for v in self.row_of[a]]))

    def _atom_id(self, pred: str, row: IntRow) -> int:
        ids = self.ids_by_pred.setdefault(pred, {})
        a = ids.get(row)
        if a is None:
            a = len(self.pred_of)
            ids[row] = a
            self.pred_of.append(pred)
            self.row_of.append(row)
            self.in_ustar.append(0)
            self.support_live.append(0)
            self.pos_occ_lists.append(())
            self.neg_occ_lists.append(())
            self.head_lists.append(())
            self.stats["atoms_added"] += 1
        return a

    def _emit_instance(
        self,
        rule_index: int,
        head_pred: str,
        head_spec,
        body_probes,
        sub: IntRow,
        slots: Sequence[int],
    ) -> None:
        csr = self.csr
        rid = len(csr.heads)
        row = tuple([slots[v] if v >= 0 else ~v for v in head_spec])
        head_id = self._atom_id(head_pred, row)
        pos_seen: list[int] = []
        neg_seen: list[int] = []
        for positive, spec, pred in body_probes:
            row = tuple([slots[v] if v >= 0 else ~v for v in spec])
            atom_id = self._atom_id(pred, row)
            seen = pos_seen if positive else neg_seen
            if atom_id not in seen:
                seen.append(atom_id)
        csr.heads.append(head_id)
        csr.pos.extend(pos_seen)
        csr.pos_off.append(len(csr.pos))
        csr.neg.extend(neg_seen)
        csr.neg_off.append(len(csr.neg))
        csr.rule_index.append(rule_index)
        csr.sub.extend(sub)
        csr.sub_off.append(len(csr.sub))
        self.body_len.append(len(pos_seen) + len(neg_seen))
        self.pos_len.append(len(pos_seen))
        for a in pos_seen:
            self.pos_occ_lists[a] = self.pos_occ_lists[a] + (rid,)
        for a in neg_seen:
            self.neg_occ_lists[a] = self.neg_occ_lists[a] + (rid,)
        self.head_lists[head_id] = self.head_lists[head_id] + (rid,)
        self.support_live[head_id] += 1
        self.alive.append(1)
        self.ledger[(rule_index, sub)] = rid
        self.stats["instances_added"] += 1

    def _instantiate(self, plan: _DeltaRulePlan, slots: list[int]) -> None:
        sub = tuple(slots)
        rid = self.ledger.get((plan.rule_index, sub))
        if rid is not None:
            if not self.alive[rid]:
                # The delta join only emits substitutions whose whole
                # positive body lies in the updated U*, so rediscovery is
                # exactly the re-enable condition.
                self.alive[rid] = 1
                self.support_live[self.csr.heads[rid]] += 1
                self.stats["instances_enabled"] += 1
            return
        self._emit_instance(
            plan.rule_index, plan.head_pred, plan.head_spec, plan.body_probes, sub, slots
        )

    def _ground_delta(self, added: IntFactStore) -> None:
        store = self.sem.store
        uni_ids = self.uni_ids
        for pred, _rows in added.items():
            for plan, jp in self._plans_by_pred.get(pred, ()):
                slots = [0] * plan.n_slots
                unbound = plan.unbound
                if unbound:

                    def emit(slots: list[int], plan=plan, unbound=unbound) -> None:
                        for values in product(uni_ids, repeat=len(unbound)):
                            for s, v in zip(unbound, values):
                                slots[s] = v
                            self._instantiate(plan, slots)

                else:

                    def emit(slots: list[int], plan=plan) -> None:
                        self._instantiate(plan, slots)

                jp.execute(store, slots, emit, added)

    def _recheck_ground_rules(self) -> None:
        store = self.sem.store
        for rule_index, head_pred, head_spec, body_probes, pos_rows in self._ground_rules:
            rid = self.ledger.get((rule_index, ()))
            if rid is not None and self.alive[rid]:
                continue
            if all(store.contains(pred, row) for pred, row in pos_rows):
                if rid is not None:
                    self.alive[rid] = 1
                    self.support_live[self.csr.heads[rid]] += 1
                    self.stats["instances_enabled"] += 1
                else:
                    self._emit_instance(rule_index, head_pred, head_spec, body_probes, (), ())

    def apply(self, inserted: Sequence[Atom], retracted: Sequence[Atom]) -> None:
        """Apply one update (retractions first, then insertions)."""
        intern = self.pool.intern
        if retracted:
            facts = [(a.predicate, tuple([intern(t) for t in a.args])) for a in retracted]
            removed = self.sem.retract(facts)
            dead: list[int] = []
            for pred, rows in removed.items():
                ids = self.ids_by_pred.get(pred)
                if not ids:
                    continue
                for row in rows:
                    a = ids.get(row)
                    if a is not None and self.in_ustar[a]:
                        self.in_ustar[a] = 0
                        k = (self._key(a), a)
                        i = bisect_left(self.sorted_keys, k)
                        if i < len(self.sorted_keys) and self.sorted_keys[i] == k:
                            self.sorted_keys.pop(i)
                        dead.append(a)
                        self.stats["atoms_ghosted"] += 1
            heads = self.csr.heads
            for a in dead:
                for rid in self.pos_occ_lists[a]:
                    if self.alive[rid]:
                        self.alive[rid] = 0
                        self.support_live[heads[rid]] -= 1
                        self.stats["instances_disabled"] += 1
            self.stats["retracts"] += len(retracted)
            self.log.append({"op": "retract", "facts": [str(a) for a in retracted]})
        if inserted:
            facts = [(a.predicate, tuple([intern(t) for t in a.args])) for a in inserted]
            added = self.sem.insert(facts)
            for pred in sorted(added.predicates()):
                ids = self.ids_by_pred.setdefault(pred, {})
                for row in sorted(added.rows(pred)):
                    a = ids.get(row)
                    if a is None:
                        a = self._atom_id(pred, row)
                    if not self.in_ustar[a]:
                        self.in_ustar[a] = 1
                        insort(self.sorted_keys, (self._key(a), a))
            if len(added):
                self._ground_delta(added)
                self._recheck_ground_rules()
            self.stats["inserts"] += len(inserted)
            self.log.append({"op": "insert", "facts": [str(a) for a in inserted]})
        if self.table._eager:
            self.table._materialize()  # resync the eager mirror with the appends
        self._rebuild_index()

    def _rebuild_index(self) -> None:
        """Publish a fresh :class:`GroundIndex` over the shared arrays."""
        csr = self.csr
        n_atoms = len(self.pred_of)
        n_rules = len(csr.heads)
        edb_mask, initial_status = _initial_model(
            n_atoms, self.pred_of, self.ids_by_pred, self.sem.base, self.edb
        )
        idx = GroundIndex.__new__(GroundIndex)
        idx.n_atoms = n_atoms
        idx.n_rules = n_rules
        idx.head_of = csr.heads
        idx.head_of_t = tuple(csr.heads)
        idx.body_len = array("i", self.body_len)
        idx.pos_len = array("i", self.pos_len)
        idx.pos_off, idx.pos_atoms = csr.pos_off, csr.pos
        idx.neg_off, idx.neg_atoms = csr.neg_off, csr.neg
        idx.pos_occ_t = tuple(self.pos_occ_lists)
        idx.neg_occ_t = tuple(self.neg_occ_lists)
        idx.rules_by_head_t = tuple(self.head_lists)
        # The flat occurrence CSR stays unset: GroundIndex.__getattr__
        # rebuilds it from the views on first (serialization) touch.
        idx.support = array("i", self.support_live)
        idx.initial_status = initial_status
        idx.initial_valued = array("i", (a for a in range(n_atoms) if initial_status[a]))
        idx.edb_mask = edb_mask
        idx.empty_body_rules = self.empty_body_rules
        idx.zero_support_atoms = array(
            "i", (a for a in range(n_atoms) if self.support_live[a] == 0)
        )
        idx.iota_atoms = array("i", range(n_atoms))
        idx.iota_rules = array("i", range(n_rules))
        alive = self.alive
        idx.initial_rule_alive = bytes(alive)
        live = array("i")
        slot = array("i", [-1]) * n_rules
        for r in range(n_rules):
            if alive[r]:
                slot[r] = len(live)
                live.append(r)
        idx.live_rules_init = live
        idx.rule_slot_init = slot
        order = array("i", bytes(4 * n_atoms))
        for rank, (_key, a) in enumerate(self.sorted_keys):
            order[a] = rank
        in_ustar = self.in_ustar
        for a in range(n_atoms):
            if not in_ustar[a]:
                # Ghosts and never-in-U* extras: inert (zero live support
                # falsifies them before any tie forms), ranked after every
                # canonical atom.
                order[a] = n_atoms + a
        idx.atom_order = order
        csr.n_atoms = n_atoms
        csr.edb_mask = edb_mask
        csr.initial_status = initial_status
        self.gp._index_cache = idx


def _with_initial_status(idx: GroundIndex, initial_status: array) -> GroundIndex:
    """A light index copy sharing everything except M₀."""
    new = GroundIndex.__new__(GroundIndex)
    for name in GroundIndex.__slots__:
        if name in ("initial_status", "initial_valued"):
            continue
        try:
            setattr(new, name, object.__getattribute__(idx, name))
        except AttributeError:
            pass  # lazily rebuilt flat occurrence arrays stay lazy
    new.initial_status = initial_status
    new.initial_valued = array("i", (a for a in range(idx.n_atoms) if initial_status[a]))
    return new


def _apply_full_delta(
    gp: "GroundProgram", inserted: Sequence[Atom], retracted: Sequence[Atom]
) -> bool:
    """Full-mode fast path: the dense atom/instance space is already
    total over the universe, so a fact delta is a pure M₀ flip."""
    from repro.ground.model import FALSE, TRUE, UNDEF

    if universe_of(gp.program, gp.database) != gp.universe:
        return False
    idx = gp.index
    table = gp.atoms
    status = array("b", idx.initial_status)
    # Retractions first, then insertions — the same convention as the
    # relevant-mode session, so a retract+insert of one fact nets present.
    for atom_ in retracted:
        i = table.get(atom_)
        if i is None:
            return False
        status[i] = FALSE if idx.edb_mask[i] else UNDEF
    for atom_ in inserted:
        i = table.get(atom_)
        if i is None:
            return False
        status[i] = TRUE
    gp._index_cache = _with_initial_status(idx, status)
    csr = getattr(gp, "_csr", None)
    if csr is not None:
        csr.initial_status = status
    return True


def apply_facts_delta(
    gp: "GroundProgram",
    inserted: Sequence[Atom] = (),
    retracted: Sequence[Atom] = (),
) -> bool:
    """Apply EDB fact deltas to a live ground program, in place.

    The caller must already have applied the same change to
    ``gp.database`` (the ground program aliases the live database
    object).  Returns True when the ground program was updated
    incrementally; False when the change falls outside the incremental
    envelope — mode ``edb``, a universe that gained or lost a constant,
    negative extensional literals (whose Δ-prune would need instance
    resurrection), or a hand-grown atom table — in which case the caller
    should re-ground from scratch.
    """
    inserted = list(inserted)
    retracted = list(retracted)
    if not inserted and not retracted:
        return True
    if gp.mode == "full":
        if not _apply_full_delta(gp, inserted, retracted):
            return False
        log = getattr(gp, "_delta_log", None)
        if log is None:
            log = []
            gp._delta_log = log
        if retracted:
            log.append({"op": "retract", "facts": [str(a) for a in retracted]})
        if inserted:
            log.append({"op": "insert", "facts": [str(a) for a in inserted]})
        return True
    if gp.mode != "relevant":
        return False
    if universe_of(gp.program, gp.database) != gp.universe:
        return False
    session: GroundDeltaSession | None = getattr(gp, "_delta_session", None)
    if session is None:
        if getattr(gp, "_delta_ctx", None) is None:
            return False
        edb = gp.program.edb_predicates
        if any(
            not lit.positive and lit.predicate in edb
            for r in gp.program.rules
            for lit in r.body
        ):
            return False
        table = gp.atoms
        if not isinstance(table, _InternedAtomTable):
            return False
        if table._eager and len(table._atoms) != len(table._pred_of):
            return False
        session = GroundDeltaSession(gp)
        gp._delta_session = session
        gp._delta_log = session.log
    session.apply(inserted, retracted)
    return True
