"""Datalog¬ core: terms, atoms, rules, programs, databases, parsing, skeletons.

This package is the language substrate of the reproduction: everything in
§2 of the paper up to (but excluding) the ground graph, which lives in
:mod:`repro.ground`.
"""

from repro.datalog.atoms import Atom, Literal, atom, neg, pos
from repro.datalog.database import Database
from repro.datalog.parser import parse_atom, parse_database, parse_program, parse_rules
from repro.datalog.printer import format_database, format_program, format_rule
from repro.datalog.program import Program
from repro.datalog.rules import Rule, rule
from repro.datalog.skeleton import Skeleton, SkeletonRule, is_alphabetic_variant, skeleton_of
from repro.datalog.terms import Constant, Term, Variable, term_from_value

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "Literal",
    "Program",
    "Rule",
    "Skeleton",
    "SkeletonRule",
    "Term",
    "Variable",
    "atom",
    "format_database",
    "format_program",
    "format_rule",
    "is_alphabetic_variant",
    "neg",
    "parse_atom",
    "parse_database",
    "parse_program",
    "parse_rules",
    "pos",
    "rule",
    "skeleton_of",
    "term_from_value",
]
