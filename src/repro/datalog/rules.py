"""Rules of a Datalog program with negation.

A rule has the form ``head :- L1, ..., Ls`` where the head is an atom and
each ``Li`` is a (positive or negative) literal.  A rule with an empty body
is a *fact schema*; if moreover its head is ground, it is a plain fact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Union

from repro.datalog.atoms import Atom, Literal
from repro.datalog.terms import Constant, Variable

__all__ = ["Rule", "rule"]


@dataclass(frozen=True, slots=True)
class Rule:
    """An immutable Datalog¬ rule: ``head :- body``.

    >>> from repro.datalog.atoms import atom, pos, neg
    >>> r = Rule(atom("win", "X"), (pos("move", "X", "Y"), neg("win", "Y")))
    >>> str(r)
    'win(X) :- move(X, Y), ¬win(Y).'
    """

    head: Atom
    body: tuple[Literal, ...] = ()

    @property
    def is_fact(self) -> bool:
        """True iff the rule has an empty body and a ground head."""
        return not self.body and self.head.is_ground

    @property
    def is_ground(self) -> bool:
        """True iff the head and every body literal are ground."""
        return self.head.is_ground and all(lit.is_ground for lit in self.body)

    def positive_body(self) -> tuple[Literal, ...]:
        """The positive literals of the body, in order."""
        return tuple(lit for lit in self.body if lit.positive)

    def negative_body(self) -> tuple[Literal, ...]:
        """The negative literals of the body, in order."""
        return tuple(lit for lit in self.body if not lit.positive)

    def variables(self) -> tuple[Variable, ...]:
        """All distinct variables of the rule, in first-occurrence order.

        The order is significant: the full grounder enumerates substitutions
        as tuples aligned with this sequence, mirroring the paper's rule
        nodes ``r(a1, ..., ak)``.
        """
        seen: dict[Variable, None] = {}
        for v in self.head.variables():
            seen.setdefault(v)
        for lit in self.body:
            for v in lit.variables():
                seen.setdefault(v)
        return tuple(seen)

    def constants(self) -> Iterator[Constant]:
        """Yield every constant occurring in the rule (with repeats)."""
        yield from self.head.constants()
        for lit in self.body:
            yield from lit.atom.constants()

    def predicates(self) -> Iterator[str]:
        """Yield every predicate symbol occurring in the rule (head first)."""
        yield self.head.predicate
        for lit in self.body:
            yield lit.predicate

    def substitute(self, binding: Mapping[Variable, Constant]) -> "Rule":
        """Apply ``binding`` throughout the rule, returning a new rule."""
        return Rule(
            self.head.substitute(binding),
            tuple(lit.substitute(binding) for lit in self.body),
        )

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(lit) for lit in self.body)}."

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {self.body!r})"


def rule(head: Atom, *body: Union[Literal, Atom]) -> Rule:
    """Convenience constructor accepting atoms (treated as positive literals).

    >>> from repro.datalog.atoms import atom, neg
    >>> str(rule(atom("p", "X"), atom("e", "X"), neg("q", "X")))
    'p(X) :- e(X), ¬q(X).'
    """
    literals = tuple(lit if isinstance(lit, Literal) else Literal(lit, True) for lit in body)
    return Rule(head, literals)
