"""Finite databases (instances) for Datalog programs.

A :class:`Database` stores, for each predicate name, a set of tuples of
:class:`~repro.datalog.terms.Constant`.  It represents the paper's initial
database Δ: a set of initial values for *all* predicates of the program —
EDB facts and (in the uniform setting) initial IDB facts alike.

The class is mutable while being built (``add``/``add_atom``) and hashable
snapshots can be taken with :meth:`frozen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence, Union

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant
from repro.errors import ValidationError

__all__ = ["Database"]

_Value = Union[str, int, Constant]


def _to_constant(value: _Value) -> Constant:
    return value if isinstance(value, Constant) else Constant(value)


@dataclass
class Database:
    """A finite set of ground facts, grouped by predicate.

    >>> db = Database()
    >>> db.add("edge", 1, 2)
    >>> db.add("edge", 2, 3)
    >>> db.contains("edge", 1, 2)
    True
    >>> sorted(t[0].value for t in db["edge"])
    [1, 2]
    """

    _relations: dict[str, set[tuple[Constant, ...]]] = field(default_factory=dict)

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        db = cls()
        for a in atoms:
            db.add_atom(a)
        return db

    @classmethod
    def from_dict(cls, relations: Mapping[str, Iterable[Sequence[_Value]]]) -> "Database":
        """Build a database from ``{predicate: [tuple, ...]}``.

        >>> db = Database.from_dict({"edge": [(1, 2), (2, 3)], "start": [(1,)]})
        >>> db.contains("start", 1)
        True
        """
        db = cls()
        for pred, tuples in relations.items():
            for t in tuples:
                db.add(pred, *t)
        return db

    def add(self, predicate: str, *values: _Value) -> None:
        """Insert the fact ``predicate(values...)``."""
        row = tuple(_to_constant(v) for v in values)
        existing = self._relations.setdefault(predicate, set())
        if existing and len(next(iter(existing))) != len(row):
            raise ValidationError(
                f"predicate {predicate!r} used with inconsistent arity in database"
            )
        existing.add(row)

    def add_atom(self, atom: Atom) -> None:
        """Insert a ground atom as a fact."""
        if not atom.is_ground:
            raise ValidationError(f"cannot add non-ground atom {atom} to database")
        self.add(atom.predicate, *[t for t in atom.args])

    def discard(self, predicate: str, *values: _Value) -> bool:
        """Remove the fact ``predicate(values...)``; True iff it was present."""
        row = tuple(_to_constant(v) for v in values)
        rows = self._relations.get(predicate)
        if rows is None or row not in rows:
            return False
        rows.discard(row)
        return True

    def discard_atom(self, atom: Atom) -> bool:
        """Remove a ground atom; True iff it was present."""
        if not atom.is_ground:
            raise ValidationError(f"cannot discard non-ground atom {atom}")
        return self.discard(atom.predicate, *atom.args)

    def contains(self, predicate: str, *values: _Value) -> bool:
        """True iff the fact ``predicate(values...)`` is present."""
        row = tuple(_to_constant(v) for v in values)
        return row in self._relations.get(predicate, ())

    def contains_atom(self, atom: Atom) -> bool:
        """True iff the ground atom is present."""
        if not atom.is_ground:
            raise ValidationError(f"atom {atom} is not ground")
        return self.contains(atom.predicate, *atom.args)

    def __getitem__(self, predicate: str) -> frozenset[tuple[Constant, ...]]:
        return frozenset(self._relations.get(predicate, ()))

    def predicates(self) -> frozenset[str]:
        """Predicates with at least one fact."""
        return frozenset(p for p, rows in self._relations.items() if rows)

    def atoms(self) -> Iterator[Atom]:
        """Yield every fact as a ground atom, grouped by predicate."""
        for pred in sorted(self._relations):
            for row in sorted(self._relations[pred], key=str):
                yield Atom(pred, row)

    def constants(self) -> frozenset[Constant]:
        """All constants mentioned by any fact."""
        return frozenset(c for rows in self._relations.values() for row in rows for c in row)

    def restrict(self, predicates: Iterable[str]) -> "Database":
        """A copy containing only the facts of the given predicates."""
        keep = set(predicates)
        out = Database()
        for pred, rows in self._relations.items():
            if pred in keep:
                out._relations[pred] = set(rows)
        return out

    def copy(self) -> "Database":
        """A deep copy (relation sets are duplicated)."""
        out = Database()
        out._relations = {p: set(rows) for p, rows in self._relations.items()}
        return out

    def frozen(self) -> frozenset[tuple[str, tuple[Constant, ...]]]:
        """A hashable snapshot of the database contents."""
        return frozenset((p, row) for p, rows in self._relations.items() for row in rows)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.frozen() == other.frozen()

    def __str__(self) -> str:
        return "\n".join(f"{a}." for a in self.atoms())

    def __repr__(self) -> str:
        preds = ", ".join(f"{p}:{len(rows)}" for p, rows in sorted(self._relations.items()))
        return f"Database({preds})"
