"""Parser for the concrete Datalog¬ syntax.

Grammar (EBNF)::

    program  := statement*
    statement:= rule | fact
    rule     := atom ":-" literal { "," literal } "."
    fact     := atom "."
    literal  := [ "not" | "!" | "¬" | "\\+" ] atom
    atom     := IDENT [ "(" term { "," term } ")" ]
    term     := VARIABLE | CONSTANT | INTEGER | STRING

Lexical rules:

* ``VARIABLE``  — identifier starting with an uppercase letter or ``_``;
* ``CONSTANT``  — identifier starting with a lowercase letter;
* ``INTEGER``   — optional ``-`` followed by digits;
* ``STRING``    — double-quoted, no escapes;
* comments run from ``%`` or ``#`` to end of line.

``parse_program`` returns a validated :class:`~repro.datalog.program.Program`;
``parse_database`` parses a list of ground facts into a
:class:`~repro.datalog.database.Database`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Term, Variable
from repro.errors import ParseError

__all__ = ["parse_program", "parse_rules", "parse_database", "parse_atom"]

_PUNCT = {":-": "IMPLIES", "(": "LPAREN", ")": "RPAREN", ",": "COMMA", ".": "DOT"}
_NEGATION_WORDS = {"not"}
_NEGATION_SYMBOLS = {"!", "¬", "\\+"}


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # IDENT, VARIABLE, INTEGER, STRING, punctuation kinds, NEG, EOF
    text: str
    line: int
    column: int


def _tokenize(source: str) -> Iterator[_Token]:
    line, col = 1, 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            col += 1
            continue
        if ch in "%#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith(":-", i):
            yield _Token("IMPLIES", ":-", line, col)
            i += 2
            col += 2
            continue
        if source.startswith("\\+", i):
            yield _Token("NEG", "\\+", line, col)
            i += 2
            col += 2
            continue
        if ch in "(),.":
            yield _Token(_PUNCT[ch], ch, line, col)
            i += 1
            col += 1
            continue
        if ch in "!¬":
            yield _Token("NEG", ch, line, col)
            i += 1
            col += 1
            continue
        if ch == '"':
            j = source.find('"', i + 1)
            if j < 0:
                raise ParseError("unterminated string literal", line, col)
            text = source[i + 1 : j]
            yield _Token("STRING", text, line, col)
            col += j + 1 - i
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and source[i + 1].isdigit()):
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            yield _Token("INTEGER", source[i:j], line, col)
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            if text in _NEGATION_WORDS:
                kind = "NEG"
            elif text[0].isupper() or text[0] == "_":
                kind = "VARIABLE"
            else:
                kind = "IDENT"
            yield _Token(kind, text, line, col)
            col += j - i
            i = j
            continue
        raise ParseError(f"unexpected character {ch!r}", line, col)
    yield _Token("EOF", "", line, col)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str):
        self._tokens = list(_tokenize(source))
        self._pos = 0

    @property
    def _current(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        tok = self._tokens[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _expect(self, kind: str) -> _Token:
        tok = self._current
        if tok.kind != kind:
            raise ParseError(
                f"expected {kind}, found {tok.kind} ({tok.text!r})", tok.line, tok.column
            )
        return self._advance()

    def parse_rules(self) -> list[Rule]:
        rules: list[Rule] = []
        while self._current.kind != "EOF":
            rules.append(self._rule())
        return rules

    def _rule(self) -> Rule:
        head = self._atom()
        body: tuple[Literal, ...] = ()
        if self._current.kind == "IMPLIES":
            self._advance()
            literals = [self._literal()]
            while self._current.kind == "COMMA":
                self._advance()
                literals.append(self._literal())
            body = tuple(literals)
        self._expect("DOT")
        return Rule(head, body)

    def _literal(self) -> Literal:
        positive = True
        if self._current.kind == "NEG":
            self._advance()
            positive = False
        return Literal(self._atom(), positive)

    def _atom(self) -> Atom:
        name = self._expect("IDENT")
        args: tuple[Term, ...] = ()
        if self._current.kind == "LPAREN":
            self._advance()
            terms = [self._term()]
            while self._current.kind == "COMMA":
                self._advance()
                terms.append(self._term())
            self._expect("RPAREN")
            args = tuple(terms)
        return Atom(name.text, args)

    def _term(self) -> Term:
        tok = self._current
        if tok.kind == "VARIABLE":
            self._advance()
            return Variable(tok.text)
        if tok.kind == "IDENT":
            self._advance()
            return Constant(tok.text)
        if tok.kind == "INTEGER":
            self._advance()
            return Constant(int(tok.text))
        if tok.kind == "STRING":
            self._advance()
            return Constant(tok.text)
        raise ParseError(f"expected a term, found {tok.kind} ({tok.text!r})", tok.line, tok.column)


def parse_rules(source: str) -> list[Rule]:
    """Parse source text into a list of rules without program validation."""
    return _Parser(source).parse_rules()


def parse_program(source: str) -> Program:
    """Parse source text into a validated :class:`Program`.

    >>> prog = parse_program('''
    ...     win(X) :- move(X, Y), not win(Y).
    ... ''')
    >>> sorted(prog.edb_predicates)
    ['move']
    """
    return Program(parse_rules(source))


def parse_database(source: str) -> Database:
    """Parse a list of ground facts (``p(a, 1). q.``) into a :class:`Database`.

    >>> db = parse_database("edge(1, 2). edge(2, 3). start(1).")
    >>> len(db)
    3
    """
    rules = parse_rules(source)
    db = Database()
    for r in rules:
        if r.body:
            raise ParseError(f"database may contain only facts, found rule {r}")
        if not r.head.is_ground:
            raise ParseError(f"database fact {r.head} is not ground")
        db.add_atom(r.head)
    return db


def parse_atom(source: str) -> Atom:
    """Parse a single atom (without trailing dot)."""
    parser = _Parser(source)
    result = parser._atom()
    parser._expect("EOF")
    return result
