"""Skeletons (propositional forms) and alphabetic variants.

Section 4 of the paper: the *skeleton* of a program is the program "with all
parentheses, variables, and constants omitted" — only the pattern of
predicate symbols and signs remains.  Two programs are *alphabetic variants*
of one another iff they have the same skeleton.  A program is *structurally
total* iff every program with its skeleton is total.

Skeletons are first-class here because several results quantify over them:
the Theorem 2/3 constructions build concrete alphabetic variants of a given
skeleton, and useless-predicate analysis (§4) is defined on the skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.datalog.atoms import Atom, Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule

__all__ = ["SkeletonRule", "Skeleton", "skeleton_of", "is_alphabetic_variant"]


@dataclass(frozen=True, slots=True)
class SkeletonRule:
    """One rule with arguments erased: a head predicate and signed body symbols.

    ``body`` preserves order and multiplicity: ``(("e", True), ("p", False))``
    is the skeleton of any rule ``p(...) :- e(...), ¬p(...)``.
    """

    head: str
    body: tuple[tuple[str, bool], ...]

    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        parts = [(name if positive else f"¬{name}") for name, positive in self.body]
        return f"{self.head} :- {', '.join(parts)}."


@dataclass(frozen=True, slots=True)
class Skeleton:
    """The propositional form of a program: a tuple of :class:`SkeletonRule`.

    >>> from repro.datalog.parser import parse_program
    >>> sk = skeleton_of(parse_program("p(a) :- not p(X), e(b)."))
    >>> str(sk)
    'p :- ¬p, e.'
    """

    rules: tuple[SkeletonRule, ...]

    def __iter__(self) -> Iterator[SkeletonRule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def predicates(self) -> frozenset[str]:
        """All predicate symbols of the skeleton."""
        names = {r.head for r in self.rules}
        names.update(name for r in self.rules for name, _ in r.body)
        return frozenset(names)

    def idb_predicates(self) -> frozenset[str]:
        """Predicates appearing as a head."""
        return frozenset(r.head for r in self.rules)

    def edb_predicates(self) -> frozenset[str]:
        """Predicates never appearing as a head."""
        return self.predicates() - self.idb_predicates()

    def as_propositional_program(self) -> Program:
        """The skeleton read back as a program of zero-ary predicates.

        This is the program Π_S of §4 used to define useless predicates via
        the well-founded semantics of the skeleton.
        """
        rules = [
            Rule(
                Atom(r.head),
                tuple(Literal(Atom(name), positive) for name, positive in r.body),
            )
            for r in self.rules
        ]
        return Program(rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)


def skeleton_of(program: Program | Iterable[Rule]) -> Skeleton:
    """Erase arguments from every rule of ``program``.

    >>> from repro.datalog.parser import parse_program
    >>> a = parse_program("p(a) :- not p(X), e(b).")
    >>> b = parse_program("p(x, y) :- not p(y, y), e(x).")
    >>> skeleton_of(a) == skeleton_of(b)
    True
    """
    rules = program.rules if isinstance(program, Program) else tuple(program)
    return Skeleton(
        tuple(
            SkeletonRule(
                r.head.predicate,
                tuple((lit.predicate, lit.positive) for lit in r.body),
            )
            for r in rules
        )
    )


def is_alphabetic_variant(a: Program, b: Program) -> bool:
    """True iff ``a`` and ``b`` have the same skeleton (§4).

    Rule order is significant, matching the definition "the two programs only
    differ in the arity of the predicates and the names of the variables and
    constants in each rule".
    """
    return skeleton_of(a) == skeleton_of(b)
