"""Atoms and literals.

An *atom* is a predicate symbol applied to a tuple of terms, e.g.
``P(X, a)``; it is *ground* when every argument is a constant.  A *literal*
is an atom or the negation of an atom; negation is written ``not P(X)`` in
the concrete syntax and rendered ``¬P(X)`` by :func:`str`.

Atoms and literals are immutable; substitution produces new objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Union

from repro.datalog.terms import Constant, Term, Variable, term_from_value

__all__ = ["Atom", "Literal", "atom", "pos", "neg"]


@dataclass(frozen=True, slots=True)
class Atom:
    """A predicate applied to terms: ``predicate(args[0], ..., args[n-1])``.

    Zero-ary (propositional) atoms are permitted and print without
    parentheses, matching the paper's propositional examples.

    >>> a = Atom("edge", (Constant(1), Variable("X")))
    >>> str(a)
    'edge(1, X)'
    >>> a.is_ground
    False
    """

    predicate: str
    args: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if not self.predicate:
            raise ValueError("predicate name must be non-empty")

    @property
    def arity(self) -> int:
        """Number of arguments of the atom."""
        return len(self.args)

    @property
    def is_ground(self) -> bool:
        """True iff every argument is a constant."""
        return all(isinstance(t, Constant) for t in self.args)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables occurring in the atom, left to right (with repeats)."""
        for t in self.args:
            if isinstance(t, Variable):
                yield t

    def constants(self) -> Iterator[Constant]:
        """Yield the constants occurring in the atom, left to right (with repeats)."""
        for t in self.args:
            if isinstance(t, Constant):
                yield t

    def substitute(self, binding: Mapping[Variable, Constant]) -> "Atom":
        """Apply ``binding`` to the atom's variables, returning a new atom.

        Variables absent from ``binding`` are left in place, so partial
        substitution is allowed.
        """
        if not self.args:
            return self
        new_args = tuple(binding.get(t, t) if isinstance(t, Variable) else t for t in self.args)
        return Atom(self.predicate, new_args)

    def ground_key(self) -> tuple[str, tuple[object, ...]]:
        """A hashable key ``(predicate, constant values)`` for a ground atom."""
        if not self.is_ground:
            raise ValueError(f"atom {self} is not ground")
        return self.predicate, tuple(t.value for t in self.args)  # type: ignore[union-attr]

    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(t) for t in self.args)})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"


@dataclass(frozen=True, slots=True)
class Literal:
    """A positive or negative occurrence of an atom in a rule body.

    >>> lit = Literal(Atom("p"), positive=False)
    >>> str(lit)
    '¬p'
    >>> str(lit.negated())
    'p'
    """

    atom: Atom
    positive: bool = True

    @property
    def predicate(self) -> str:
        """Predicate symbol of the underlying atom."""
        return self.atom.predicate

    @property
    def is_ground(self) -> bool:
        """True iff the underlying atom is ground."""
        return self.atom.is_ground

    def negated(self) -> "Literal":
        """The complementary literal over the same atom."""
        return Literal(self.atom, not self.positive)

    def substitute(self, binding: Mapping[Variable, Constant]) -> "Literal":
        """Apply ``binding`` to the underlying atom."""
        return Literal(self.atom.substitute(binding), self.positive)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the underlying atom."""
        return self.atom.variables()

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"¬{self.atom}"

    def __repr__(self) -> str:
        sign = "+" if self.positive else "-"
        return f"Literal({sign}{self.atom})"


def atom(predicate: str, *args: Union[str, int, Term]) -> Atom:
    """Convenience constructor: ``atom("p", "X", "a", 3)`` → ``p(X, a, 3)``.

    String arguments starting with an uppercase letter or ``_`` become
    variables; all other values become constants (see
    :func:`repro.datalog.terms.term_from_value`).
    """
    return Atom(predicate, tuple(term_from_value(a) for a in args))


def pos(predicate: str, *args: Union[str, int, Term]) -> Literal:
    """A positive body literal: ``pos("p", "X")`` → ``p(X)``."""
    return Literal(atom(predicate, *args), True)


def neg(predicate: str, *args: Union[str, int, Term]) -> Literal:
    """A negative body literal: ``neg("p", "X")`` → ``¬p(X)``."""
    return Literal(atom(predicate, *args), False)
