"""Pretty-printing programs and databases back to parseable source text.

``str(program)`` already produces readable output using the ``¬`` glyph;
this module produces *round-trippable* ASCII source (``not`` for negation,
quoted strings where needed) plus optional alignment and comments, so
generated programs (e.g. theorem constructions) can be saved and re-parsed.
"""

from __future__ import annotations

from typing import Iterable

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term, Variable

__all__ = [
    "format_term",
    "format_atom",
    "format_literal",
    "format_rule",
    "format_program",
    "format_database",
]


def format_term(term: Term) -> str:
    """Render a term as parseable source text."""
    if isinstance(term, Variable):
        return term.name
    value = term.value
    if isinstance(value, int):
        return str(value)
    if value and value[0].islower() and all(c.isalnum() or c == "_" for c in value):
        return value
    return f'"{value}"'


def format_atom(atom: Atom) -> str:
    """Render an atom as parseable source text."""
    if not atom.args:
        return atom.predicate
    return f"{atom.predicate}({', '.join(format_term(t) for t in atom.args)})"


def format_literal(literal: Literal) -> str:
    """Render a literal, using ``not`` for negation."""
    text = format_atom(literal.atom)
    return text if literal.positive else f"not {text}"


def format_rule(rule: Rule) -> str:
    """Render one rule terminated by a dot."""
    if not rule.body:
        return f"{format_atom(rule.head)}."
    body = ", ".join(format_literal(lit) for lit in rule.body)
    return f"{format_atom(rule.head)} :- {body}."


def format_program(program: Program | Iterable[Rule], *, header: str | None = None) -> str:
    """Render a whole program, one rule per line.

    The output parses back to an equal program::

        parse_program(format_program(p)) == p

    ``header`` (if given) is emitted as a ``%`` comment block on top.
    """
    rules = program.rules if isinstance(program, Program) else tuple(program)
    lines: list[str] = []
    if header:
        lines.extend(f"% {line}" for line in header.splitlines())
    lines.extend(format_rule(r) for r in rules)
    return "\n".join(lines) + ("\n" if lines else "")


def format_database(database: Database, *, header: str | None = None) -> str:
    """Render a database as a list of facts, one per line."""
    lines: list[str] = []
    if header:
        lines.extend(f"% {line}" for line in header.splitlines())
    lines.extend(f"{format_atom(a)}." for a in database.atoms())
    return "\n".join(lines) + ("\n" if lines else "")
