"""Terms of the Datalog language: variables and constants.

A *term* is either a :class:`Variable` (written with a leading uppercase
letter or underscore in the concrete syntax, e.g. ``X``) or a
:class:`Constant` (a lowercase identifier, an integer, or a quoted string,
e.g. ``a``, ``42``, ``"new york"``).

Both classes are immutable and hashable so they can be used freely in sets,
dictionaries, and as members of frozen atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["Variable", "Constant", "Term", "term_from_value"]


@dataclass(frozen=True, slots=True)
class Variable:
    """A Datalog variable, identified by its name.

    >>> Variable("X")
    Variable('X')
    >>> str(Variable("X"))
    'X'
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Constant:
    """A Datalog constant symbol.

    The payload may be a string or an integer.  Constants compare equal iff
    their payloads are equal, so ``Constant(1) != Constant("1")``.

    >>> str(Constant("a")), str(Constant(3))
    ('a', '3')
    """

    value: Union[str, int]

    def __str__(self) -> str:
        value = self.value
        if isinstance(value, int):
            return str(value)
        if value and (value[0].islower() or value[0] == "_") and value.replace("_", "").isalnum():
            return value
        return f'"{value}"'

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]
"""Union type of the two kinds of terms."""


def term_from_value(value: Union[str, int, Variable, Constant]) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Strings beginning with an uppercase letter or ``_`` become variables
    (matching the concrete syntax); anything else becomes a constant.
    Existing terms pass through unchanged.

    >>> term_from_value("X")
    Variable('X')
    >>> term_from_value("a")
    Constant('a')
    >>> term_from_value(7)
    Constant(7)
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)
