"""Datalog¬ programs: validated, immutable collections of rules.

A :class:`Program` owns its rules and derives the EDB/IDB split exactly as
in the paper (§2): *IDB* predicates are those appearing at the head of some
rule; every other predicate mentioned in the program is *EDB*.

Programs validate that each predicate is used with a single arity
(:class:`repro.errors.ArityError` otherwise) — the standard well-formedness
assumption that the paper makes implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Mapping

from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant
from repro.errors import ArityError, ValidationError

__all__ = ["Program"]


@dataclass(frozen=True)
class Program:
    """An immutable Datalog program with negation.

    >>> from repro.datalog.atoms import atom, neg
    >>> from repro.datalog.rules import rule
    >>> prog = Program((rule(atom("p", "X"), atom("e", "X"), neg("q", "X")),
    ...                 rule(atom("q", "X"), atom("e", "X"), neg("p", "X"))))
    >>> sorted(prog.idb_predicates), sorted(prog.edb_predicates)
    (['p', 'q'], ['e'])
    """

    rules: tuple[Rule, ...]

    def __init__(self, rules: Iterable[Rule]):
        object.__setattr__(self, "rules", tuple(rules))
        self._validate()

    def _validate(self) -> None:
        arities: dict[str, int] = {}
        for r in self.rules:
            if not isinstance(r, Rule):
                raise ValidationError(f"expected Rule, got {type(r).__name__}")
            for atom_ in self._atoms_of(r):
                known = arities.setdefault(atom_.predicate, atom_.arity)
                if known != atom_.arity:
                    raise ArityError(
                        f"predicate {atom_.predicate!r} used with arity {atom_.arity} "
                        f"and {known}"
                    )

    @staticmethod
    def _atoms_of(r: Rule) -> Iterator[Atom]:
        yield r.head
        for lit in r.body:
            yield lit.atom

    @cached_property
    def arities(self) -> Mapping[str, int]:
        """Mapping predicate name → arity for every predicate in the program."""
        result: dict[str, int] = {}
        for r in self.rules:
            for atom_ in self._atoms_of(r):
                result[atom_.predicate] = atom_.arity
        return result

    @cached_property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates appearing at the head of at least one rule."""
        return frozenset(r.head.predicate for r in self.rules)

    @cached_property
    def edb_predicates(self) -> frozenset[str]:
        """Predicates mentioned in the program but never at a head."""
        mentioned = set(self.arities)
        return frozenset(mentioned - self.idb_predicates)

    @cached_property
    def predicates(self) -> frozenset[str]:
        """All predicate symbols mentioned in the program."""
        return frozenset(self.arities)

    @cached_property
    def constants(self) -> frozenset[Constant]:
        """All constant symbols appearing in the rules."""
        return frozenset(c for r in self.rules for c in r.constants())

    @cached_property
    def is_propositional(self) -> bool:
        """True iff every predicate has arity zero."""
        return all(a == 0 for a in self.arities.values())

    @cached_property
    def is_positive(self) -> bool:
        """True iff no rule body contains a negative literal."""
        return all(lit.positive for r in self.rules for lit in r.body)

    def rules_for(self, predicate: str) -> tuple[Rule, ...]:
        """All rules whose head predicate is ``predicate``, in program order."""
        return self._rules_by_head.get(predicate, ())

    @cached_property
    def _rules_by_head(self) -> Mapping[str, tuple[Rule, ...]]:
        grouped: dict[str, list[Rule]] = {}
        for r in self.rules:
            grouped.setdefault(r.head.predicate, []).append(r)
        return {p: tuple(rs) for p, rs in grouped.items()}

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self.rules)

    def __repr__(self) -> str:
        return f"Program(<{len(self.rules)} rules>)"

    def with_rules(self, extra: Iterable[Rule]) -> "Program":
        """A new program with ``extra`` rules appended."""
        return Program(self.rules + tuple(extra))
