"""Pattern matching and substitution enumeration for rule bodies.

These are the join primitives of the evaluation engine: given a partial
binding of variables to constants, :func:`match_literal` extends it against
one stored relation, and :func:`enumerate_bindings` chains matches across a
conjunction of positive literals (an indexed nested-loop join).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.datalog.atoms import Atom, Literal
from repro.datalog.terms import Constant, Variable
from repro.engine.facts import FactStore

__all__ = ["match_atom_row", "match_literal", "enumerate_bindings", "order_body_for_join"]

Binding = dict[Variable, Constant]


def match_atom_row(atom: Atom, row: Sequence[Constant], binding: Binding) -> Binding | None:
    """Try to match ``atom``'s argument pattern against a stored ``row``.

    Returns an *extended copy* of ``binding`` on success (repeated variables
    must match equal constants), or ``None`` on mismatch.
    """
    new: Binding | None = None
    for term, value in zip(atom.args, row):
        if isinstance(term, Constant):
            if term != value:
                return None
            continue
        bound = (new or binding).get(term)
        if bound is None:
            if new is None:
                new = dict(binding)
            new[term] = value
        elif bound != value:
            return None
    return new if new is not None else dict(binding)


def match_literal(literal: Literal, store: FactStore, binding: Binding) -> Iterator[Binding]:
    """Yield all extensions of ``binding`` matching a *positive* literal.

    The already-bound positions of the literal are pushed into the store's
    index so only agreeing rows are scanned.
    """
    atom = literal.atom
    bound_positions: dict[int, Constant] = {}
    for position, term in enumerate(atom.args):
        if isinstance(term, Constant):
            bound_positions[position] = term
        elif term in binding:
            bound_positions[position] = binding[term]
    for row in store.rows_matching(atom.predicate, bound_positions):
        extended = match_atom_row(atom, row, binding)
        if extended is not None:
            yield extended


def enumerate_bindings(
    literals: Sequence[Literal],
    store: FactStore,
    initial: Binding | None = None,
) -> Iterator[Binding]:
    """All bindings satisfying the conjunction of positive ``literals``.

    A depth-first indexed nested-loop join.  Literals must all be positive;
    negative literals are the caller's concern (they are either checked
    against a complete model or enumerated over the universe, depending on
    the use site).
    """
    if any(not lit.positive for lit in literals):
        raise ValueError("enumerate_bindings handles positive literals only")

    def recurse(depth: int, binding: Binding) -> Iterator[Binding]:
        if depth == len(literals):
            yield binding
            return
        for extended in match_literal(literals[depth], store, binding):
            yield from recurse(depth + 1, extended)

    yield from recurse(0, dict(initial or {}))


def order_body_for_join(literals: Sequence[Literal]) -> list[Literal]:
    """Greedy join order: prefer literals sharing variables with earlier ones.

    Starts from the literal with the most constant arguments, then repeatedly
    picks the literal with the largest number of already-bound variables
    (ties: fewer unbound variables first).  A cheap heuristic that turns the
    paper's ``[X = i]`` chains (zero/succ/succ/...) into linear probes.
    """
    remaining = list(literals)
    if len(remaining) <= 1:
        return remaining
    ordered: list[Literal] = []
    bound: set[Variable] = set()

    def constant_count(lit: Literal) -> int:
        return sum(1 for t in lit.atom.args if isinstance(t, Constant))

    def score(lit: Literal) -> tuple[int, int]:
        variables = set(lit.variables())
        return (len(variables & bound) + constant_count(lit), -len(variables - bound))

    remaining.sort(key=constant_count, reverse=True)
    while remaining:
        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered
