"""Evaluation engine: fact stores, indexed joins, semi-naive least fixpoints."""

from repro.engine.facts import FactStore
from repro.engine.matching import (
    Binding,
    enumerate_bindings,
    match_atom_row,
    match_literal,
    order_body_for_join,
)
from repro.engine.seminaive import least_model, upper_bound_model

__all__ = [
    "Binding",
    "FactStore",
    "enumerate_bindings",
    "least_model",
    "match_atom_row",
    "match_literal",
    "order_body_for_join",
    "upper_bound_model",
]
