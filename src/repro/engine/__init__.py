"""Evaluation engine: interned joins, compiled plans, semi-naive least fixpoints.

The compiled path (:mod:`repro.engine.plan`) interns constants into a
:class:`ConstantPool`, stores relations as int-tuple rows
(:class:`IntFactStore`), and compiles rule bodies into
:class:`JoinPlan` slot schedules — the machinery under the grounders and
the semi-naive engine.  The object-level join primitives
(:mod:`repro.engine.matching` over :class:`FactStore`) remain the
convenience surface for semantics that join small reducts directly.
"""

from repro.engine.facts import FactStore
from repro.engine.matching import (
    Binding,
    enumerate_bindings,
    match_atom_row,
    match_literal,
    order_body_for_join,
)
from repro.engine.plan import ConstantPool, IntFactStore, JoinPlan
from repro.engine.seminaive import least_model, least_model_interned, upper_bound_model

__all__ = [
    "Binding",
    "ConstantPool",
    "FactStore",
    "IntFactStore",
    "JoinPlan",
    "enumerate_bindings",
    "least_model",
    "least_model_interned",
    "match_atom_row",
    "match_literal",
    "order_body_for_join",
    "upper_bound_model",
]
