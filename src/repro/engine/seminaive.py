"""Semi-naive least-fixpoint evaluation of positive Datalog programs.

Two uses in the reproduction:

* the **upper-bound model** U\\* — the least model of the *positivized*
  program (negative literals dropped), which bounds every atom the
  well-founded / well-founded-tie-breaking semantics can make true and
  drives the relevant grounder;
* the **GL-reduct least model** — the independent stable-model checker
  evaluates the (positive) reduct with this same engine.

The evaluation core runs over the compiled machinery of
:mod:`repro.engine.plan`: constants are interned once into a
:class:`~repro.engine.plan.ConstantPool`, relations live in an
:class:`~repro.engine.plan.IntFactStore`, and every rule is compiled
once into :class:`~repro.engine.plan.JoinPlan` schedules — one full-join
plan plus one delta-promoted plan per body literal.  Delta rounds are
*indexed*: plans are bucketed by their promoted literal's predicate, so
a round only re-joins rules that can actually see the delta (the old
loop re-scanned every plan of every rule each round).

Head variables not bound by the positive body (the paper's programs are
not required to be range-restricted — see program (2) in §1) are
enumerated over the universe.  Over an empty universe such rules have no
instances at all (there are no ground atoms of positive arity).

:func:`least_model_interned` exposes the int-level result for callers
that keep working with interned ids (the relevant grounder);
:func:`least_model` / :func:`upper_bound_model` decode to the legacy
:class:`~repro.engine.facts.FactStore` surface.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant
from repro.engine.facts import FactStore
from repro.engine.matching import order_body_for_join
from repro.engine.plan import (
    ConstantPool,
    IntFactStore,
    JoinPlan,
    build_row,
    compile_row_spec,
)
from repro.errors import GroundingError

__all__ = ["least_model", "least_model_interned", "upper_bound_model"]


class _RulePlan:
    """One rule compiled for semi-naive evaluation (see module docstring)."""

    __slots__ = (
        "head_predicate",
        "head_spec",
        "head_row",
        "ground_body",
        "unbound_head_slots",
        "n_slots",
        "full_plan",
        "delta_plans",
    )

    def __init__(self, rule: Rule, pool: ConstantPool, idb: frozenset[str]) -> None:
        variables = rule.variables()
        self.n_slots = len(variables)
        self.head_predicate = rule.head.predicate

        body = list(rule.body)
        if not variables:
            # Fully ground rule (e.g. any propositional program): firing is
            # pure membership — no join machinery compiled at all.  The
            # "plan" of a delta promotion is just the promoted body index.
            intern = pool.intern
            self.head_spec = None
            self.ground_body = [
                (lit.predicate, tuple([intern(t) for t in lit.atom.args])) for lit in body
            ]
            self.head_row = tuple([intern(t) for t in rule.head.args])
            self.full_plan = -1
            self.delta_plans = [
                (lit.predicate, j) for j, lit in enumerate(body) if lit.predicate in idb
            ]
            self.unbound_head_slots = ()
            return
        slot_of = {v: i for i, v in enumerate(variables)}
        self.head_spec = compile_row_spec(rule.head, slot_of, pool)
        self.ground_body = None
        self.head_row = None
        self.full_plan = JoinPlan.compile(order_body_for_join(body), slot_of, pool)
        # One plan per body position promoted to the delta probe — but only
        # for derivable (IDB) predicates: deltas never contain EDB rows.
        self.delta_plans = []
        for i, lit in enumerate(body):
            if lit.predicate not in idb:
                continue
            if len(body) == 1:
                self.delta_plans.append((lit.predicate, self.full_plan))
                continue
            ordered = [lit] + order_body_for_join(body[:i] + body[i + 1 :])
            self.delta_plans.append((lit.predicate, JoinPlan.compile(ordered, slot_of, pool)))

        bound = self.full_plan.bound_slots
        self.unbound_head_slots = tuple(
            slot_of[v]
            for v in dict.fromkeys(rule.head.variables())
            if slot_of[v] not in bound
        )

    def fire(
        self,
        join_plan: "JoinPlan | int",
        store: IntFactStore,
        sink: IntFactStore,
        universe_ids: Sequence[int],
        delta: IntFactStore | None = None,
    ) -> None:
        """Join the body; add head rows not already in ``store`` to ``sink``."""
        head_pred = self.head_predicate
        ground_body = self.ground_body
        if ground_body is not None:
            delta_index = join_plan if type(join_plan) is int else -1
            for j, (pred, row) in enumerate(ground_body):
                source = delta if j == delta_index else store
                if row not in source.rows(pred):
                    return
            head_row = self.head_row
            if head_row not in store.rows(head_pred):
                sink.add(head_pred, head_row)
            return
        head_spec = self.head_spec
        existing = store.rows(head_pred)
        unbound = self.unbound_head_slots
        slots = [0] * self.n_slots

        if not unbound:

            def emit(slots: list[int]) -> None:
                row = build_row(head_spec, slots)
                if row not in existing:
                    sink.add(head_pred, row)

        else:

            def emit(slots: list[int]) -> None:
                for values in product(universe_ids, repeat=len(unbound)):
                    for s, v in zip(unbound, values):
                        slots[s] = v
                    row = build_row(head_spec, slots)
                    if row not in existing:
                        sink.add(head_pred, row)

        join_plan.execute(store, slots, emit, delta)


def least_model_interned(
    rules: Sequence[Rule],
    database: Database,
    *,
    universe: Sequence[Constant] = (),
    pool: ConstantPool,
    database_rows: IntFactStore | None = None,
) -> IntFactStore:
    """Least model of positive ``rules``, at the interned-id level.

    ``rules`` must already be positive (callers positivize).  The result
    shares ``pool``: decode rows with :meth:`ConstantPool.constant`.
    ``database_rows`` may supply ``database`` already interned under
    ``pool`` (the relevant grounder interns Δ once for both U\\* and the
    negative-EDB prune); rows are copied, never aliased.
    """
    universe_ids = [pool.intern(c) for c in universe]
    idb = frozenset(r.head.predicate for r in rules)
    plans = [_RulePlan(r, pool, idb) for r in rules]
    plans_by_pred: dict[str, list[tuple[_RulePlan, JoinPlan]]] = {}
    for plan in plans:
        for pred, delta_plan in plan.delta_plans:
            plans_by_pred.setdefault(pred, []).append((plan, delta_plan))

    store = IntFactStore()
    if database_rows is not None:
        for pred, rows in database_rows.items():
            for row in rows:
                store.add(pred, row)
    else:
        for pred in database.predicates():
            for const_row in database[pred]:
                store.add(pred, tuple([pool.intern(c) for c in const_row]))

    # Round 0: full join of every rule; then delta-indexed rounds.
    new = IntFactStore()
    for plan in plans:
        plan.fire(plan.full_plan, store, new, universe_ids)
    while len(new):
        for pred, rows in new.items():
            for row in rows:
                store.add(pred, row)
        delta = new
        new = IntFactStore()
        for pred, _rows in delta.items():
            for plan, delta_plan in plans_by_pred.get(pred, ()):
                plan.fire(delta_plan, store, new, universe_ids, delta)
    return store


def _positive_rules(program: Program | Iterable[Rule], positivize: bool) -> list[Rule]:
    rules = list(program.rules if isinstance(program, Program) else program)
    if positivize:
        return [Rule(r.head, r.positive_body()) for r in rules]
    if any(not lit.positive for r in rules for lit in r.body):
        raise GroundingError("least_model requires a positive program (or positivize=True)")
    return rules


def least_model(
    program: Program | Iterable[Rule],
    database: Database,
    *,
    universe: Sequence[Constant] = (),
    positivize: bool = False,
) -> FactStore:
    """Least model of a positive program over ``database``.

    With ``positivize=True`` negative body literals are dropped first (the
    U\\* construction); otherwise the program must be positive.  The
    compiled interned evaluation runs underneath; the result is decoded
    into the legacy :class:`FactStore` surface.
    """
    rules = _positive_rules(program, positivize)
    pool = ConstantPool()
    interned = least_model_interned(rules, database, universe=universe, pool=pool)
    constant = pool.constant
    store = FactStore()
    for pred, rows in interned.items():
        for row in rows:
            store.add(pred, tuple([constant(v) for v in row]))
    return store


def upper_bound_model(
    program: Program,
    database: Database,
    *,
    universe: Sequence[Constant] = (),
) -> FactStore:
    """U\\*: the least model of the positivized program (§ DESIGN).

    Every atom true under the well-founded or well-founded tie-breaking
    semantics — and every atom of any *stable* model — lies in U\\*;
    atoms outside it form an unfounded set.
    """
    return least_model(program, database, universe=universe, positivize=True)
