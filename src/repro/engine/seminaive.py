"""Semi-naive least-fixpoint evaluation of positive Datalog programs.

Two uses in the reproduction:

* the **upper-bound model** U\\* — the least model of the *positivized*
  program (negative literals dropped), which bounds every atom the
  well-founded / well-founded-tie-breaking semantics can make true and
  drives the relevant grounder;
* the **GL-reduct least model** — the independent stable-model checker
  evaluates the (positive) reduct with this same engine.

Head variables not bound by the positive body (the paper's programs are not
required to be range-restricted — see program (2) in §1) are enumerated
over the universe.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.datalog.atoms import Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine.facts import FactStore
from repro.engine.matching import Binding, enumerate_bindings, match_literal, order_body_for_join
from repro.errors import GroundingError

__all__ = ["least_model", "upper_bound_model"]


def _head_rows(rule: Rule, binding: Binding, universe: Sequence[Constant]):
    """Yield head argument rows for ``binding``, enumerating unbound variables.

    Over an empty universe a rule with unbound variables has no instances
    at all (there are no ground atoms of positive arity), so nothing is
    yielded.
    """
    unbound = [v for v in dict.fromkeys(rule.head.variables()) if v not in binding]
    if not unbound:
        yield tuple(
            binding[t] if isinstance(t, Variable) else t for t in rule.head.args
        )
        return
    for values in product(universe, repeat=len(unbound)):
        extended = dict(binding)
        extended.update(zip(unbound, values))
        yield tuple(
            extended[t] if isinstance(t, Variable) else t for t in rule.head.args
        )


def least_model(
    program: Program | Iterable[Rule],
    database: Database,
    *,
    universe: Sequence[Constant] = (),
    positivize: bool = False,
) -> FactStore:
    """Least model of a positive program over ``database``.

    With ``positivize=True`` negative body literals are dropped first (the
    U\\* construction); otherwise the program must be positive.

    Uses semi-naive iteration: each round re-joins only those rule bodies
    through a literal matching the previous round's *delta*.
    """
    rules = list(program.rules if isinstance(program, Program) else program)
    if positivize:
        rules = [Rule(r.head, r.positive_body()) for r in rules]
    elif any(not lit.positive for r in rules for lit in r.body):
        raise GroundingError("least_model requires a positive program (or positivize=True)")

    store = FactStore.from_database(database)
    delta = FactStore()

    # Precompute, per rule, the join orders with each body position promoted
    # to the delta slot.
    plans: list[tuple[Rule, list[list[Literal]]]] = []
    for r in rules:
        body = list(r.body)
        orders: list[list[Literal]] = []
        for i in range(len(body)):
            rest = body[:i] + body[i + 1 :]
            orders.append([body[i]] + order_body_for_join(rest))
        plans.append((r, orders))

    def fire(rule: Rule, ordered: list[Literal], delta_store: FactStore | None, sink: FactStore) -> bool:
        """Join the body (first literal against delta if given); add heads to sink."""
        changed = False
        if not ordered:
            bindings: Iterable[Binding] = [dict()]
        elif delta_store is None:
            bindings = enumerate_bindings(ordered, store)
        else:
            def chain() -> Iterable[Binding]:
                for first in match_literal(ordered[0], delta_store, {}):
                    yield from enumerate_bindings(ordered[1:], store, first)
            bindings = chain()
        for binding in bindings:
            for row in _head_rows(rule, binding, universe):
                if not store.contains(rule.head.predicate, row):
                    if sink.add(rule.head.predicate, row):
                        changed = True
        return changed

    # Round 0: full join of every rule.
    new = FactStore()
    for r, _orders in plans:
        fire(r, order_body_for_join(list(r.body)), None, new)
    while len(new):
        for atom_ in new.atoms():
            store.add_atom(atom_)
        delta = new
        new = FactStore()
        for r, orders in plans:
            for ordered in orders:
                if delta.count(ordered[0].predicate) == 0:
                    continue
                fire(r, ordered, delta, new)
    return store


def upper_bound_model(
    program: Program,
    database: Database,
    *,
    universe: Sequence[Constant] = (),
) -> FactStore:
    """U\\*: the least model of the positivized program (§ DESIGN).

    Every atom true under the well-founded or well-founded tie-breaking
    semantics — and every atom of any *stable* model — lies in U\\*;
    atoms outside it form an unfounded set.
    """
    return least_model(program, database, universe=universe, positivize=True)
