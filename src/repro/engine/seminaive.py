"""Semi-naive least-fixpoint evaluation of positive Datalog programs.

Two uses in the reproduction:

* the **upper-bound model** U\\* — the least model of the *positivized*
  program (negative literals dropped), which bounds every atom the
  well-founded / well-founded-tie-breaking semantics can make true and
  drives the relevant grounder;
* the **GL-reduct least model** — the independent stable-model checker
  evaluates the (positive) reduct with this same engine.

The evaluation core runs over the compiled machinery of
:mod:`repro.engine.plan`: constants are interned once into a
:class:`~repro.engine.plan.ConstantPool`, relations live in an
:class:`~repro.engine.plan.IntFactStore`, and every rule is compiled
once into :class:`~repro.engine.plan.JoinPlan` schedules — one full-join
plan plus one delta-promoted plan per body literal.  Delta rounds are
*indexed*: plans are bucketed by their promoted literal's predicate, so
a round only re-joins rules that can actually see the delta (the old
loop re-scanned every plan of every rule each round).

Head variables not bound by the positive body (the paper's programs are
not required to be range-restricted — see program (2) in §1) are
enumerated over the universe.  Over an empty universe such rules have no
instances at all (there are no ground atoms of positive arity).

:func:`least_model_interned` exposes the int-level result for callers
that keep working with interned ids (the relevant grounder);
:func:`least_model` / :func:`upper_bound_model` decode to the legacy
:class:`~repro.engine.facts.FactStore` surface.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Sequence

from repro.datalog.atoms import Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant
from repro.engine.facts import FactStore
from repro.engine.matching import order_body_for_join
from repro.engine.plan import (
    ConstantPool,
    IntFactStore,
    JoinPlan,
    build_row,
    compile_row_spec,
)
from repro.errors import GroundingError

__all__ = [
    "least_model",
    "least_model_interned",
    "upper_bound_model",
    "SemiNaiveSession",
]


class _RulePlan:
    """One rule compiled for semi-naive evaluation (see module docstring)."""

    __slots__ = (
        "head_predicate",
        "head_spec",
        "head_row",
        "ground_body",
        "unbound_head_slots",
        "n_slots",
        "full_plan",
        "delta_plans",
    )

    def __init__(self, rule: Rule, pool: ConstantPool, idb: frozenset[str]) -> None:
        variables = rule.variables()
        self.n_slots = len(variables)
        self.head_predicate = rule.head.predicate

        body = list(rule.body)
        if not variables:
            # Fully ground rule (e.g. any propositional program): firing is
            # pure membership — no join machinery compiled at all.  The
            # "plan" of a delta promotion is just the promoted body index.
            intern = pool.intern
            self.head_spec = None
            self.ground_body = [
                (lit.predicate, tuple([intern(t) for t in lit.atom.args])) for lit in body
            ]
            self.head_row = tuple([intern(t) for t in rule.head.args])
            self.full_plan = -1
            self.delta_plans = [
                (lit.predicate, j) for j, lit in enumerate(body) if lit.predicate in idb
            ]
            self.unbound_head_slots = ()
            return
        slot_of = {v: i for i, v in enumerate(variables)}
        self.head_spec = compile_row_spec(rule.head, slot_of, pool)
        self.ground_body = None
        self.head_row = None
        self.full_plan = JoinPlan.compile(order_body_for_join(body), slot_of, pool)
        # One plan per body position promoted to the delta probe — but only
        # for derivable (IDB) predicates: deltas never contain EDB rows.
        self.delta_plans = []
        for i, lit in enumerate(body):
            if lit.predicate not in idb:
                continue
            if len(body) == 1:
                self.delta_plans.append((lit.predicate, self.full_plan))
                continue
            ordered = [lit] + order_body_for_join(body[:i] + body[i + 1 :])
            self.delta_plans.append((lit.predicate, JoinPlan.compile(ordered, slot_of, pool)))

        bound = self.full_plan.bound_slots
        self.unbound_head_slots = tuple(
            slot_of[v]
            for v in dict.fromkeys(rule.head.variables())
            if slot_of[v] not in bound
        )

    def fire(
        self,
        join_plan: "JoinPlan | int",
        store: IntFactStore,
        sink: IntFactStore,
        universe_ids: Sequence[int],
        delta: IntFactStore | None = None,
    ) -> None:
        """Join the body; add head rows not already in ``store`` to ``sink``."""
        head_pred = self.head_predicate
        ground_body = self.ground_body
        if ground_body is not None:
            delta_index = join_plan if type(join_plan) is int else -1
            for j, (pred, row) in enumerate(ground_body):
                source = delta if j == delta_index else store
                if row not in source.rows(pred):
                    return
            head_row = self.head_row
            if head_row not in store.rows(head_pred):
                sink.add(head_pred, head_row)
            return
        head_spec = self.head_spec
        existing = store.rows(head_pred)
        unbound = self.unbound_head_slots
        slots = [0] * self.n_slots

        if not unbound:

            def emit(slots: list[int]) -> None:
                row = build_row(head_spec, slots)
                if row not in existing:
                    sink.add(head_pred, row)

        else:

            def emit(slots: list[int]) -> None:
                for values in product(universe_ids, repeat=len(unbound)):
                    for s, v in zip(unbound, values):
                        slots[s] = v
                    row = build_row(head_spec, slots)
                    if row not in existing:
                        sink.add(head_pred, row)

        join_plan.execute(store, slots, emit, delta)

    def overdelete(
        self,
        join_plan: "JoinPlan | int",
        store: IntFactStore,
        sink: IntFactStore,
        universe_ids: Sequence[int],
        delta: IntFactStore,
    ) -> None:
        """DRed marking fire: join with one literal promoted to the doomed
        delta; add head rows *present in* ``store`` to ``sink``.

        The mirror image of :meth:`fire`: overdeletion wants exactly the
        heads that *are* derived, because any derivation touching a doomed
        row makes its head a deletion candidate.  ``store`` must still
        contain the doomed rows (deletion is deferred until marking ends).
        """
        head_pred = self.head_predicate
        ground_body = self.ground_body
        if ground_body is not None:
            delta_index = join_plan if type(join_plan) is int else -1
            for j, (pred, row) in enumerate(ground_body):
                source = delta if j == delta_index else store
                if row not in source.rows(pred):
                    return
            if self.head_row in store.rows(head_pred):
                sink.add(head_pred, self.head_row)
            return
        head_spec = self.head_spec
        existing = store.rows(head_pred)
        unbound = self.unbound_head_slots
        slots = [0] * self.n_slots

        if not unbound:

            def emit(slots: list[int]) -> None:
                row = build_row(head_spec, slots)
                if row in existing:
                    sink.add(head_pred, row)

        else:

            def emit(slots: list[int]) -> None:
                for values in product(universe_ids, repeat=len(unbound)):
                    for s, v in zip(unbound, values):
                        slots[s] = v
                    row = build_row(head_spec, slots)
                    if row in existing:
                        sink.add(head_pred, row)

        join_plan.execute(store, slots, emit, delta)


def least_model_interned(
    rules: Sequence[Rule],
    database: Database,
    *,
    universe: Sequence[Constant] = (),
    pool: ConstantPool,
    database_rows: IntFactStore | None = None,
) -> IntFactStore:
    """Least model of positive ``rules``, at the interned-id level.

    ``rules`` must already be positive (callers positivize).  The result
    shares ``pool``: decode rows with :meth:`ConstantPool.constant`.
    ``database_rows`` may supply ``database`` already interned under
    ``pool`` (the relevant grounder interns Δ once for both U\\* and the
    negative-EDB prune); rows are copied, never aliased.
    """
    universe_ids = [pool.intern(c) for c in universe]
    idb = frozenset(r.head.predicate for r in rules)
    plans = [_RulePlan(r, pool, idb) for r in rules]
    plans_by_pred: dict[str, list[tuple[_RulePlan, JoinPlan]]] = {}
    for plan in plans:
        for pred, delta_plan in plan.delta_plans:
            plans_by_pred.setdefault(pred, []).append((plan, delta_plan))

    store = IntFactStore()
    if database_rows is not None:
        for pred, rows in database_rows.items():
            for row in rows:
                store.add(pred, row)
    else:
        for pred in database.predicates():
            for const_row in database[pred]:
                store.add(pred, tuple([pool.intern(c) for c in const_row]))

    # Round 0: full join of every rule; then delta-indexed rounds.
    new = IntFactStore()
    for plan in plans:
        plan.fire(plan.full_plan, store, new, universe_ids)
    while len(new):
        for pred, rows in new.items():
            for row in rows:
                store.add(pred, row)
        delta = new
        new = IntFactStore()
        for pred, _rows in delta.items():
            for plan, delta_plan in plans_by_pred.get(pred, ()):
                plan.fire(delta_plan, store, new, universe_ids, delta)
    return store


class _Found(Exception):
    """Internal: short-circuits a rederivation probe on the first match."""


def _raise_found(_slots: list[int]) -> None:
    raise _Found


class SemiNaiveSession:
    """A retained least-model evaluation supporting streaming fact deltas.

    Wraps the same compiled machinery as :func:`least_model_interned`, but
    keeps the fixpoint ``store`` and the base facts alive so single-fact
    changes cost a delta round instead of a re-evaluation:

    * :meth:`insert` seeds the new base rows and runs delta-promoted
      rounds forward (ordinary semi-naive advance);
    * :meth:`retract` runs **DRed** (delete–rederive): overdelete-mark
      everything whose derivation touches a doomed row, bulk-delete the
      marked set, reseed what the base or a surviving derivation still
      justifies, and propagate the reseeds forward.

    Unlike the one-shot evaluation, *every* body predicate gets a
    delta-promoted plan (deltas arrive on extensional predicates too).
    ``rules`` must already be positive; the universe is fixed for the
    session's lifetime (the caller guarantees no constant enters or
    leaves — the streaming engine falls back to a full re-ground
    otherwise).
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        database: Database,
        *,
        universe: Sequence[Constant] = (),
        pool: ConstantPool,
        database_rows: IntFactStore | None = None,
        store: IntFactStore | None = None,
    ) -> None:
        self.pool = pool
        self.universe_ids = [pool.intern(c) for c in universe]
        self.rules = list(rules)
        promoted = frozenset(lit.predicate for r in self.rules for lit in r.body)
        self.plans = [_RulePlan(r, pool, promoted) for r in self.rules]
        self.plans_by_pred: dict[str, list[tuple[_RulePlan, JoinPlan | int]]] = {}
        for plan in self.plans:
            for pred, delta_plan in plan.delta_plans:
                self.plans_by_pred.setdefault(pred, []).append((plan, delta_plan))
        self._rederive_plans: dict[str, list[tuple[JoinPlan, int]]] = {}

        self.base = IntFactStore()
        if database_rows is not None:
            for pred, rows in database_rows.items():
                for row in rows:
                    self.base.add(pred, row)
        else:
            for pred in database.predicates():
                for const_row in database[pred]:
                    self.base.add(pred, tuple([pool.intern(c) for c in const_row]))

        if store is not None:
            # Adopt a fixpoint computed by least_model_interned over the
            # same rules/base (the relevant grounder hands over U*).
            self.store = store
        else:
            self.store = IntFactStore()
            for pred, rows in self.base.items():
                for row in rows:
                    self.store.add(pred, row)
            new = IntFactStore()
            for plan in self.plans:
                plan.fire(plan.full_plan, self.store, new, self.universe_ids)
            self._advance(new, None)

    def _advance(self, new: IntFactStore, added: IntFactStore | None) -> None:
        """Delta rounds from frontier ``new`` (rows not yet in the store)."""
        while len(new):
            for pred, rows in new.items():
                for row in rows:
                    if self.store.add(pred, row) and added is not None:
                        added.add(pred, row)
            delta = new
            new = IntFactStore()
            for pred, _rows in delta.items():
                for plan, delta_plan in self.plans_by_pred.get(pred, ()):
                    plan.fire(delta_plan, self.store, new, self.universe_ids, delta)

    def insert(self, facts: Iterable[tuple[str, tuple[int, ...]]]) -> IntFactStore:
        """Add base facts; returns every row that became true."""
        seed = IntFactStore()
        for pred, row in facts:
            self.base.add(pred, row)
            if not self.store.contains(pred, row):
                seed.add(pred, row)
        added = IntFactStore()
        self._advance(seed, added)
        return added

    def retract(self, facts: Iterable[tuple[str, tuple[int, ...]]]) -> IntFactStore:
        """Remove base facts (DRed); returns every row that became false."""
        seeds = IntFactStore()
        for pred, row in facts:
            self.base.discard(pred, row)
            if self.store.contains(pred, row):
                seeds.add(pred, row)
        if not len(seeds):
            return IntFactStore()
        # Phase 1: overdelete-mark.  The store keeps the doomed rows so
        # non-promoted literals still see them while marking spreads.
        marked = IntFactStore()
        for pred, rows in seeds.items():
            for row in rows:
                marked.add(pred, row)
        frontier = seeds
        while len(frontier):
            candidates = IntFactStore()
            for pred, _rows in frontier.items():
                for plan, delta_plan in self.plans_by_pred.get(pred, ()):
                    plan.overdelete(
                        delta_plan, self.store, candidates, self.universe_ids, frontier
                    )
            frontier = IntFactStore()
            for pred, rows in candidates.items():
                for row in rows:
                    if marked.add(pred, row):
                        frontier.add(pred, row)
        # Phase 2: bulk delete.
        for pred, rows in marked.items():
            for row in rows:
                self.store.discard(pred, row)
        # Phase 3: rederive — base facts first, then rows with a surviving
        # derivation, then semi-naive propagation from everything reseeded.
        reseed = IntFactStore()
        for pred, rows in marked.items():
            for row in rows:
                if self.base.contains(pred, row):
                    self.store.add(pred, row)
                    reseed.add(pred, row)
        for pred, rows in marked.items():
            for row in sorted(rows):
                if not self.store.contains(pred, row) and self._derivable(pred, row):
                    self.store.add(pred, row)
                    reseed.add(pred, row)
        new = IntFactStore()
        for pred, _rows in reseed.items():
            for plan, delta_plan in self.plans_by_pred.get(pred, ()):
                plan.fire(delta_plan, self.store, new, self.universe_ids, reseed)
        self._advance(new, None)
        removed = IntFactStore()
        for pred, rows in marked.items():
            for row in rows:
                if not self.store.contains(pred, row):
                    removed.add(pred, row)
        return removed

    def _rederive_plans_for(self, pred: str) -> list[tuple[JoinPlan, int]]:
        """Head-probed plans of every rule deriving ``pred`` (lazy).

        The head literal leads, so the single-row delta probe binds the
        head's variables and the remaining (join-ordered) body literals
        check for a surviving derivation against the post-deletion store.
        """
        plans = self._rederive_plans.get(pred)
        if plans is None:
            plans = []
            for rule in self.rules:
                if rule.head.predicate != pred:
                    continue
                variables = rule.variables()
                slot_of = {v: i for i, v in enumerate(variables)}
                literals = [Literal(rule.head, True)] + order_body_for_join(list(rule.body))
                plans.append((JoinPlan.compile(literals, slot_of, self.pool), len(variables)))
            self._rederive_plans[pred] = plans
        return plans

    def _derivable(self, pred: str, row: tuple[int, ...]) -> bool:
        probe = IntFactStore()
        probe.add(pred, row)
        for plan, n_slots in self._rederive_plans_for(pred):
            try:
                plan.execute(self.store, [0] * n_slots, _raise_found, probe)
            except _Found:
                return True
        return False


def _positive_rules(program: Program | Iterable[Rule], positivize: bool) -> list[Rule]:
    rules = list(program.rules if isinstance(program, Program) else program)
    if positivize:
        return [Rule(r.head, r.positive_body()) for r in rules]
    if any(not lit.positive for r in rules for lit in r.body):
        raise GroundingError("least_model requires a positive program (or positivize=True)")
    return rules


def least_model(
    program: Program | Iterable[Rule],
    database: Database,
    *,
    universe: Sequence[Constant] = (),
    positivize: bool = False,
) -> FactStore:
    """Least model of a positive program over ``database``.

    With ``positivize=True`` negative body literals are dropped first (the
    U\\* construction); otherwise the program must be positive.  The
    compiled interned evaluation runs underneath; the result is decoded
    into the legacy :class:`FactStore` surface.
    """
    rules = _positive_rules(program, positivize)
    pool = ConstantPool()
    interned = least_model_interned(rules, database, universe=universe, pool=pool)
    constant = pool.constant
    store = FactStore()
    for pred, rows in interned.items():
        for row in rows:
            store.add(pred, tuple([constant(v) for v in row]))
    return store


def upper_bound_model(
    program: Program,
    database: Database,
    *,
    universe: Sequence[Constant] = (),
) -> FactStore:
    """U\\*: the least model of the positivized program (§ DESIGN).

    Every atom true under the well-founded or well-founded tie-breaking
    semantics — and every atom of any *stable* model — lies in U\\*;
    atoms outside it form an unfounded set.
    """
    return least_model(program, database, universe=universe, positivize=True)
