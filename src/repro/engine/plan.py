"""Compiled join plans: interned constants, int-row relations, slot bindings.

This module is the compiled heart of the evaluation/grounding front-end.
Instead of joining ``Atom`` objects over ``Constant``-tuple rows with a
fresh ``dict`` binding per match, the pipeline:

* interns every :class:`~repro.datalog.terms.Constant` into a dense
  integer id exactly once (:class:`ConstantPool` — one pool per
  :class:`~repro.api.Engine` session);
* stores relations as sets of int tuples with per-(predicate,
  bound-positions) hash indexes (:class:`IntFactStore`);
* compiles each rule body once into a :class:`JoinPlan` — an ordered
  literal schedule whose probes read and write a flat *slot array*
  (one slot per rule variable) instead of copying dict bindings per row.

A compiled :class:`LiteralStep` partitions the literal's argument
positions into the *index key* (constants and slots bound by earlier
steps — pushed into the store's hash index so only agreeing rows are
scanned) and *post ops* (first occurrences bind their slot from the row;
repeated occurrences check it).  Sources are encoded as ints: ``v >= 0``
reads slot ``v``; ``v < 0`` is the interned constant ``~v``.

:func:`compile_row_spec` compiles an atom's argument pattern into the
same encoding, used by the semi-naive engine (head emission) and the
grounder (head / positive / negative body instantiation) to build ground
rows straight from the slot array — the "head/negative-literal slot
maps" of the pipeline.  Variables left unbound by the join (the paper's
non-range-restricted heads, §1 program (2)) are enumerated over the
universe by the caller via :attr:`JoinPlan.bound_slots`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.datalog.atoms import Atom, Literal
from repro.datalog.terms import Constant, Variable

__all__ = [
    "ConstantPool",
    "IntFactStore",
    "LiteralStep",
    "JoinPlan",
    "compile_row_spec",
    "build_row",
]

IntRow = tuple[int, ...]
RowSpec = tuple[int, ...]

_EMPTY: tuple = ()


class ConstantPool:
    """Bidirectional mapping between constants and dense integer ids.

    Interning is append-only: ids are assigned in first-intern order and
    never change, so every structure keyed by them (rows, indexes, ground
    substitutions) stays valid for the lifetime of the pool — one pool
    serves every grounding mode of an :class:`~repro.api.Engine` session.
    """

    __slots__ = ("_ids", "_constants")

    def __init__(self, constants: Iterable[Constant] = ()) -> None:
        self._ids: dict[Constant, int] = {}
        self._constants: list[Constant] = []
        for c in constants:
            self.intern(c)

    def intern(self, constant: Constant) -> int:
        """The id of ``constant``, inserting it if new."""
        idx = self._ids.get(constant)
        if idx is None:
            idx = len(self._constants)
            self._ids[constant] = idx
            self._constants.append(constant)
        return idx

    def get(self, constant: object) -> int | None:
        """The id of ``constant``, or ``None`` if it was never interned."""
        return self._ids.get(constant)  # type: ignore[arg-type]

    def constant(self, index: int) -> Constant:
        """The constant with dense id ``index``."""
        return self._constants[index]

    def __len__(self) -> int:
        return len(self._constants)

    def __contains__(self, constant: object) -> bool:
        return constant in self._ids

    def __repr__(self) -> str:
        return f"ConstantPool(<{len(self._constants)} constants>)"


class IntFactStore:
    """Ground facts as int-tuple rows, indexed by bound-position signature.

    The integer twin of :class:`repro.engine.facts.FactStore`: rows are
    tuples of :class:`ConstantPool` ids, and every index is keyed by the
    tuple of values at a *signature* of argument positions.  Indexes are
    built lazily on first probe and maintained incrementally by ``add``.
    """

    __slots__ = ("_rows", "_indexes")

    def __init__(self) -> None:
        self._rows: dict[str, set[IntRow]] = {}
        # predicate -> positions signature -> key tuple -> rows
        self._indexes: dict[str, dict[tuple[int, ...], dict[IntRow, list[IntRow]]]] = {}

    def add(self, predicate: str, row: IntRow) -> bool:
        """Insert a row; returns True iff it was new."""
        rows = self._rows.get(predicate)
        if rows is None:
            rows = self._rows[predicate] = set()
        elif row in rows:
            return False
        rows.add(row)
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, index in indexes.items():
                key = row[positions[0]] if len(positions) == 1 else tuple(
                    [row[i] for i in positions]
                )
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
        return True

    def discard(self, predicate: str, row: IntRow) -> bool:
        """Remove a row; returns True iff it was present.

        Every already-built index of the predicate is maintained, so a
        store that has served probes stays usable for further probes —
        the streaming-update path retracts rows from the same stores the
        semi-naive plans keep joining against.
        """
        rows = self._rows.get(predicate)
        if rows is None or row not in rows:
            return False
        rows.discard(row)
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, index in indexes.items():
                key = row[positions[0]] if len(positions) == 1 else tuple(
                    [row[i] for i in positions]
                )
                bucket = index.get(key)
                if bucket is not None:
                    bucket.remove(row)
                    if not bucket:
                        del index[key]
        return True

    def contains(self, predicate: str, row: IntRow) -> bool:
        """True iff the row is present."""
        return row in self._rows.get(predicate, _EMPTY)

    def rows(self, predicate: str) -> set[IntRow]:
        """The live row set of a predicate (empty tuple view when absent)."""
        return self._rows.get(predicate, _EMPTY)  # type: ignore[return-value]

    def count(self, predicate: str) -> int:
        """Number of rows of a predicate."""
        return len(self._rows.get(predicate, _EMPTY))

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def predicates(self) -> Iterator[str]:
        """Predicates with at least one row."""
        return (p for p, rows in self._rows.items() if rows)

    def items(self) -> Iterator[tuple[str, set[IntRow]]]:
        """Iterate ``(predicate, row set)`` pairs with at least one row."""
        return ((p, rows) for p, rows in self._rows.items() if rows)

    def matching(
        self, predicate: str, positions: tuple[int, ...], key: int | IntRow
    ) -> Iterable[IntRow]:
        """Rows whose values at ``positions`` equal ``key`` (indexed probe).

        Single-position signatures — the overwhelmingly common join shape
        — are keyed by the bare value instead of a 1-tuple, so neither
        the index build nor the per-probe key pays a tuple allocation;
        ``key`` must follow the same convention (callers compiled by
        :class:`JoinPlan` do).
        """
        indexes = self._indexes.get(predicate)
        if indexes is None:
            indexes = self._indexes[predicate] = {}
        index = indexes.get(positions)
        if index is None:
            index = {}
            rows = self._rows.get(predicate, _EMPTY)
            if len(positions) == 1:
                p = positions[0]
                for row in rows:
                    row_key = row[p]
                    bucket = index.get(row_key)
                    if bucket is None:
                        index[row_key] = [row]
                    else:
                        bucket.append(row)
            else:
                for row in rows:
                    row_key = tuple([row[i] for i in positions])
                    bucket = index.get(row_key)
                    if bucket is None:
                        index[row_key] = [row]
                    else:
                        bucket.append(row)
            indexes[positions] = index
        return index.get(key, _EMPTY)


def compile_row_spec(atom: Atom, slot_of: Mapping[Variable, int], pool: ConstantPool) -> RowSpec:
    """Compile an atom's argument pattern into slot/constant sources.

    Entry ``v >= 0`` reads slot ``v`` of the binding array; ``v < 0`` is
    the interned constant ``~v``.  Every variable must be in ``slot_of``.
    """
    return tuple(slot_of[t] if isinstance(t, Variable) else ~pool.intern(t) for t in atom.args)


def build_row(spec: RowSpec, slots: Sequence[int]) -> IntRow:
    """Instantiate a compiled row spec against a slot array."""
    return tuple([slots[v] if v >= 0 else ~v for v in spec])


class LiteralStep:
    """One compiled probe of a positive body literal (see module docstring).

    ``single_source`` is the one slot feeding a single-position dynamic
    key, or ``None``: the probe shape is decided at compile time so the
    per-row execute loop never re-inspects ``key_sources`` (and a
    single-position key skips the tuple allocation entirely — see
    :meth:`IntFactStore.matching`).
    """

    __slots__ = (
        "predicate",
        "key_positions",
        "key_sources",
        "static_key",
        "single_source",
        "post_ops",
    )

    def __init__(
        self,
        predicate: str,
        key_positions: tuple[int, ...],
        key_sources: tuple[int, ...],
        static_key: int | IntRow | None,
        post_ops: tuple[tuple[int, int, bool], ...],
    ) -> None:
        self.predicate = predicate
        self.key_positions = key_positions
        self.key_sources = key_sources
        self.static_key = static_key
        # All-constant keys become static_key, so a lone dynamic source
        # is always a slot id (>= 0).
        self.single_source = (
            key_sources[0] if static_key is None and len(key_sources) == 1 else None
        )
        self.post_ops = post_ops

    def __repr__(self) -> str:
        return (
            f"LiteralStep({self.predicate}, key@{self.key_positions}, "
            f"binds={[op for op in self.post_ops if op[2]]})"
        )


class JoinPlan:
    """A compiled conjunction of positive literals over one slot array.

    ``execute`` runs the indexed nested-loop join, invoking
    ``emit(slots)`` once per complete binding; ``slots`` is reused
    in place, so consumers must copy what they keep.  ``bound_slots``
    is the statically known set of slots the join assigns — slots
    outside it are the caller's to enumerate (universe slots).
    """

    __slots__ = ("steps", "bound_slots")

    def __init__(self, steps: tuple[LiteralStep, ...], bound_slots: frozenset[int]) -> None:
        self.steps = steps
        self.bound_slots = bound_slots

    @classmethod
    def compile(
        cls,
        literals: Sequence[Literal],
        slot_of: Mapping[Variable, int],
        pool: ConstantPool,
    ) -> "JoinPlan":
        """Compile ``literals`` (already join-ordered, all positive)."""
        steps: list[LiteralStep] = []
        bound: set[int] = set()
        for lit in literals:
            if not lit.positive:
                raise ValueError("JoinPlan handles positive literals only")
            key_positions: list[int] = []
            key_sources: list[int] = []
            post_ops: list[tuple[int, int, bool]] = []
            newly: set[int] = set()
            for pos, term in enumerate(lit.atom.args):
                if isinstance(term, Constant):
                    key_positions.append(pos)
                    key_sources.append(~pool.intern(term))
                else:
                    slot = slot_of[term]
                    if slot in bound:
                        key_positions.append(pos)
                        key_sources.append(slot)
                    elif slot in newly:
                        post_ops.append((pos, slot, False))
                    else:
                        newly.add(slot)
                        post_ops.append((pos, slot, True))
            bound |= newly
            static_key: int | IntRow | None = None
            if key_sources and all(v < 0 for v in key_sources):
                static_key = (
                    ~key_sources[0]
                    if len(key_sources) == 1
                    else tuple([~v for v in key_sources])
                )
            steps.append(
                LiteralStep(
                    lit.predicate,
                    tuple(key_positions),
                    tuple(key_sources),
                    static_key,
                    tuple(post_ops),
                )
            )
        return cls(tuple(steps), frozenset(bound))

    def execute(
        self,
        store: IntFactStore,
        slots: list[int],
        emit: Callable[[list[int]], None],
        delta_store: IntFactStore | None = None,
    ) -> None:
        """Run the join; ``emit(slots)`` fires per complete binding.

        With ``delta_store`` given, the *first* literal probes it instead
        of ``store`` (the semi-naive delta promotion); the remaining
        literals join against the full store.
        """
        steps = self.steps
        n = len(steps)
        if n == 0:
            emit(slots)
            return
        last = n - 1

        def descend(depth: int) -> None:
            step = steps[depth]
            source = store if depth or delta_store is None else delta_store
            if step.static_key is not None:
                rows = source.matching(step.predicate, step.key_positions, step.static_key)
            elif step.single_source is not None:
                rows = source.matching(
                    step.predicate, step.key_positions, slots[step.single_source]
                )
            elif step.key_sources:
                key = tuple([slots[v] if v >= 0 else ~v for v in step.key_sources])
                rows = source.matching(step.predicate, step.key_positions, key)
            else:
                rows = source.rows(step.predicate)
            post = step.post_ops
            if depth == last:
                for row in rows:
                    for pos, slot, bind in post:
                        if bind:
                            slots[slot] = row[pos]
                        elif slots[slot] != row[pos]:
                            break
                    else:
                        emit(slots)
            else:
                nxt = depth + 1
                for row in rows:
                    for pos, slot, bind in post:
                        if bind:
                            slots[slot] = row[pos]
                        elif slots[slot] != row[pos]:
                            break
                    else:
                        descend(nxt)

        descend(0)

    def __repr__(self) -> str:
        return f"JoinPlan(<{len(self.steps)} steps>, bound={sorted(self.bound_slots)})"
