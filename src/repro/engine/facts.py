"""Fact stores: indexed collections of ground tuples, grouped by predicate.

The evaluation engine (joins, semi-naive iteration, relevant grounding)
works over a :class:`FactStore` — a thin, mutable wrapper around
``{predicate: set[tuple[Constant, ...]]}`` with on-demand hash indexes on
argument positions, so that matching a partially bound literal does not
scan the whole relation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Mapping

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.terms import Constant

__all__ = ["FactStore"]

Row = tuple[Constant, ...]


class FactStore:
    """Ground facts with per-(predicate, positions) hash indexes.

    >>> store = FactStore()
    >>> _ = store.add("edge", (Constant(1), Constant(2)))
    >>> _ = store.add("edge", (Constant(1), Constant(3)))
    >>> sorted(r[1].value for r in store.rows_matching("edge", {0: Constant(1)}))
    [2, 3]
    """

    def __init__(self) -> None:
        self._rows: dict[str, set[Row]] = defaultdict(set)
        # (predicate, positions) -> key tuple -> list of rows
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[tuple, list[Row]]] = {}

    @classmethod
    def from_database(cls, database: Database) -> "FactStore":
        """Copy every fact of ``database`` into a fresh store."""
        store = cls()
        for pred in database.predicates():
            for row in database[pred]:
                store.add(pred, row)
        return store

    def add(self, predicate: str, row: Row) -> bool:
        """Insert a row; returns True iff it was new."""
        rows = self._rows[predicate]
        if row in rows:
            return False
        rows.add(row)
        for (pred, positions), index in self._indexes.items():
            if pred == predicate:
                key = tuple(row[i] for i in positions)
                index.setdefault(key, []).append(row)
        return True

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom; returns True iff it was new."""
        return self.add(atom.predicate, tuple(atom.args))  # type: ignore[arg-type]

    def contains(self, predicate: str, row: Row) -> bool:
        """True iff the row is present."""
        return row in self._rows.get(predicate, ())

    def contains_atom(self, atom: Atom) -> bool:
        """True iff the ground atom is present."""
        return self.contains(atom.predicate, tuple(atom.args))  # type: ignore[arg-type]

    def rows(self, predicate: str) -> frozenset[Row]:
        """All rows of a predicate (frozen snapshot)."""
        return frozenset(self._rows.get(predicate, ()))

    def count(self, predicate: str) -> int:
        """Number of rows of a predicate."""
        return len(self._rows.get(predicate, ()))

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def predicates(self) -> Iterator[str]:
        """Predicates with at least one row."""
        return (p for p, rows in self._rows.items() if rows)

    def atoms(self) -> Iterator[Atom]:
        """Yield every fact as a ground atom."""
        for pred, rows in self._rows.items():
            for row in rows:
                yield Atom(pred, row)

    def rows_matching(self, predicate: str, bound: Mapping[int, Constant]) -> Iterable[Row]:
        """Rows of ``predicate`` agreeing with ``bound`` (position → constant).

        Uses (and lazily builds) a hash index on the bound positions; with no
        bound positions this is a full scan of the relation.
        """
        if not bound:
            return self._rows.get(predicate, ())
        positions = tuple(sorted(bound))
        index_key = (predicate, positions)
        index = self._indexes.get(index_key)
        if index is None:
            index = {}
            for row in self._rows.get(predicate, ()):
                key = tuple(row[i] for i in positions)
                index.setdefault(key, []).append(row)
            self._indexes[index_key] = index
        return index.get(tuple(bound[i] for i in positions), ())

    def to_database(self) -> Database:
        """Snapshot the store as a :class:`Database`."""
        db = Database()
        for pred, rows in self._rows.items():
            for row in rows:
                db.add(pred, *row)
        return db

    def __repr__(self) -> str:
        preds = ", ".join(f"{p}:{len(rows)}" for p, rows in sorted(self._rows.items()))
        return f"FactStore({preds})"
