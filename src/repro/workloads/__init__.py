"""Workload generators: named families and random program distributions."""

from repro.workloads.families import (
    committee,
    negation_tower,
    tie_chain,
    unfounded_tower,
    win_move_cycle,
    win_move_line,
    win_move_program,
)
from repro.workloads.random_programs import (
    random_call_consistent_program,
    random_propositional_program,
    random_stratified_program,
)

__all__ = [
    "committee",
    "negation_tower",
    "random_call_consistent_program",
    "random_propositional_program",
    "random_stratified_program",
    "tie_chain",
    "unfounded_tower",
    "win_move_cycle",
    "win_move_line",
    "win_move_program",
]
