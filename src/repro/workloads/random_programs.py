"""Random program generators with documented distributions.

Three generators, each targeting a paper class:

* :func:`random_propositional_program` — unrestricted Datalog¬ over 0-ary
  predicates (the §5 setting); rule bodies draw predicates uniformly and
  negate each literal independently;
* :func:`random_call_consistent_program` — guaranteed **no odd cycle** by
  construction: predicates are pre-assigned to two sides and every literal's
  sign is forced by the Lemma-1 discipline (positive within a side,
  negative across), so every cycle has even negative parity (Theorem 1
  workloads);
* :func:`random_stratified_program` — predicates are pre-assigned levels;
  bodies reference equal-or-lower levels positively and strictly lower
  levels negatively.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random

from repro.datalog.atoms import Atom, Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule

__all__ = [
    "random_propositional_program",
    "random_call_consistent_program",
    "random_stratified_program",
]


def _predicates(count: int) -> list[str]:
    return [f"r{i}" for i in range(count)]


def random_propositional_program(
    n_predicates: int,
    n_rules: int,
    *,
    max_body: int = 3,
    negation_probability: float = 0.4,
    edb_predicates: int = 0,
    seed: int | None = None,
) -> Program:
    """Unrestricted random propositional Datalog¬.

    The first ``edb_predicates`` predicates never head a rule (they stay
    extensional); everything else is fair game.  No structural guarantees —
    expect odd cycles at any decent negation probability.
    """
    rng = random.Random(seed)
    names = _predicates(n_predicates)
    if edb_predicates >= n_predicates:
        raise ValueError("need at least one IDB predicate")
    idb = names[edb_predicates:]
    rules = []
    for _ in range(n_rules):
        head = Atom(rng.choice(idb))
        body = tuple(
            Literal(Atom(rng.choice(names)), rng.random() >= negation_probability)
            for _ in range(rng.randint(1, max_body))
        )
        rules.append(Rule(head, body))
    return Program(rules)


def random_call_consistent_program(
    n_predicates: int,
    n_rules: int,
    *,
    max_body: int = 3,
    edb_predicates: int = 0,
    seed: int | None = None,
) -> Program:
    """Random programs with no odd cycle in G(Π), by construction.

    Every predicate gets a fixed side (0/1); a body literal is positive iff
    its predicate shares the head's side.  Any cycle alternates sides an
    even number of times, so its negative count is even: the program is
    call-consistent and Theorem 1 applies.
    """
    rng = random.Random(seed)
    names = _predicates(n_predicates)
    if edb_predicates >= n_predicates:
        raise ValueError("need at least one IDB predicate")
    side = {name: rng.randrange(2) for name in names}
    idb = names[edb_predicates:]
    rules = []
    for _ in range(n_rules):
        head_name = rng.choice(idb)
        body = []
        for _ in range(rng.randint(1, max_body)):
            body_name = rng.choice(names)
            positive = side[body_name] == side[head_name]
            body.append(Literal(Atom(body_name), positive))
        rules.append(Rule(Atom(head_name), tuple(body)))
    return Program(rules)


def random_stratified_program(
    n_predicates: int,
    n_rules: int,
    *,
    n_levels: int = 3,
    max_body: int = 3,
    seed: int | None = None,
) -> Program:
    """Random stratified programs: negation only into strictly lower levels."""
    rng = random.Random(seed)
    names = _predicates(n_predicates)
    level = {name: rng.randrange(n_levels) for name in names}
    # Level-0 predicates with no rule act as the EDB.
    idb = [name for name in names if level[name] > 0] or [names[0]]
    rules = []
    for _ in range(n_rules):
        head_name = rng.choice(idb)
        body = []
        for _ in range(rng.randint(1, max_body)):
            body_name = rng.choice(names)
            if level[body_name] < level[head_name]:
                positive = rng.random() < 0.5
            elif level[body_name] == level[head_name]:
                positive = True
            else:
                continue  # would violate stratification: skip
            body.append(Literal(Atom(body_name), positive))
        if body:
            rules.append(Rule(Atom(head_name), tuple(body)))
    return Program(rules)
