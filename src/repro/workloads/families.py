"""Named program families: the parametric workloads of the benchmark suite.

Each generator returns ``(program, database)`` scaled by a size parameter,
chosen to stress one code path:

* :func:`win_move_line` / :func:`win_move_cycle` — the classic game
  workload of the Datalog¬ literature (the win-move query motivates the
  well-founded semantics); lines resolve by ``close`` alone, even cycles
  are draws that only tie-breaking totalizes;
* :func:`unfounded_tower` — forces the well-founded loop through many
  unfounded-set iterations;
* :func:`tie_chain` — a sequence of gated ties, forcing the tie-breaking
  interpreter through many free choices;
* :func:`negation_tower` — a deeply stratified program (stratified
  evaluation and level computation stress);
* :func:`committee` — one independent tie per element: the
  nondeterministic-choice idiom of §6 / [SZ];
* :func:`grounded_argumentation` — abstract argumentation frameworks
  under the grounded-extension reading (well-founded model of the
  attack program): defense chains resolve by ``close``, mutual-attack
  pairs are the ties — the game-theoretic-semantics workload beyond
  win-move;
* :func:`adversarial_scc` — an adversarial random attack distribution
  whose ground graph is **one giant strongly connected tie component**
  (a balanced signed SCC covering every atom): the worst case for the
  condensation/Lemma-1 machinery, with no small components to retire
  early.
"""

from __future__ import annotations

from repro.datalog.atoms import Atom, Literal, atom, neg, pos
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule, rule
from repro.datalog.terms import Constant, Variable

__all__ = [
    "win_move_program",
    "win_move_line",
    "win_move_cycle",
    "unfounded_tower",
    "tie_chain",
    "negation_tower",
    "layered_games",
    "committee",
    "grounded_argumentation",
    "adversarial_scc",
]


def win_move_program() -> Program:
    """``win(X) :- move(X, Y), ¬win(Y)`` — the pebble-game query."""
    return Program([rule(atom("win", "X"), pos("move", "X", "Y"), neg("win", "Y"))])


def win_move_line(n: int) -> tuple[Program, Database]:
    """A line of moves 0 → 1 → ... → n: fully resolved by ``close`` alone."""
    db = Database.from_dict({"move": [(i, i + 1) for i in range(n)]})
    return win_move_program(), db


def win_move_cycle(n: int) -> tuple[Program, Database]:
    """A cycle of n moves: for even n a draw (a tie the WF semantics cannot
    break); for odd n an odd ground cycle (no fixpoint at all)."""
    db = Database.from_dict({"move": [(i, (i + 1) % n) for i in range(n)]})
    return win_move_program(), db


def unfounded_tower(n: int) -> tuple[Program, Database]:
    """n layers, each needing its own unfounded-set iteration.

    Layer i has a self-loop core ``c_i :- c_i`` with an entry
    ``c_i :- z_{i-1}`` from the previous layer, plus ``t_i :- ¬c_i`` and
    ``z_i :- ¬t_i``.  In round i the core ``c_i`` is the *only* unfounded
    atom: every later core is still positively supported through its entry
    ``z`` in G⁺.  Falsifying ``c_i`` makes ``t_i`` true, which kills
    ``z_i``'s rule, which kills layer i+1's entry — leaving only its
    self-loop for the next round.  The well-founded interpreter therefore
    runs exactly n unfounded iterations (a worst case for its outer loop).
    """
    rules = []
    for i in range(n):
        c_i, t_i, z_i = Atom(f"c{i}"), Atom(f"t{i}"), Atom(f"z{i}")
        rules.append(Rule(c_i, (Literal(c_i, True),)))
        if i > 0:
            rules.append(Rule(c_i, (Literal(Atom(f"z{i - 1}"), True),)))
        rules.append(Rule(t_i, (Literal(c_i, False),)))
        rules.append(Rule(z_i, (Literal(t_i, False),)))
    return Program(rules), Database()


def tie_chain(n: int) -> tuple[Program, Database]:
    """n ties, each exposed only after the previous one is broken.

    Tie i is ``p_i :- ¬q_i, done_{i-1}`` / ``q_i :- ¬p_i, done_{i-1}``
    with ``done_i`` derived from either side — so every run of the
    tie-breaking interpreter makes exactly n free choices, one at a time.
    """
    rules = []
    for i in range(n):
        p_i, q_i, done = Atom(f"p{i}"), Atom(f"q{i}"), Atom(f"done{i}")
        gate = [] if i == 0 else [Literal(Atom(f"done{i - 1}"), True)]
        rules.append(Rule(p_i, tuple([Literal(q_i, False)] + gate)))
        rules.append(Rule(q_i, tuple([Literal(p_i, False)] + gate)))
        rules.append(Rule(done, (Literal(p_i, True),)))
        rules.append(Rule(done, (Literal(q_i, True),)))
    return Program(rules), Database()


def negation_tower(n: int) -> tuple[Program, Database]:
    """A strictly stratified tower: ``l_0 :- base`` and ``l_{i+1} :- ¬l_i``."""
    rules = [Rule(Atom("l0"), (Literal(Atom("base"), True),))]
    for i in range(1, n + 1):
        rules.append(Rule(Atom(f"l{i}"), (Literal(Atom(f"l{i - 1}"), False),)))
    return Program(rules), Database.from_dict({"base": [()]})


def layered_games(layers: int, positions: int) -> tuple[Program, Database]:
    """Independent win-move games stacked through negation gates.

    Layer i plays win-move on its own board (predicates ``winᵢ``/``moveᵢ``
    over a shared position set); layer i+1 opens only where layer i's
    opening position lost: ``openᵢ₊₁ :- ¬winᵢ(0)``.  The program graph
    condensation has one SCC per layer — the best case for modular
    evaluation, and a scaling knob for monolithic-vs-modular ablations.
    """
    rules: list[Rule] = []
    db = Database()
    for layer in range(layers):
        win, move, gate = f"win{layer}", f"move{layer}", f"open{layer}"
        body = [pos(move, "X", "Y"), neg(win, "Y")]
        if layer > 0:
            body.append(Literal(Atom(gate), True))
            rules.append(Rule(Atom(gate), (Literal(Atom(f"win{layer - 1}", (Constant(0),)), False),)))
        rules.append(Rule(Atom(win, (Variable("X"),)), tuple(body)))
        for i in range(positions - 1):
            db.add(move, i, i + 1)
    return Program(rules), db


def argumentation_program() -> Program:
    """The grounded-extension encoding of an abstract argumentation framework.

    ``accepted(X) :- arg(X), ¬defeated(X)`` and
    ``defeated(X) :- attacks(Y, X), accepted(Y)`` — the well-founded
    model of this program *is* the grounded labelling: true = IN,
    false = OUT, undefined = UNDECIDED (the credulous middle that only
    tie-breaking totalizes).
    """
    return Program(
        [
            rule(atom("accepted", "X"), pos("arg", "X"), neg("defeated", "X")),
            rule(atom("defeated", "X"), pos("attacks", "Y", "X"), pos("accepted", "Y")),
        ]
    )


def grounded_argumentation(n: int) -> tuple[Program, Database]:
    """n arguments in a mixed attack framework (grounded-extension game).

    Three regimes interleave, so every kernel phase is exercised:

    * **defense chains** — runs of ``a_i attacks a_{i+1}``: the grounded
      extension accepts every even link (resolved by ``close`` alone,
      like a win-move line);
    * **mutual attacks** — pairs attacking each other with no external
      attacker: classic UNDECIDED arguments, each pair one independent
      tie for the tie-breaking interpreter;
    * **floating defeats** — a mutual pair both of whose members attack
      a third argument: the victim stays undecided in the grounded
      labelling but is defeated under *every* tie orientation — the
      structural-totality boundary the paper's §3 draws.
    """
    attacks: list[tuple[int, int]] = []
    position = 0
    while position + 3 < n:
        kind = position % 3
        if kind == 0:  # defense chain of 4
            attacks += [
                (position, position + 1),
                (position + 1, position + 2),
                (position + 2, position + 3),
            ]
        elif kind == 1:  # two independent mutual-attack pairs
            attacks += [
                (position, position + 1),
                (position + 1, position),
                (position + 2, position + 3),
                (position + 3, position + 2),
            ]
        else:  # floating defeat: pair (p, p+1) both attack p+2, chain into p+3
            attacks += [
                (position, position + 1),
                (position + 1, position),
                (position, position + 2),
                (position + 1, position + 2),
                (position + 2, position + 3),
            ]
        position += 4
    db = Database.from_dict({"arg": [(i,) for i in range(n)], "attacks": attacks})
    return argumentation_program(), db


def adversarial_scc(
    n: int, *, chords: int = 2, seed: int = 0x5CC
) -> tuple[Program, Database]:
    """One giant single-SCC tie component: the adversarial random workload.

    A win-move board over ``n`` positions (n rounded up to even) drawn
    from a distribution designed to be the condensation's worst case:
    a Hamiltonian cycle plus ``chords * n`` random chords, every edge
    crossing the even/odd parity classes.  All cycles are even, so the
    whole board is **one strongly connected, Lemma-1-balanced tie
    component** — no atom resolves by ``close``, no component retires
    early, and the first tie orientation cascades through everything.
    The chords are a deterministic function of ``(n, chords, seed)``
    (xorshift, no global RNG state), so runs are reproducible.
    """
    if n < 2:
        n = 2
    if n % 2:
        n += 1
    edges = {(i, (i + 1) % n) for i in range(n)}
    state = (seed ^ n) & 0xFFFFFFFF or 0x9E3779B9
    half = n // 2
    for _ in range(chords * n):
        # xorshift32: cheap, deterministic, and free of random-module state.
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        source = state % n
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        # Land on the opposite parity class: every edge flips sides, so
        # every cycle is even and the component is one balanced tie.
        target = (2 * (state % half) + (source + 1)) % n
        if target != source:
            edges.add((source, target))
    db = Database.from_dict({"move": sorted(edges)})
    return win_move_program(), db


def committee(n: int) -> tuple[Program, Database]:
    """One independent tie per member: in/out via mutual negation (§6).

    ``in(x) :- member(x), ¬out(x)`` and ``out(x) :- member(x), ¬in(x)`` —
    the archetypical nondeterministic-choice program: 2^n stable models,
    each reachable under some sequence of tie orientations.
    """
    program = Program(
        [
            rule(atom("in", "X"), pos("member", "X"), neg("out", "X")),
            rule(atom("out", "X"), pos("member", "X"), neg("in", "X")),
        ]
    )
    db = Database.from_dict({"member": [(i,) for i in range(n)]})
    return program, db
