"""Interchange formats: Graphviz DOT export and JSON (de)serialization."""

from repro.io.dot import ground_graph_dot, program_graph_dot
from repro.io.json_io import (
    SOLUTION_SCHEMA,
    database_from_json,
    database_to_json,
    explanation_to_obj,
    interpretation_to_json,
    program_from_json,
    program_to_json,
    solution_to_json,
    solution_to_obj,
)

__all__ = [
    "SOLUTION_SCHEMA",
    "database_from_json",
    "database_to_json",
    "explanation_to_obj",
    "ground_graph_dot",
    "interpretation_to_json",
    "program_from_json",
    "program_graph_dot",
    "program_to_json",
    "solution_to_json",
    "solution_to_obj",
]
