"""Interchange formats: Graphviz DOT export and JSON (de)serialization."""

from repro.io.dot import ground_graph_dot, program_graph_dot
from repro.io.json_io import (
    database_from_json,
    database_to_json,
    interpretation_to_json,
    program_from_json,
    program_to_json,
)

__all__ = [
    "database_from_json",
    "database_to_json",
    "ground_graph_dot",
    "interpretation_to_json",
    "program_from_json",
    "program_graph_dot",
    "program_to_json",
]
