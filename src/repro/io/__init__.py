"""Interchange formats: binary ground artifacts, Graphviz DOT, and JSON.

* :mod:`repro.io.artifact` — the ``repro-ground/1`` binary artifact
  format (compile-once serving) and the on-disk :class:`ArtifactCache`;
* :mod:`repro.io.dot` — Graphviz export of program and ground graphs;
* :mod:`repro.io.json_io` — JSON (de)serialization of programs,
  databases, models, and ``repro-solution/1`` solutions.
"""

from repro.io.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    GroundArtifact,
    cache_key,
    dump_ground_program,
    load_artifact,
    pool_fingerprint,
    program_fingerprint,
    read_artifact_header,
    save_ground_program,
)
from repro.io.dot import ground_graph_dot, program_graph_dot
from repro.io.json_io import (
    SOLUTION_SCHEMA,
    database_from_json,
    database_to_json,
    explanation_to_obj,
    interpretation_to_json,
    program_from_json,
    program_to_json,
    solution_to_json,
    solution_to_obj,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactCache",
    "GroundArtifact",
    "SOLUTION_SCHEMA",
    "cache_key",
    "database_from_json",
    "database_to_json",
    "dump_ground_program",
    "explanation_to_obj",
    "ground_graph_dot",
    "interpretation_to_json",
    "load_artifact",
    "pool_fingerprint",
    "program_fingerprint",
    "program_from_json",
    "program_graph_dot",
    "program_to_json",
    "read_artifact_header",
    "save_ground_program",
    "solution_to_json",
    "solution_to_obj",
]
