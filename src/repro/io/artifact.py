"""Binary ground artifacts: the ``repro-ground/1`` compile-once format.

Grounding and kernel compilation are the expensive half of the pipeline;
this module makes them a *build step*.  :func:`save_ground_program`
serializes a compiled :class:`~repro.datalog.grounding.GroundProgram` —
the CSR rule arrays emitted by the join-plan grounders, the interned atom
table, and the :class:`~repro.engine.plan.ConstantPool` — as flat binary
blobs (``array`` buffers, no per-atom Python objects), and
:func:`load_artifact` deserializes them back into a ready-to-solve ground
program *without re-grounding*: the kernel's
:class:`~repro.datalog.grounding.GroundIndex` builds straight from the
restored CSR arrays on first access, exactly as it does after a live
grounding.

Byte layout of one artifact (all integers little-endian; see
``docs/serving.md`` for the full specification)::

    offset        size  field
    0             8     magic  b"REPROGND"
    8             4     header length H (uint32)
    12            H     header: UTF-8 JSON (schema, mode, counts,
                        fingerprints, and the section table)
    12 + H        P     payload: the sections' raw bytes, concatenated in
                        section-table order
    12 + H + P    4     CRC-32 of header + payload (uint32)

Sections are ``(name, kind, nbytes)`` triples; ``kind`` is ``"i"``
(int32 ``array``), ``"b"`` (signed-char ``array``), ``"raw"`` (bytes), or
``"json"`` (UTF-8 JSON).  Loading verifies magic, schema version, section
table, and checksum, and raises :class:`~repro.errors.ArtifactError` on
any mismatch — including short reads — so a corrupt cache entry can never
be mistaken for a grounding.

:class:`ArtifactCache` is the on-disk compile cache over this format,
keyed by :func:`cache_key` — (program hash, grounding mode, constant-pool
fingerprint) — the key the :class:`~repro.api.Engine` consults before
grounding when constructed with ``artifact_cache=``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import zlib
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.grounding import (
    GroundIndex,
    GroundProgram,
    GroundingMode,
    _CsrEmitter,
    _DenseAtomTable,
    _InternedAtomTable,
    ground,
)
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.engine.plan import ConstantPool
from repro.errors import ArtifactError
from repro.io.json_io import database_to_json, program_to_json

__all__ = [
    "ARTIFACT_SCHEMA",
    "GroundArtifact",
    "ArtifactCache",
    "dump_ground_program",
    "save_ground_program",
    "load_artifact",
    "read_artifact_deltas",
    "program_fingerprint",
    "pool_fingerprint",
    "cache_key",
]

ARTIFACT_SCHEMA = "repro-ground/1"
_MAGIC = b"REPROGND"
_INT_KIND = "i"
_CSR_NAMES = ("heads", "pos_off", "pos", "neg_off", "neg", "rule_index", "sub_off", "sub")
# The precompiled-kernel sections: every derived GroundIndex array is
# frozen into the artifact, so loading restores a ready-to-solve index
# (GroundIndex.from_arrays) with no transposition work at all.
_INDEX_NAMES = (
    "support",
    "body_len",
    "pos_len",
    "pos_occ_off",
    "pos_occ",
    "neg_occ_off",
    "neg_occ",
    "initial_valued",
    "empty_body_rules",
    "zero_support_atoms",
)


@dataclass(frozen=True)
class GroundArtifact:
    """One loaded artifact: the ground program, its pool, and the header.

    ``ground_program`` is ready to solve — its compiled CSR arrays are
    attached, so ``ground_program.index`` builds without re-grounding.
    ``pool`` is the constant-interning session the arrays are encoded
    against (adopt it before grounding further modes in the same engine).
    ``header`` is the verified artifact header (schema, mode, counts,
    fingerprints), useful for logging and cache bookkeeping.
    """

    ground_program: GroundProgram
    pool: ConstantPool
    header: dict[str, Any]


# ---------------------------------------------------------------------------
# Fingerprints and cache keys
# ---------------------------------------------------------------------------


def program_fingerprint(program: Program, database: Database) -> str:
    """SHA-256 hex digest of the canonical (program, database) JSON forms.

    Stable across processes and Python versions: the JSON serialization
    of :mod:`repro.io.json_io` is deterministic, so equal program/database
    pairs always fingerprint identically.
    """
    digest = hashlib.sha256()
    digest.update(program_to_json(program, indent=None).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(database_to_json(database, indent=None).encode("utf-8"))
    return digest.hexdigest()


def pool_fingerprint(pool: ConstantPool | None) -> str:
    """SHA-256 hex digest of a pool's constants, in interning order.

    Two pools fingerprint equal iff they map every dense id to the same
    constant — the compatibility condition for reusing row encodings.
    ``None`` (and the empty pool) fingerprint as the empty session.
    """
    values = [] if pool is None else [pool.constant(i).value for i in range(len(pool))]
    blob = json.dumps(values, separators=(",", ":"), ensure_ascii=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(
    program: Program,
    database: Database,
    mode: GroundingMode,
    pool: ConstantPool | None = None,
) -> str:
    """The :class:`ArtifactCache` key of one grounding.

    Keys combine the artifact schema version, the grounding ``mode``, the
    (program, database) fingerprint, and the fingerprint of the constant
    pool *as it stands before grounding* — an engine that already interned
    constants for another mode looks up (and stores) under the extended
    session, never colliding with a fresh one.
    """
    parts = "\x00".join(
        (ARTIFACT_SCHEMA, mode, program_fingerprint(program, database), pool_fingerprint(pool))
    )
    return hashlib.sha256(parts.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _array_bytes(arr: array) -> bytes:
    if sys.byteorder == "big":  # pragma: no cover - little-endian containers
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _collect_arrays(gp: GroundProgram, pool: ConstantPool) -> dict[str, array]:
    """The eight CSR rule arrays of ``gp``, emitted or reconstructed.

    Ground programs produced by the compiled grounders carry their
    emitter arrays; hand-built or grown programs are re-encoded from the
    object-level :class:`~repro.datalog.grounding.GroundRule` view
    (substitution constants are interned into ``pool``).
    """
    csr: _CsrEmitter | None = getattr(gp, "_csr", None)
    if csr is not None and len(csr.heads) == len(gp.rules) and csr.n_atoms == len(gp.atoms):
        return {name: getattr(csr, name) for name in _CSR_NAMES}
    out = _CsrEmitter()
    intern = pool.intern
    for gr in gp.rules:
        out.heads.append(gr.head)
        out.pos.extend(gr.pos)
        out.pos_off.append(len(out.pos))
        out.neg.extend(gr.neg)
        out.neg_off.append(len(out.neg))
        out.rule_index.append(gr.rule_index)
        out.sub.extend(intern(c) for c in gr.substitution)
        out.sub_off.append(len(out.sub))
    return {name: getattr(out, name) for name in _CSR_NAMES}


def _atom_table_sections(gp: GroundProgram) -> tuple[str, ConstantPool, dict[str, tuple[str, Any]]]:
    """(layout, pool, sections) for the atom table of ``gp``.

    ``layout`` is ``"interned"`` (explicit predicate/row arrays — the
    joined grounders) or ``"dense"`` (predicate arities only; atom ids are
    arithmetic over universe digits — the full grounder).  Tables that
    grew past their compiled form, and plain object-level tables, are
    re-encoded as ``"interned"`` from their atom objects.
    """
    table = gp.atoms
    if isinstance(table, _ArtifactAtomTable):
        table._ensure_rows()  # re-serialization reads the parent's row lists
    if isinstance(table, _DenseAtomTable) and len(table) == table._dense_count:
        sections: dict[str, tuple[str, Any]] = {
            "pred_arities": ("json", [[p, a] for p, a in zip(table._preds, table._arities)]),
        }
        return "dense", table._pool, sections
    if isinstance(table, _InternedAtomTable) and len(table) == len(table._pred_of):
        pool = table._pool
        pred_of, row_of = table._pred_of, table._row_of
    else:
        pool = ConstantPool(gp.universe)
        pred_of, row_of = [], []
        for i in range(len(table)):
            atom = table.atom(i)
            pred_of.append(atom.predicate)
            row_of.append(tuple(pool.intern(c) for c in atom.args))
    preds = sorted(set(pred_of))
    pred_index = {p: i for i, p in enumerate(preds)}
    row_off = array(_INT_KIND, [0])
    rows = array(_INT_KIND)
    for row in row_of:
        rows.extend(row)
        row_off.append(len(rows))
    sections = {
        "preds": ("json", preds),
        "atom_pred": (_INT_KIND, array(_INT_KIND, (pred_index[p] for p in pred_of))),
        "atom_row_off": (_INT_KIND, row_off),
        "atom_row": (_INT_KIND, rows),
    }
    return "interned", pool, sections


def _program_sections(program: Program, pool: ConstantPool) -> dict[str, tuple[str, Any]]:
    """The source program Π as interned arrays: atoms once, rules by index.

    Atoms are deduplicated (``prog_atoms`` holds each distinct atom once
    as ``pred-index, arity, args...``; an argument encodes a pool
    constant as ``id << 1`` and a variable as ``idx << 1 | 1``), and
    ``prog_rules`` references them as ``n_body, head, (atom << 1 | neg)*``
    — so loading reconstructs each shared object exactly once instead of
    walking a JSON tree per occurrence.
    """
    preds: list[str] = []
    pred_index: dict[str, int] = {}
    variables: list[str] = []
    var_index: dict[str, int] = {}
    atom_index: dict[Atom, int] = {}
    atoms = array(_INT_KIND)
    rules = array(_INT_KIND)
    intern = pool.intern

    def encode_atom(atom: Atom) -> int:
        idx = atom_index.get(atom)
        if idx is None:
            idx = len(atom_index)
            atom_index[atom] = idx
            pi = pred_index.setdefault(atom.predicate, len(preds))
            if pi == len(preds):
                preds.append(atom.predicate)
            atoms.append(pi)
            atoms.append(len(atom.args))
            for term in atom.args:
                if isinstance(term, Variable):
                    vi = var_index.setdefault(term.name, len(variables))
                    if vi == len(variables):
                        variables.append(term.name)
                    atoms.append(vi << 1 | 1)
                else:
                    atoms.append(intern(term) << 1)
        return idx

    for rule_ in program.rules:
        rules.append(len(rule_.body))
        rules.append(encode_atom(rule_.head))
        for lit in rule_.body:
            rules.append(encode_atom(lit.atom) << 1 | (not lit.positive))
    return {
        "prog_preds": ("json", preds),
        "prog_vars": ("json", variables),
        "prog_atoms": (_INT_KIND, atoms),
        "prog_rules": (_INT_KIND, rules),
    }


def _decode_program(sections: "_Sections", pool: ConstantPool) -> Program:
    """Rebuild the source program from its interned sections.

    Validation is skipped on purpose: the payload passed the artifact
    checksum and was encoded from an already-validated ``Program``, so
    the decoder only has to share substructure (pooled constants, one
    object per distinct atom) and raise :class:`ArtifactError` on
    out-of-range indices.
    """
    preds = sections.json("prog_preds")
    variables = [Variable(name) for name in sections.json("prog_vars")]
    flat = sections.ints("prog_atoms")
    # Negative entries would index name tables from the back instead of
    # failing; overflows are caught by the IndexError handler below.  The
    # unsigned view makes this a one-scan check (see _check_ids).
    if len(flat) and max(memoryview(flat).cast("B").cast("I")) >= 1 << 31:
        raise _fail("prog_atoms holds negative entries")
    rule_flat = sections.ints("prog_rules")
    if len(rule_flat) and max(memoryview(rule_flat).cast("B").cast("I")) >= 1 << 31:
        raise _fail("prog_rules holds negative entries")
    constant = pool.constant
    atoms: list[Atom] = []
    try:
        i = 0
        while i < len(flat):
            pred = preds[flat[i]]
            arity = flat[i + 1]
            i += 2
            args = tuple(
                variables[v >> 1] if v & 1 else constant(v >> 1) for v in flat[i : i + arity]
            )
            i += arity
            atoms.append(Atom(pred, args))
        flat = rule_flat
        rules: list[Rule] = []
        i = 0
        while i < len(flat):
            n_body = flat[i]
            head = atoms[flat[i + 1]]
            i += 2
            body = tuple(Literal(atoms[v >> 1], not v & 1) for v in flat[i : i + n_body])
            i += n_body
            rules.append(Rule(head, body))
    except (IndexError, ValueError) as error:
        raise _fail(f"malformed program sections: {error}") from error
    program = Program.__new__(Program)
    object.__setattr__(program, "rules", tuple(rules))
    return program


def _database_sections(database: Database, pool: ConstantPool) -> dict[str, tuple[str, Any]]:
    """The database Δ as interned rows: predicates, offsets, flat pool ids.

    JSON would rebuild 𝒪(|Δ|) atom objects on every load; interned rows
    decode with one pool lookup per value, which is what keeps warm
    starts cheap on fact-heavy workloads.
    """
    preds: list[list[Any]] = []
    row_off = array(_INT_KIND, [0])
    rows = array(_INT_KIND)
    intern = pool.intern
    for pred in sorted(database.predicates()):
        table = sorted(database[pred], key=str)
        preds.append([pred, len(table[0]) if table else 0, len(table)])
        for row in table:
            rows.extend(intern(c) for c in row)
        row_off.append(len(rows))
    return {
        "db_preds": ("json", preds),
        "db_row_off": (_INT_KIND, row_off),
        "db_rows": (_INT_KIND, rows),
    }


def _index_sections(index: GroundIndex) -> dict[str, tuple[str, Any]]:
    """The precompiled kernel arrays of one :class:`GroundIndex`."""
    head_occ_off = array(_INT_KIND, [0])
    head_occ = array(_INT_KIND)
    for rules in index.rules_by_head_t:
        head_occ.extend(rules)
        head_occ_off.append(len(head_occ))
    sections: dict[str, tuple[str, Any]] = {
        name: (_INT_KIND, getattr(index, name)) for name in _INDEX_NAMES
    }
    sections["head_occ_off"] = (_INT_KIND, head_occ_off)
    sections["head_occ"] = (_INT_KIND, head_occ)
    return sections


def dump_ground_program(gp: GroundProgram) -> bytes:
    """Serialize a compiled ground program to ``repro-ground/1`` bytes.

    Accepts any :class:`~repro.datalog.grounding.GroundProgram`; ones
    emitted by the compiled grounders serialize zero-copy from their CSR
    arrays.  The kernel index is compiled (if it was not already) and
    frozen alongside the rule arrays — serialization is the *build step*,
    so loading restores a ready-to-solve index with no recompilation.

    Ground programs that received streaming updates
    (:func:`~repro.datalog.grounding.apply_facts_delta`) are
    *canonicalized* first: the artifact stores a fresh grounding of the
    updated database — live overlay state (ghost atoms, disabled
    instances, the session atom order) never leaks into the wire format —
    and the applied update log rides along as an additive ``deltas``
    section plus a header summary, which pre-delta readers ignore.

    Returns the complete artifact (header, payload, checksum).  Raises
    :class:`~repro.errors.ArtifactError` if the platform's C ``int`` is
    not 32-bit (the format is fixed at int32).
    """
    if array(_INT_KIND).itemsize != 4:  # pragma: no cover - exotic platforms
        raise ArtifactError("repro-ground/1 requires 32-bit array('i') elements")
    delta_log = list(getattr(gp, "_delta_log", None) or ())
    delta_stats = None
    if delta_log:
        session = getattr(gp, "_delta_session", None)
        if session is not None:
            delta_stats = dict(session.stats)
        gp = ground(gp.program, gp.database, mode=gp.mode)
    layout, pool, table_sections = _atom_table_sections(gp)
    arrays = _collect_arrays(gp, pool)
    index = gp.index  # compile now — the artifact freezes the finished kernel view

    sections: dict[str, tuple[str, Any]] = {
        **_program_sections(gp.program, pool),
        **_database_sections(gp.database, pool),
        "pool": ("json", [pool.constant(i).value for i in range(len(pool))]),
        "universe": (_INT_KIND, array(_INT_KIND, (pool.intern(c) for c in gp.universe))),
        **{name: (_INT_KIND, arr) for name, arr in arrays.items()},
        "edb_mask": ("raw", bytes(index.edb_mask)),
        "initial_status": ("b", index.initial_status),
        **_index_sections(index),
        **table_sections,
    }
    if delta_log:
        deltas_obj: dict[str, Any] = {"updates": delta_log}
        if delta_stats is not None:
            deltas_obj["stats"] = delta_stats
        sections["deltas"] = ("json", deltas_obj)

    payload = bytearray()
    section_table: list[list[Any]] = []
    for name, (kind, value) in sections.items():
        if kind == "json":
            blob = json.dumps(value, separators=(",", ":"), ensure_ascii=True).encode("utf-8")
        elif kind == "raw":
            blob = bytes(value)
        else:
            blob = _array_bytes(value)
        section_table.append([name, kind, len(blob)])
        payload.extend(blob)

    header_obj = {
        "schema": ARTIFACT_SCHEMA,
        "mode": gp.mode,
        "atom_table": layout,
        "counts": {
            "atoms": len(gp.atoms),
            "rules": len(gp.rules),
            "constants": len(pool),
            "universe": len(gp.universe),
        },
        "program_fingerprint": program_fingerprint(gp.program, gp.database),
        "pool_fingerprint": pool_fingerprint(pool),
        "sections": section_table,
    }
    if delta_log:
        inserted = sum(len(e["facts"]) for e in delta_log if e["op"] == "insert")
        retracted = sum(len(e["facts"]) for e in delta_log if e["op"] == "retract")
        header_obj["deltas"] = {
            "updates": len(delta_log),
            "facts_inserted": inserted,
            "facts_retracted": retracted,
        }
    header = json.dumps(header_obj, separators=(",", ":"), ensure_ascii=True).encode("utf-8")
    body = _MAGIC + len(header).to_bytes(4, "little") + header + payload
    crc = zlib.crc32(header + bytes(payload)) & 0xFFFFFFFF
    return body + crc.to_bytes(4, "little")


def save_ground_program(gp: GroundProgram, path: str | Path) -> Path:
    """Write :func:`dump_ground_program` atomically to ``path``.

    The artifact is written to a sibling temporary file and renamed into
    place, so a crashed writer never leaves a half-written artifact where
    a reader (or the :class:`ArtifactCache`) would find it.
    """
    target = Path(path)
    blob = dump_ground_program(gp)
    # mkstemp (not a PID-suffixed name) so concurrent savers — including
    # threads of one process racing on the same cache key — never share a
    # temp file; whoever renames last wins with a complete artifact.
    fd, tmp_name = tempfile.mkstemp(prefix=f"{target.name}.tmp.", dir=target.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        Path(tmp_name).replace(target)
    except BaseException:
        Path(tmp_name).unlink(missing_ok=True)
        raise
    return target


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------


def _fail(message: str) -> ArtifactError:
    return ArtifactError(f"repro-ground artifact: {message}")


def _check_ids(values: array, bound: int, what: str) -> None:
    """Bounds-check an id array in one scan.

    Viewing the int32 buffer as unsigned maps negative entries onto huge
    values, so a single ``max`` catches both underflow and overflow —
    these checks run on every artifact load, where per-element genexprs
    would eat the warm-start budget.
    """
    if len(values) and max(memoryview(values).cast("B").cast("I")) >= bound:
        raise _fail(f"{what} reference ids outside their table (bound {bound})")


def _restore_pool(values: list[Any]) -> ConstantPool:
    """Bulk-build a :class:`ConstantPool` in stored interning order."""
    constants = [Constant(v) for v in values]
    pool = ConstantPool()
    pool._constants = constants
    pool._ids = {c: i for i, c in enumerate(constants)}
    if len(pool._ids) != len(constants):
        raise _fail("pool holds duplicate constants")
    return pool


class _ArtifactAtomTable(_InternedAtomTable):
    """Interned atom table decoding lazily from the artifact's flat arrays.

    Warm starts never pay for atom objects they do not look at: ``atom``
    decodes (and caches) single entries straight from the flat arrays,
    and the predicate/row lookup structures of the parent class are built
    on the first reverse lookup (``get``/``id_of``/``atoms``) only.
    """

    def __init__(
        self,
        pool: ConstantPool,
        preds: list[str],
        atom_pred: array,
        row_off: array,
        rows: array,
    ) -> None:
        self._pool = pool
        self._apreds = preds
        self._atom_pred = atom_pred
        self._arow_off = row_off
        self._arows = rows
        self._cache: dict[int, Atom] = {}
        self._eager = False
        self._built = False

    def _ensure_rows(self) -> None:
        if not self._built:
            preds, atom_pred = self._apreds, self._atom_pred
            row_off, rows = self._arow_off, self._arows
            self._pred_of = [preds[p] for p in atom_pred]
            self._row_of = [
                tuple(rows[row_off[i] : row_off[i + 1]]) for i in range(len(atom_pred))
            ]
            ids_by_pred: dict[str, dict[tuple[int, ...], int]] = {}
            for i, (pred, row) in enumerate(zip(self._pred_of, self._row_of)):
                ids_by_pred.setdefault(pred, {})[row] = i
            self._ids_by_pred = ids_by_pred
            self._built = True

    def get(self, atom: Atom) -> int | None:
        self._ensure_rows()
        return super().get(atom)

    def id_of(self, atom: Atom) -> int:
        self._ensure_rows()
        return super().id_of(atom)

    def atom(self, index: int) -> Atom:
        if self._eager:
            return self._atoms[index]
        cached = self._cache.get(index)
        if cached is None:
            row_off = self._arow_off
            constant = self._pool.constant
            cached = Atom(
                self._apreds[self._atom_pred[index]],
                tuple(constant(v) for v in self._arows[row_off[index] : row_off[index + 1]]),
            )
            self._cache[index] = cached
        return cached

    def __len__(self) -> int:
        return len(self._atoms) if self._eager else len(self._atom_pred)

    def __contains__(self, atom: Atom) -> bool:
        return self.get(atom) is not None

    def atoms(self) -> tuple[Atom, ...]:
        self._ensure_rows()
        return super().atoms()


class _Sections:
    """Typed access to the verified payload sections of one artifact."""

    def __init__(self, table: list[list[Any]], payload: bytes) -> None:
        self._views: dict[str, tuple[str, bytes]] = {}
        offset = 0
        for name, kind, nbytes in table:  # entries validated by _verify_container
            self._views[name] = (kind, payload[offset : offset + nbytes])
            offset += nbytes
        if offset != len(payload):
            raise _fail("section table does not cover the payload")

    def _get(self, name: str, kind: str) -> bytes:
        entry = self._views.get(name)
        if entry is None:
            raise _fail(f"missing section {name!r}")
        if entry[0] != kind:
            raise _fail(f"section {name!r} has kind {entry[0]!r}, expected {kind!r}")
        return entry[1]

    def json(self, name: str) -> Any:
        try:
            return json.loads(self._get(name, "json").decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _fail(f"section {name!r} holds invalid JSON: {error}") from error

    def ints(self, name: str) -> array:
        blob = self._get(name, _INT_KIND)
        if len(blob) % 4:
            raise _fail(f"section {name!r} is not a whole number of int32s")
        arr = array(_INT_KIND)
        arr.frombytes(blob)
        if sys.byteorder == "big":  # pragma: no cover - little-endian containers
            arr.byteswap()
        return arr

    def chars(self, name: str) -> array:
        arr = array("b")
        arr.frombytes(self._get(name, "b"))
        return arr

    def raw(self, name: str) -> bytes:
        return self._get(name, "raw")


def _verify_container(data: bytes) -> tuple[dict[str, Any], _Sections]:
    """Check magic, schema, framing, and checksum; split into sections."""
    if len(data) < len(_MAGIC) + 4:
        raise _fail(f"short read: {len(data)} bytes is smaller than any artifact")
    if data[: len(_MAGIC)] != _MAGIC:
        raise _fail("bad magic (not a repro-ground artifact)")
    header_len = int.from_bytes(data[8:12], "little")
    if len(data) < 12 + header_len + 4:
        raise _fail("short read: truncated header")
    header_blob = data[12 : 12 + header_len]
    try:
        header = json.loads(header_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _fail(f"invalid header JSON: {error}") from error
    schema = header.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise _fail(
            f"version mismatch: artifact is {schema!r}, this reader speaks {ARTIFACT_SCHEMA!r}"
        )
    table = header.get("sections")
    if not isinstance(table, list):
        raise _fail("header carries no section table")
    for entry in table:
        if not (
            isinstance(entry, list)
            and len(entry) == 3
            and isinstance(entry[0], str)
            and isinstance(entry[1], str)
            and isinstance(entry[2], int)
            and not isinstance(entry[2], bool)
            and entry[2] >= 0
        ):
            raise _fail(f"malformed section table entry {entry!r}")
    payload_len = sum(entry[2] for entry in table)
    expected = 12 + header_len + payload_len + 4
    if len(data) < expected:
        raise _fail(f"short read: {len(data)} bytes, section table promises {expected}")
    if len(data) > expected:
        raise _fail(f"trailing garbage: {len(data) - expected} bytes past the checksum")
    payload = data[12 + header_len : expected - 4]
    stored_crc = int.from_bytes(data[expected - 4 : expected], "little")
    actual_crc = zlib.crc32(header_blob + payload) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise _fail(f"checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}")
    return header, _Sections(table, payload)


def _check_counts(header: dict[str, Any], sections: _Sections) -> tuple[int, int]:
    counts = header.get("counts") or {}
    n_atoms, n_rules = counts.get("atoms"), counts.get("rules")
    if not isinstance(n_atoms, int) or not isinstance(n_rules, int):
        raise _fail("header counts are missing or malformed")
    heads = sections.ints("heads")
    if len(heads) != n_rules:
        raise _fail(f"heads section has {len(heads)} rules, header promises {n_rules}")
    for name in ("pos_off", "neg_off", "sub_off"):
        off = sections.ints(name)
        if len(off) != n_rules + 1 or (len(off) and off[0] != 0):
            raise _fail(f"{name} is not a valid offset array for {n_rules} rules")
    for name in ("pos_occ_off", "neg_occ_off", "head_occ_off"):
        off = sections.ints(name)
        if len(off) != n_atoms + 1 or (len(off) and off[0] != 0):
            raise _fail(f"{name} is not a valid offset array for {n_atoms} atoms")
    for name, expected in (("support", n_atoms), ("body_len", n_rules), ("pos_len", n_rules)):
        if len(sections.ints(name)) != expected:
            raise _fail(f"{name} length disagrees with the header counts")
    if len(sections.chars("initial_status")) != n_atoms:
        raise _fail("initial_status length disagrees with the atom count")
    if len(sections.raw("edb_mask")) != n_atoms:
        raise _fail("edb_mask length disagrees with the atom count")
    # Every id array must stay inside its table: Python's negative
    # indexing would otherwise turn a CRC-valid but inconsistent artifact
    # into silently wrong reads instead of an ArtifactError.
    for name in ("pos", "neg", "initial_valued", "zero_support_atoms"):
        _check_ids(sections.ints(name), n_atoms, name)
    for name in ("pos_occ", "neg_occ", "head_occ", "empty_body_rules"):
        _check_ids(sections.ints(name), n_rules, name)
    return n_atoms, n_rules


def read_artifact_header(source: bytes | str | Path) -> dict[str, Any]:
    """The verified header of one artifact, without decoding any section.

    Runs the full container verification (magic, schema, framing,
    checksum) but constructs no Python objects from the payload — the
    cheap way to inspect ``mode``, ``counts``, and the fingerprints
    before deciding to load.  Raises like :func:`load_artifact`.
    """
    data = Path(source).read_bytes() if isinstance(source, (str, Path)) else bytes(source)
    header, _ = _verify_container(data)
    return header


def read_artifact_deltas(source: bytes | str | Path) -> dict[str, Any] | None:
    """The streaming-update provenance of one artifact, or ``None``.

    Artifacts dumped from a ground program that received streaming
    updates carry an additive ``deltas`` section (the applied update log
    as ``{"op", "facts"}`` entries, plus session statistics when the
    relevant-mode delta session produced them).  Returns that decoded
    section, or ``None`` for artifacts serialized without updates.
    Raises like :func:`load_artifact` on a corrupt container.
    """
    data = Path(source).read_bytes() if isinstance(source, (str, Path)) else bytes(source)
    _, sections = _verify_container(data)
    if "deltas" not in sections._views:
        return None
    return sections.json("deltas")


def load_artifact(source: bytes | str | Path) -> GroundArtifact:
    """Load and verify one ``repro-ground/1`` artifact.

    ``source`` is a path or the raw artifact bytes.  Returns a
    :class:`GroundArtifact` whose ground program is ready to solve: its
    atom table decodes lazily from the restored arrays and its
    ``GroundProgram.index`` compiles from the restored CSR — the pipeline
    never re-parses, re-grounds, or re-interns.

    Raises :class:`~repro.errors.ArtifactError` on bad magic, schema
    version mismatch, truncation, checksum failure, or any structural
    inconsistency between the header and the payload; raises ``OSError``
    if a path cannot be read.
    """
    data = Path(source).read_bytes() if isinstance(source, (str, Path)) else bytes(source)
    header, sections = _verify_container(data)
    n_atoms, n_rules = _check_counts(header, sections)

    pool = _restore_pool(sections.json("pool"))
    program = _decode_program(sections, pool)

    db_row_off = sections.ints("db_row_off")
    db_rows = sections.ints("db_rows")
    db_preds = sections.json("db_preds")
    if len(db_row_off) != len(db_preds) + 1:
        raise _fail("db_row_off is not a valid offset array for the database predicates")
    _check_ids(db_rows, len(pool), "database rows")
    relations: dict[str, set[tuple[Constant, ...]]] = {}
    constant = pool.constant
    for i, (pred, arity, count) in enumerate(db_preds):
        start, stop = db_row_off[i], db_row_off[i + 1]
        if stop - start != arity * count:
            raise _fail(f"database rows of {pred!r} disagree with their declared shape")
        flat = [constant(v) for v in db_rows[start:stop]]
        relations[pred] = {
            tuple(flat[r * arity : (r + 1) * arity]) for r in range(count)
        }
    database = Database(relations)
    universe_ids = sections.ints("universe")
    _check_ids(universe_ids, len(pool), "universe entries")
    universe = tuple(pool.constant(v) for v in universe_ids)

    layout = header.get("atom_table")
    if layout == "dense":
        pred_arities = [(str(p), int(a)) for p, a in sections.json("pred_arities")]
        table = _DenseAtomTable(pool, universe, pred_arities)
        if len(table) != n_atoms:
            raise _fail("dense atom table size disagrees with the atom count")
    elif layout == "interned":
        preds = sections.json("preds")
        atom_pred = sections.ints("atom_pred")
        row_off = sections.ints("atom_row_off")
        rows = sections.ints("atom_row")
        if len(atom_pred) != n_atoms or len(row_off) != n_atoms + 1:
            raise _fail("interned atom table sections disagree with the atom count")
        _check_ids(atom_pred, len(preds), "atom predicates")
        table = _ArtifactAtomTable(pool, preds, atom_pred, row_off, rows)
    else:
        raise _fail(f"unknown atom table layout {layout!r}")

    gp = GroundProgram(program, database, universe, header["mode"], table)
    out = _CsrEmitter()
    for name in _CSR_NAMES:
        setattr(out, name, sections.ints(name))
    _check_ids(out.heads, n_atoms, "rule heads")
    _check_ids(out.sub, len(pool), "substitutions")
    edb_mask = bytearray(sections.raw("edb_mask"))
    initial_status = sections.chars("initial_status")
    out.finish(gp, n_atoms, edb_mask, initial_status, pool)
    # Restore the precompiled kernel view: the transpositions, counters,
    # and worklist seeds come straight off the wire (GroundIndex.from_arrays
    # never touches the rules), making the artifact solve-ready on return.
    index = GroundIndex.from_arrays(
        n_atoms,
        out.heads,
        out.pos_off,
        out.pos,
        out.neg_off,
        out.neg,
        edb_mask,
        initial_status,
        **{name: sections.ints(name) for name in _INDEX_NAMES},
        head_occ_off=sections.ints("head_occ_off"),
        head_occ=sections.ints("head_occ"),
    )
    object.__setattr__(gp, "_index_cache", index)
    return GroundArtifact(ground_program=gp, pool=pool, header=header)


# ---------------------------------------------------------------------------
# The on-disk compile cache
# ---------------------------------------------------------------------------


class ArtifactCache:
    """A directory of ground artifacts keyed by :func:`cache_key`.

    The cache is content-addressed: one file per (program hash, grounding
    mode, pool fingerprint) triple, written atomically.  Corrupt or
    unreadable entries behave as misses (and are evicted best-effort), so
    a torn write can only ever cost a re-grounding, never a wrong answer.
    """

    def __init__(self, root: str | Path) -> None:
        """Create the cache over ``root``, creating the directory if needed."""
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """The artifact path of one cache ``key``."""
        return self.root / f"{key}.repro-ground"

    def get(self, key: str) -> GroundArtifact | None:
        """The cached artifact under ``key``, or ``None`` on miss.

        A present-but-invalid entry (truncated, corrupted, or written by
        an incompatible format version) is treated as a miss and removed;
        an unreadable or concurrently evicted entry is simply a miss.
        """
        path = self.path_for(key)
        try:
            return load_artifact(path)
        except ArtifactError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                pass
            return None
        except OSError:
            return None

    def put(self, key: str, gp: GroundProgram) -> Path:
        """Serialize ``gp`` under ``key``; returns the artifact path."""
        return save_ground_program(gp, self.path_for(key))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.repro-ground"))

    def __repr__(self) -> str:
        return f"ArtifactCache({str(self.root)!r}, entries={len(self)})"
