"""JSON (de)serialization of programs, databases, and models.

The JSON shape is deliberately simple and stable:

* term: ``{"var": "X"}`` or ``{"const": "a"}`` / ``{"const": 3}``;
* atom: ``{"predicate": "p", "args": [term, ...]}``;
* literal: ``{"atom": atom, "positive": bool}``;
* rule: ``{"head": atom, "body": [literal, ...]}``;
* program: ``{"rules": [rule, ...]}``;
* database: ``{"facts": [atom, ...]}``;
* model: ``{"true": [atom...], "false": [atom...], "undefined": [atom...]}``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Term, Variable
from repro.errors import ValidationError
from repro.ground.model import Interpretation

__all__ = [
    "program_to_json",
    "program_from_json",
    "database_to_json",
    "database_from_json",
    "interpretation_to_json",
]


def _term_to_obj(term: Term) -> dict[str, Any]:
    if isinstance(term, Variable):
        return {"var": term.name}
    return {"const": term.value}


def _term_from_obj(obj: dict[str, Any]) -> Term:
    if "var" in obj:
        return Variable(obj["var"])
    if "const" in obj:
        return Constant(obj["const"])
    raise ValidationError(f"not a term object: {obj!r}")


def _atom_to_obj(atom: Atom) -> dict[str, Any]:
    return {"predicate": atom.predicate, "args": [_term_to_obj(t) for t in atom.args]}


def _atom_from_obj(obj: dict[str, Any]) -> Atom:
    return Atom(obj["predicate"], tuple(_term_from_obj(t) for t in obj.get("args", ())))


def program_to_json(program: Program, *, indent: int | None = 2) -> str:
    """Serialize a program to a JSON string."""
    payload = {
        "rules": [
            {
                "head": _atom_to_obj(rule.head),
                "body": [
                    {"atom": _atom_to_obj(lit.atom), "positive": lit.positive}
                    for lit in rule.body
                ],
            }
            for rule in program.rules
        ]
    }
    return json.dumps(payload, indent=indent)


def program_from_json(text: str) -> Program:
    """Parse a program from its JSON serialization (round-trips exactly).

    >>> from repro.datalog.parser import parse_program
    >>> prog = parse_program("win(X) :- move(X, Y), not win(Y).")
    >>> program_from_json(program_to_json(prog)) == prog
    True
    """
    payload = json.loads(text)
    rules = []
    for obj in payload["rules"]:
        head = _atom_from_obj(obj["head"])
        body = tuple(
            Literal(_atom_from_obj(lit["atom"]), bool(lit["positive"]))
            for lit in obj.get("body", ())
        )
        rules.append(Rule(head, body))
    return Program(rules)


def database_to_json(database: Database, *, indent: int | None = 2) -> str:
    """Serialize a database to a JSON string."""
    payload = {"facts": [_atom_to_obj(a) for a in database.atoms()]}
    return json.dumps(payload, indent=indent)


def database_from_json(text: str) -> Database:
    """Parse a database from its JSON serialization."""
    payload = json.loads(text)
    db = Database()
    for obj in payload["facts"]:
        db.add_atom(_atom_from_obj(obj))
    return db


def interpretation_to_json(model: Interpretation, *, indent: int | None = 2) -> str:
    """Serialize a (possibly partial) model's three value classes."""
    payload = {
        "true": [_atom_to_obj(a) for a in model.true_atoms()],
        "false": [_atom_to_obj(a) for a in model.false_atoms()],
        "undefined": [_atom_to_obj(a) for a in model.undefined_atoms()],
        "total": model.is_total,
    }
    return json.dumps(payload, indent=indent)
