"""JSON (de)serialization of programs, databases, and models.

The JSON shape is deliberately simple and stable:

* term: ``{"var": "X"}`` or ``{"const": "a"}`` / ``{"const": 3}``;
* atom: ``{"predicate": "p", "args": [term, ...]}``;
* literal: ``{"atom": atom, "positive": bool}``;
* rule: ``{"head": atom, "body": [literal, ...]}``;
* program: ``{"rules": [rule, ...]}``;
* database: ``{"facts": [atom, ...]}``;
* model: ``{"true": [atom...], "false": [atom...], "undefined": [atom...]}``;
* solution: the unified ``repro-solution/1`` schema every
  :class:`repro.api.Solution` serializes to (see :func:`solution_to_obj`).

Atom lists are sorted by their text form, so serializations are
deterministic and diffable (the CLI golden tests rely on this).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Term, Variable
from repro.errors import ValidationError
from repro.ground.model import Interpretation

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.api.solution import Solution
    from repro.ground.explain import Explanation

SOLUTION_SCHEMA = "repro-solution/1"

__all__ = [
    "SOLUTION_SCHEMA",
    "program_to_json",
    "program_from_json",
    "database_to_json",
    "database_from_json",
    "interpretation_to_json",
    "solution_to_obj",
    "solution_to_json",
    "solution_to_jsonl_chunks",
    "result_to_json_chunks",
    "explanation_to_obj",
]


def _term_to_obj(term: Term) -> dict[str, Any]:
    if isinstance(term, Variable):
        return {"var": term.name}
    return {"const": term.value}


def _term_from_obj(obj: dict[str, Any]) -> Term:
    if "var" in obj:
        return Variable(obj["var"])
    if "const" in obj:
        return Constant(obj["const"])
    raise ValidationError(f"not a term object: {obj!r}")


def _atom_to_obj(atom: Atom) -> dict[str, Any]:
    return {"predicate": atom.predicate, "args": [_term_to_obj(t) for t in atom.args]}


def _atom_from_obj(obj: dict[str, Any]) -> Atom:
    return Atom(obj["predicate"], tuple(_term_from_obj(t) for t in obj.get("args", ())))


def program_to_json(program: Program, *, indent: int | None = 2) -> str:
    """Serialize a program to a JSON string."""
    payload = {
        "rules": [
            {
                "head": _atom_to_obj(rule.head),
                "body": [
                    {"atom": _atom_to_obj(lit.atom), "positive": lit.positive}
                    for lit in rule.body
                ],
            }
            for rule in program.rules
        ]
    }
    return json.dumps(payload, indent=indent)


def program_from_json(text: str) -> Program:
    """Parse a program from its JSON serialization (round-trips exactly).

    Raises :class:`~repro.errors.ValidationError` for malformed term
    objects and ``json.JSONDecodeError`` for invalid JSON.

    >>> from repro.datalog.parser import parse_program
    >>> prog = parse_program("win(X) :- move(X, Y), not win(Y).")
    >>> program_from_json(program_to_json(prog)) == prog
    True
    """
    payload = json.loads(text)
    rules = []
    for obj in payload["rules"]:
        head = _atom_from_obj(obj["head"])
        body = tuple(
            Literal(_atom_from_obj(lit["atom"]), bool(lit["positive"]))
            for lit in obj.get("body", ())
        )
        rules.append(Rule(head, body))
    return Program(rules)


def database_to_json(database: Database, *, indent: int | None = 2) -> str:
    """Serialize a database to a JSON string."""
    payload = {"facts": [_atom_to_obj(a) for a in database.atoms()]}
    return json.dumps(payload, indent=indent)


def database_from_json(text: str) -> Database:
    """Parse a database from its JSON serialization.

    Raises :class:`~repro.errors.ValidationError` for malformed term
    objects or non-ground facts, ``json.JSONDecodeError`` for invalid
    JSON.
    """
    payload = json.loads(text)
    db = Database()
    for obj in payload["facts"]:
        db.add_atom(_atom_from_obj(obj))
    return db


def interpretation_to_json(model: Interpretation, *, indent: int | None = 2) -> str:
    """Serialize a (possibly partial) model's three value classes."""
    payload = {
        "true": [_atom_to_obj(a) for a in model.true_atoms()],
        "false": [_atom_to_obj(a) for a in model.false_atoms()],
        "undefined": [_atom_to_obj(a) for a in model.undefined_atoms()],
        "total": model.is_total,
    }
    return json.dumps(payload, indent=indent)


def _sorted_atoms(atoms: Iterable[Atom]) -> list[str]:
    return sorted(str(a) for a in atoms)


def solution_to_obj(solution: "Solution") -> dict[str, Any]:
    """The ``repro-solution/1`` JSON object of one :class:`repro.api.Solution`.

    ``model.false`` is ``null`` for closed-world results (stratified /
    stable / completion / modular): everything not listed true or undefined
    is false.  ``timings`` are wall-clock seconds and therefore the only
    nondeterministic part of the payload.
    """
    ties = None
    if solution.choices or solution.policy is not None:
        ties = {
            "policy": solution.policy,
            "free_choices": solution.free_choice_count,
            "choices": [
                {
                    "made_true": _sorted_atoms(choice.made_true),
                    "made_false": _sorted_atoms(choice.made_false),
                    "forced": choice.forced,
                }
                for choice in solution.choices
            ],
        }
    false_atoms = None if solution.false_atoms is None else _sorted_atoms(solution.false_atoms)
    return {
        "schema": SOLUTION_SCHEMA,
        "semantics": solution.semantics,
        "found": solution.found,
        "total": solution.total,
        "grounding": solution.grounding,
        "model": {
            "true": _sorted_atoms(solution.true_atoms),
            "false": false_atoms,
            "undefined": _sorted_atoms(solution.undefined_atoms),
        },
        "counts": {
            "true": len(solution.true_atoms),
            "false": None if false_atoms is None else len(false_atoms),
            "undefined": len(solution.undefined_atoms),
        },
        "ties": ties,
        "iterations": solution.iterations,
        "timings": dict(solution.timings),
    }


def solution_to_json(solution: "Solution", *, indent: int | None = 2) -> str:
    """JSON text of :func:`solution_to_obj`."""
    return json.dumps(solution_to_obj(solution), indent=indent)


# ---------------------------------------------------------------------------
# Streaming encoder.  Emits the exact bytes json.dumps would produce for the
# buffered object, as an iterator of text chunks — but for model-backed
# solutions the atom lists are decoded *straight from the kernel's status
# ids* through the lazy atom table: no frozenset of Atom objects and no
# whole-document buffer is ever built.  The buffered path
# (solution_to_obj + json.dumps) is the differential oracle; the property
# suite asserts byte equality on every family × semantics.
# ---------------------------------------------------------------------------


class _ModelAtomList:
    """A ``repro-solution/1`` model list, decoded from ids at encode time."""

    __slots__ = ("solution", "which")

    def __init__(self, solution: "Solution", which: int) -> None:
        self.solution = solution
        self.which = which

    def strings(self) -> list[str]:
        return self.solution._sorted_strings(self.which)


def _json_key(key: Any) -> str:
    # Stdlib key coercion: strings pass through, scalars render as JSON.
    return key if isinstance(key, str) else json.dumps(key)


def _is_plain(value: Any, special: tuple[type, ...]) -> bool:
    """True when a subtree holds no lazily-decoded objects, so the whole
    subtree can be delegated to ``json.dumps`` in one C-speed chunk."""
    stack = [value]
    while stack:
        v = stack.pop()
        if isinstance(v, special):
            return False
        if isinstance(v, dict):
            stack.extend(v.values())
        elif isinstance(v, (list, tuple)):
            stack.extend(v)
    return True


def _encode_chunks(
    value: Any, indent: int | None, sort_keys: bool, level: int
) -> Iterable[str]:
    from repro.api.solution import Solution

    if isinstance(value, Solution):
        yield from _encode_chunks(_solution_stream_obj(value), indent, sort_keys, level)
        return
    if isinstance(value, (dict, list, tuple)) and _is_plain(
        value, (Solution, _ModelAtomList)
    ):
        # No lazy objects below: one stdlib encode, re-padded to this
        # nesting level (raw newlines only ever come from indentation —
        # string content escapes them as ``\n``).
        text = json.dumps(value, indent=indent, sort_keys=sort_keys)
        if indent is not None and level:
            text = text.replace("\n", "\n" + " " * (indent * level))
        yield text
        return
    if isinstance(value, _ModelAtomList):
        strings = value.strings()
        if not strings:
            yield "[]"
            return
        if indent is None:
            open_pad, item_sep, close_pad = "", ", ", ""
        else:
            open_pad = "\n" + " " * (indent * (level + 1))
            item_sep = "," + open_pad
            close_pad = "\n" + " " * (indent * level)
        yield "[" + open_pad
        # Model lists dominate the document; emit them in fixed-size
        # slabs (bounded chunks, so still streaming) instead of one
        # generator frame per atom.
        encode = json.dumps
        for start in range(0, len(strings), 1024):
            slab = item_sep.join(map(encode, strings[start : start + 1024]))
            yield slab if start == 0 else item_sep + slab
        yield close_pad + "]"
        return
    if isinstance(value, dict):
        if not value:
            yield "{}"
            return
        if indent is None:
            open_pad, item_sep, close_pad = "", ", ", ""
        else:
            open_pad = "\n" + " " * (indent * (level + 1))
            item_sep = "," + open_pad
            close_pad = "\n" + " " * (indent * level)
        keys = sorted(value) if sort_keys else list(value)
        yield "{" + open_pad
        for position, key in enumerate(keys):
            if position:
                yield item_sep
            yield json.dumps(_json_key(key)) + ": "
            yield from _encode_chunks(value[key], indent, sort_keys, level + 1)
        yield close_pad + "}"
        return
    if isinstance(value, (list, tuple)):
        if not value:
            yield "[]"
            return
        if indent is None:
            open_pad, item_sep, close_pad = "", ", ", ""
        else:
            open_pad = "\n" + " " * (indent * (level + 1))
            item_sep = "," + open_pad
            close_pad = "\n" + " " * (indent * level)
        yield "[" + open_pad
        for position, item in enumerate(value):
            if position:
                yield item_sep
            yield from _encode_chunks(item, indent, sort_keys, level + 1)
        yield close_pad + "]"
        return
    yield json.dumps(value)


def _solution_stream_obj(solution: "Solution") -> dict[str, Any]:
    """The ``repro-solution/1`` skeleton with id-decoded lazy model lists."""
    ties = None
    if solution.choices or solution.policy is not None:
        ties = {
            "policy": solution.policy,
            "free_choices": solution.free_choice_count,
            "choices": [
                {
                    "made_true": _sorted_atoms(choice.made_true),
                    "made_false": _sorted_atoms(choice.made_false),
                    "forced": choice.forced,
                }
                for choice in solution.choices
            ],
        }
    true_count, false_count, undefined_count = solution.counts()
    closed_world = solution.model is None and solution.false_atoms is None
    return {
        "schema": SOLUTION_SCHEMA,
        "semantics": solution.semantics,
        "found": solution.found,
        "total": solution.total,
        "grounding": solution.grounding,
        "model": {
            "true": _ModelAtomList(solution, 0),
            "false": None if closed_world else _ModelAtomList(solution, 1),
            "undefined": _ModelAtomList(solution, 2),
        },
        "counts": {
            "true": true_count,
            "false": false_count,
            "undefined": undefined_count,
        },
        "ties": ties,
        "iterations": solution.iterations,
        "timings": dict(solution.timings),
    }


def solution_to_jsonl_chunks(
    solution: "Solution", *, indent: int | None = None, sort_keys: bool = False
) -> Iterator[str]:
    """Stream one solution's ``repro-solution/1`` JSON as text chunks.

    Joining the chunks yields exactly
    ``json.dumps(solution_to_obj(solution), indent=indent,
    sort_keys=sort_keys)`` — but the model's atom lists are decoded
    incrementally from the kernel's status ids (the ``timings`` snapshot
    is taken up front, so ``result_s`` booked *by this encode* lands in
    the solution's live timings, not the emitted document).  No trailing
    newline is emitted; JSONL writers append their own.
    """
    return iter(_encode_chunks(solution, indent, sort_keys, 0))


def result_to_json_chunks(
    result: Any, *, indent: int | None = None, sort_keys: bool = False
) -> Iterator[str]:
    """Stream any JSON-shaped object, encoding embedded live ``Solution``
    values as their ``repro-solution/1`` objects via the id-native path.

    The serving tier (``repro serve`` / ``repro server``) keeps the live
    :class:`~repro.api.Solution` inside its result dicts and only decodes
    here, at write time — one pass from ids to wire bytes.
    """
    return iter(_encode_chunks(result, indent, sort_keys, 0))


def explanation_to_obj(explanation: "Explanation") -> dict[str, Any]:
    """A provenance tree (:func:`repro.ground.explain.explain`) as JSON."""
    obj: dict[str, Any] = {
        "atom": str(explanation.atom),
        "value": explanation.value,
        "kind": explanation.kind,
    }
    if explanation.detail:
        obj["detail"] = explanation.detail
    if explanation.rule is not None:
        obj["rule"] = explanation.rule
    if explanation.premises:
        obj["premises"] = [explanation_to_obj(p) for p in explanation.premises]
    return obj
