"""Graphviz DOT export for program graphs and ground graphs.

Solid edges are positive, dashed are negative.  Ground-graph exports draw
atom nodes as ellipses and rule nodes as boxes, optionally coloured by a
model's truth values (green true, red false, grey undefined) — handy for
inspecting why an interpreter stalled.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.program_graph import program_graph
from repro.datalog.grounding import GroundProgram
from repro.datalog.program import Program
from repro.ground.model import FALSE, TRUE, Interpretation

__all__ = ["program_graph_dot", "ground_graph_dot"]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def program_graph_dot(program: Program) -> str:
    """DOT source of G(Π).

    >>> from repro.datalog.parser import parse_program
    >>> 'style=dashed' in program_graph_dot(parse_program("p :- not q."))
    True
    """
    graph = program_graph(program)
    lines = ["digraph program_graph {", "  rankdir=LR;"]
    for node in graph.nodes:
        lines.append(f"  {_quote(node)};")
    for edge in graph.edges():
        style = "" if edge.positive else " [style=dashed, color=red]"
        lines.append(f"  {_quote(edge.source)} -> {_quote(edge.target)}{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def ground_graph_dot(
    ground_program: GroundProgram,
    model: Optional[Interpretation] = None,
) -> str:
    """DOT source of the ground graph G(Π, Δ).

    ``ground_program`` supplies the atom and rule-instance nodes; with a
    ``model`` given, atom nodes are filled by truth value (green true,
    red false, grey undefined).  Returns the DOT text, one node per
    ground atom (ellipse) and rule instance (box).
    """
    gp = ground_program
    lines = ["digraph ground_graph {", "  rankdir=LR;"]

    def colour(index: int) -> str:
        if model is None:
            return ""
        status = model.status[index]
        if status == TRUE:
            return ', style=filled, fillcolor="palegreen"'
        if status == FALSE:
            return ', style=filled, fillcolor="lightcoral"'
        return ', style=filled, fillcolor="lightgray"'

    for index in range(gp.atom_count):
        label = _quote(str(gp.atoms.atom(index)))
        lines.append(f"  atom{index} [label={label}{colour(index)}];")
    for r_index, gr in enumerate(gp.rules):
        label = _quote(f"r{gr.rule_index}({', '.join(str(c) for c in gr.substitution)})")
        lines.append(f"  rule{r_index} [label={label}, shape=box];")
        lines.append(f"  rule{r_index} -> atom{gr.head};")
        for a in gr.pos:
            lines.append(f"  atom{a} -> rule{r_index};")
        for a in gr.neg:
            lines.append(f"  atom{a} -> rule{r_index} [style=dashed, color=red];")
    lines.append("}")
    return "\n".join(lines) + "\n"
