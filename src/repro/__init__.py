"""repro — Tie-Breaking Semantics and Structural Totality.

A complete, from-scratch implementation of Papadimitriou & Yannakakis,
*"Tie-Breaking Semantics and Structural Totality"* (PODS 1992 / JCSS 54,
1997): Datalog with negation, the ground graph and ``close`` machinery, the
well-founded and (pure / well-founded) tie-breaking interpreters, structural
totality analysis, and every reduction in the paper.

Quick start::

    from repro import Engine

    engine = Engine(
        "win(X) :- move(X, Y), not win(Y).",
        "move(1, 2). move(2, 1).",
    )
    assert not engine.solve("well_founded").total   # the draw cycle stays open
    assert engine.solve("tie_breaking").total       # ... until a tie-break
    assert engine.ground_calls == 1                 # one compile served both

See README.md for a tour and DESIGN.md for the module map.  The
per-semantics free functions (``well_founded_model`` & co) are deprecated
shims over :mod:`repro.api`.
"""

from repro.analysis import (
    classify_program,
    is_call_consistent,
    is_structurally_nonuniformly_total,
    is_structurally_total,
    odd_cycle_in_program_graph,
    program_graph,
    reduced_program,
    structural_report,
    useless_predicates,
)
from repro.datalog import (
    Atom,
    Constant,
    Database,
    Literal,
    Program,
    Rule,
    Variable,
    atom,
    is_alphabetic_variant,
    neg,
    parse_database,
    parse_program,
    pos,
    rule,
    skeleton_of,
)
from repro.api import Engine, Solution, available_semantics, enumerate_solutions, solve
from repro.datalog.grounding import ground
from repro.semantics import (
    enumerate_fixpoints,
    enumerate_stable_models,
    enumerate_tie_breaking_models,
    fitting_model,
    has_fixpoint,
    has_stable_model,
    is_fixpoint,
    is_stable_model,
    is_stratified,
    perfect_model,
    pure_tie_breaking,
    stratified_model,
    well_founded_model,
    well_founded_tie_breaking,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "Engine",
    "Literal",
    "Program",
    "Rule",
    "Solution",
    "Variable",
    "atom",
    "available_semantics",
    "enumerate_solutions",
    "solve",
    "classify_program",
    "enumerate_fixpoints",
    "enumerate_stable_models",
    "enumerate_tie_breaking_models",
    "fitting_model",
    "ground",
    "has_fixpoint",
    "has_stable_model",
    "is_alphabetic_variant",
    "is_call_consistent",
    "is_fixpoint",
    "is_stable_model",
    "is_stratified",
    "is_structurally_nonuniformly_total",
    "is_structurally_total",
    "neg",
    "odd_cycle_in_program_graph",
    "parse_database",
    "parse_program",
    "perfect_model",
    "pos",
    "program_graph",
    "pure_tie_breaking",
    "reduced_program",
    "rule",
    "skeleton_of",
    "stratified_model",
    "structural_report",
    "useless_predicates",
    "well_founded_model",
    "well_founded_tie_breaking",
    "__version__",
]
