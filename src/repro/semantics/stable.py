"""Stable (default) models — §2 of the paper [BF1, GL].

Two independent checkers, cross-validated in the test suite:

* ``method="close"`` — the paper's graph formulation: let M⁻ undefine the
  true IDB atoms outside Δ; M is stable iff ``close(M⁻, G)`` reconstructs
  M (every undefined atom comes back true, nothing conflicts).
* ``method="reduct"`` — the Gelfond-Lifschitz original: delete rules whose
  negative body is violated by M, drop remaining negative literals, and
  compare the least model of that positive *reduct* (plus Δ) with M.
  Implemented with joins against finite fact sets, so it needs no ground
  graph at all and is exact for any candidate.

Every stable model is a fixpoint but not conversely (§2); deciding
existence is NP-hard even propositionally.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground, universe_of
from repro.datalog.program import Program
from repro.engine.facts import FactStore
from repro.engine.matching import enumerate_bindings, order_body_for_join
from repro.errors import CloseConflictError, SemanticsError
from repro.ground.model import FALSE, TRUE, Interpretation
from repro.ground.state import GroundGraphState
from repro.semantics.completion import _enumerate_fixpoints
from repro.semantics.fixpoint import is_fixpoint, normalize_candidate

__all__ = [
    "is_stable_model",
    "reduct_least_model",
    "enumerate_stable_models",
    "find_stable_model",
    "has_stable_model",
]


def reduct_least_model(
    program: Program,
    database: Database,
    candidate_true: frozenset[Atom],
    *,
    max_branch: int = 200_000,
) -> frozenset[Atom]:
    """Least model of the GL reduct of Π w.r.t. the candidate, plus Δ.

    The reduct is evaluated without materializing it: rules fire on
    bindings whose positive body joins the derived facts and whose negative
    body is false in the *candidate* (negation is fixed by M, which is the
    whole point of the reduct).  Variables left unbound by the positive
    body are enumerated over the universe.
    """
    universe = universe_of(program, database)
    fixed = FactStore()
    for a in candidate_true:
        fixed.add_atom(a)

    derived = FactStore.from_database(database)
    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            ordered = order_body_for_join(list(rule.positive_body()))
            heads = []  # buffered: the store must not grow mid-join
            for binding in enumerate_bindings(ordered, derived):
                unbound = [v for v in rule.variables() if v not in binding]
                if unbound and not universe:
                    continue
                combos = len(universe) ** len(unbound) if unbound else 1
                if combos > max_branch:
                    raise SemanticsError(
                        f"rule {rule}: {combos} unbound instantiations exceed max_branch"
                    )
                for values in product(universe, repeat=len(unbound)):
                    extended = dict(binding)
                    extended.update(zip(unbound, values))
                    if any(
                        fixed.contains_atom(lit.atom.substitute(extended))
                        for lit in rule.negative_body()
                    ):
                        continue
                    heads.append(rule.head.substitute(extended))
            for head in heads:
                if derived.add_atom(head):
                    changed = True
    return frozenset(derived.atoms())


def _is_stable_reduct(
    program: Program,
    database: Database,
    true_atoms: frozenset[Atom],
    max_branch: int,
) -> bool:
    return reduct_least_model(
        program, database, true_atoms, max_branch=max_branch
    ) == true_atoms


def _is_stable_close(
    program: Program,
    database: Database,
    true_atoms: frozenset[Atom],
    grounding: GroundingMode,
    ground_program: GroundProgram | None,
) -> bool:
    gp = ground_program or ground(program, database, mode=grounding)
    table = gp.atoms
    # Candidates whose true atoms are not all materialized cannot be stable:
    # stable models live inside the upper-bound model U*.
    true_ids = []
    for a in true_atoms:
        index = table.get(a)
        if index is None:
            if not database.contains_atom(a):
                return False
            continue
        true_ids.append(index)
    true_set = set(true_ids)

    state = GroundGraphState(gp)  # installs M0(Δ): Δ true, EDB¬Δ false
    # M⁻: false atoms of M stay false; true IDB atoms outside Δ stay undefined.
    # The compiled index answers "is EDB?" / "is in Δ?" per atom id without
    # re-materializing atoms: initial_status is TRUE exactly on Δ.
    idx = gp.index
    edb_mask = idx.edb_mask
    initial_status = idx.initial_status
    try:
        for index in range(gp.atom_count):
            if edb_mask[index] or initial_status[index] == TRUE:
                continue  # already valued by M0
            if index not in true_set:
                state.assign(index, FALSE)
        state.close()
    except CloseConflictError:
        return False
    # Reconstruction: every atom valued, and exactly the candidate is true.
    status = state.status
    for index in range(gp.atom_count):
        if edb_mask[index]:
            if status[index] != initial_status[index]:
                return False
        elif status[index] != (TRUE if index in true_set else FALSE):
            return False
    return True


def is_stable_model(
    program: Program,
    database: Database,
    candidate: Iterable[Atom] | Interpretation,
    *,
    method: str = "reduct",
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
    max_branch: int = 200_000,
) -> bool:
    """True iff the candidate is a stable model of Π, Δ.

    ``method`` selects the checker (see module docstring); both first
    require the candidate to be a fixpoint, mirroring "every stable model
    is a fixpoint".

    >>> from repro.datalog.parser import parse_program
    >>> from repro.datalog.atoms import Atom
    >>> prog = parse_program("p :- p, not q. q :- q, not p.")
    >>> is_stable_model(prog, Database(), set())      # both false: stable
    True
    >>> is_stable_model(prog, Database(), {Atom("p")})  # pure-TB fixpoint: not stable
    False
    """
    true_atoms = normalize_candidate(candidate)
    if not is_fixpoint(program, database, true_atoms, max_branch=max_branch):
        return False
    if method == "reduct":
        return _is_stable_reduct(program, database, true_atoms, max_branch)
    if method == "close":
        return _is_stable_close(program, database, true_atoms, grounding, ground_program)
    raise ValueError(f"unknown method {method!r}; use 'reduct' or 'close'")


def _enumerate_stable_models(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    limit: int | None = None,
    **kwargs,
) -> Iterator[frozenset[Atom]]:
    """Implementation behind the ``stable`` registry entry."""
    database = database or Database()
    found = 0
    for model in _enumerate_fixpoints(program, database, grounding=grounding, **kwargs):
        if is_stable_model(program, database, model):
            yield model
            found += 1
            if limit is not None and found >= limit:
                return


def enumerate_stable_models(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    limit: int | None = None,
    **kwargs,
) -> Iterator[frozenset[Atom]]:
    """All stable models: fixpoints (via completion SAT) filtered by stability.

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.enumerate("stable")``.
    """
    from repro.api import enumerate_solutions, warn_deprecated

    warn_deprecated("enumerate_stable_models()", 'Engine.enumerate("stable")')
    for solution in enumerate_solutions(
        "stable", program, database, limit=limit, grounding=grounding, **kwargs
    ):
        yield solution.run


def find_stable_model(
    program: Program, database: Database | None = None, **kwargs
) -> frozenset[Atom] | None:
    """One stable model's true set, or None.

    .. deprecated:: use ``Engine.solve("stable")`` (check ``found``).
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("find_stable_model()", 'Engine.solve("stable")')
    return solve("stable", program, database, **kwargs).run


def has_stable_model(program: Program, database: Database | None = None, **kwargs) -> bool:
    """True iff Π, Δ has a stable model (NP-hard in general).

    .. deprecated:: use ``Engine.solve("stable").found``.
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("has_stable_model()", 'Engine.solve("stable").found')
    return solve("stable", program, database, **kwargs).found
