"""The well-founded semantics — Algorithm Well-Founded of §2.

The interpreter alternates ``close(M, G)`` with falsifying the greatest
unfounded set ``Atoms[close(M, G+)]`` until the unfounded set is empty.
The result is the (unique) well-founded partial model; when it is total it
is a fixpoint and in fact the unique stable model [VRS].

Runs in polynomial time: each iteration falsifies at least one atom, and
each iteration is linear in the ground graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground
from repro.datalog.program import Program
from repro.ground.backend import make_state
from repro.ground.model import Interpretation
from repro.ground.state import GroundGraphState

__all__ = ["well_founded_model", "well_founded_state", "WellFoundedRun"]


@dataclass(frozen=True)
class WellFoundedRun:
    """A completed well-founded computation.

    ``iterations`` counts executions of the unfounded-set loop body; the
    model is total iff ``model.is_total``.  ``state`` retains the final
    evaluation state for provenance queries
    (:func:`repro.ground.explain.explain`); ``timings`` carries the
    kernel's per-phase solve accounting (``close_s`` / ``unfounded_s`` /
    ``tie_select_s`` / ``tie_apply_s`` / ``tie_analysis_s`` — the tie
    phases are zero here).
    """

    model: Interpretation
    iterations: int
    state: GroundGraphState | None = None
    timings: Mapping[str, float] | None = field(default=None, compare=False)

    @property
    def is_total(self) -> bool:
        """True iff every materialized atom received a value."""
        return self.model.is_total


def well_founded_state(
    ground_program: GroundProgram, backend: str | None = None
) -> tuple[GroundGraphState, int]:
    """Run the well-founded interpreter, returning the live state.

    Exposed separately so callers that need the final evaluation state
    (provenance, tie-breaking continuations) can share one computation.
    The unfounded loop is the kernel's fused
    :meth:`~repro.ground.state.GroundGraphState.falsify_unfounded`
    cascade — each round reuses the source pointers maintained by
    ``close`` instead of re-deriving the whole live graph.  ``backend``
    selects the kernel (:func:`repro.ground.backend.make_state`).
    """
    state = make_state(ground_program, backend)
    state.close()
    iterations = state.falsify_unfounded(numbered=True)
    return state, iterations


def _well_founded_model(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
    backend: str | None = None,
) -> WellFoundedRun:
    """Implementation behind the ``well_founded`` registry entry."""
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    state, iterations = well_founded_state(gp, backend)
    return WellFoundedRun(state.interpretation(), iterations, state, dict(state.phase_s))


def well_founded_model(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
) -> WellFoundedRun:
    """Compute the well-founded (possibly partial) model of Π, Δ.

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine(program, database).solve("well_founded")``.

    ``grounding='relevant'`` (default) is exact for this semantics: atoms
    outside the upper-bound model form an unfounded set and are false in
    the well-founded model either way (property-tested against ``'full'``).

    >>> from repro.datalog.parser import parse_database, parse_program
    >>> prog = parse_program("win(X) :- move(X, Y), not win(Y).")
    >>> db = parse_database("move(1, 2). move(2, 3).")
    >>> run = well_founded_model(prog, db)
    >>> run.is_total, sorted(t[0].value for t in run.model.true_rows("win"))
    (True, [2])
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("well_founded_model()", 'Engine.solve("well_founded")')
    return solve(
        "well_founded",
        program,
        database,
        grounding=grounding,
        ground_program=ground_program,
    ).run
