"""The tie-breaking semantics — §3 of the paper, the primary contribution.

Two interpreters:

* **Pure tie-breaking** (Algorithm Pure Tie-Breaking): after ``close``,
  repeatedly find a bottom strongly connected component that is a tie,
  orient its Lemma-1 partition (K true, L false), and close again.
* **Well-founded tie-breaking** (Algorithm Well-Founded Tie-Breaking):
  interleave the well-founded unfounded-set step with tie-breaking, trying
  the unfounded step first — ties are only broken when no nonempty
  unfounded set exists, which keeps the result consistent with the
  well-founded semantics, and (Lemma 3) makes every total result a
  *stable* model.

  The paper's pseudocode for this algorithm contains a typo ("for each
  atom a ∈ K set M(a) := true; for each atom a ∈ K set M(a) := false");
  the second K is L, exactly as in the pure version — we implement the
  corrected algorithm.

Both are polynomial-time.  Tie orientation is nondeterministic; a
:class:`~repro.semantics.choices.ChoicePolicy` resolves it and every run
records its trace of :class:`TieChoice` decisions.
:func:`enumerate_tie_breaking_models` explores *all* orientations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground
from repro.datalog.program import Program
from repro.ground.model import FALSE, TRUE, Interpretation
from repro.ground.state import BottomComponent, GroundGraphState
from repro.semantics.choices import ChoicePolicy, FirstSideTrue, forced_orientation

__all__ = [
    "TieChoice",
    "TieBreakingRun",
    "pure_tie_breaking",
    "well_founded_tie_breaking",
    "enumerate_tie_breaking_models",
]


@dataclass(frozen=True)
class TieChoice:
    """One recorded tie orientation.

    ``forced`` marks decisions where one side of the partition was empty
    (no real nondeterminism); ``made_true`` / ``made_false`` are the atom
    sets assigned by the decision, as ground atoms.
    """

    made_true: frozenset[Atom]
    made_false: frozenset[Atom]
    forced: bool


@dataclass(frozen=True)
class TieBreakingRun:
    """Result of one tie-breaking run: the model plus the decision trace.

    ``state`` retains the final evaluation state for provenance queries
    (:func:`repro.ground.explain.explain`); ``policy`` records
    ``repr(policy)`` of the orientation policy that drove the run (e.g.
    ``RandomChoice(seed=7)``), so nondeterministic runs are reproducible
    from their own output.
    """

    model: Interpretation
    choices: tuple[TieChoice, ...]
    variant: str  # "pure" or "well-founded"
    state: GroundGraphState | None = None
    policy: str | None = None

    @property
    def is_total(self) -> bool:
        """True iff the interpreter assigned every materialized atom."""
        return self.model.is_total

    @property
    def free_choice_count(self) -> int:
        """Number of genuinely nondeterministic decisions taken."""
        return sum(1 for c in self.choices if not c.forced)


def _select_tie(state: GroundGraphState) -> BottomComponent | None:
    """Deterministically pick a bottom tie (smallest atom id first).

    Bottom components are disjoint and breaking one cannot affect another
    bottom component (it has no incoming edges), so the processing *order*
    does not change the set of reachable outcomes — only the orientation
    choices do.
    """
    best: BottomComponent | None = None
    best_key: int | None = None
    for component in state.bottom_components_live():
        if not component.is_tie:
            continue
        key = min(component.atom_ids)
        if best_key is None or key < best_key:
            best, best_key = component, key
    return best


def _break_tie(
    state: GroundGraphState, component: BottomComponent, policy: ChoicePolicy
) -> TieChoice:
    """Orient one tie: assign K's atoms true and L's atoms false."""
    assert component.analysis.sides is not None
    side_nodes = [0, 0]
    for side in component.analysis.sides.values():
        side_nodes[side] += 1
    atom_sides = component.side_of_atom()
    side_atoms: tuple[list[int], list[int]] = ([], [])
    for atom_id, side in atom_sides.items():
        side_atoms[side].append(atom_id)

    true_side = forced_orientation(side_nodes[0], side_nodes[1])
    forced = true_side is not None
    if true_side is None:
        true_side = policy.choose_true_side(side_atoms[0], side_atoms[1])

    made_true = side_atoms[true_side]
    made_false = side_atoms[1 - true_side]
    state.assign_many(made_true, TRUE, ("tie", true_side))
    state.assign_many(made_false, FALSE, ("tie", 1 - true_side))
    table = state.gp.atoms
    return TieChoice(
        made_true=frozenset(table.atom(i) for i in made_true),
        made_false=frozenset(table.atom(i) for i in made_false),
        forced=forced,
    )


def _run(
    state: GroundGraphState,
    policy: ChoicePolicy,
    *,
    well_founded: bool,
) -> list[TieChoice]:
    """Drive a (pure or well-founded) tie-breaking run to completion."""
    choices: list[TieChoice] = []
    state.close()
    while True:
        if well_founded:
            unfounded = state.unfounded_atoms()
            if unfounded:
                state.assign_many(unfounded, FALSE, ("unfounded", None))
                state.close()
                continue
        tie = _select_tie(state)
        if tie is None:
            return choices
        choices.append(_break_tie(state, tie, policy))
        state.close()


def _pure_tie_breaking(
    program: Program,
    database: Database | None = None,
    *,
    policy: ChoicePolicy | None = None,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
) -> TieBreakingRun:
    """Implementation behind the ``pure_tie_breaking`` registry entry."""
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    state = GroundGraphState(gp)
    chosen = policy or FirstSideTrue()
    choices = _run(state, chosen, well_founded=False)
    return TieBreakingRun(state.interpretation(), tuple(choices), "pure", state, repr(chosen))


def _well_founded_tie_breaking(
    program: Program,
    database: Database | None = None,
    *,
    policy: ChoicePolicy | None = None,
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
) -> TieBreakingRun:
    """Implementation behind the ``tie_breaking`` registry entry."""
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    state = GroundGraphState(gp)
    chosen = policy or FirstSideTrue()
    choices = _run(state, chosen, well_founded=True)
    return TieBreakingRun(
        state.interpretation(), tuple(choices), "well-founded", state, repr(chosen)
    )


def pure_tie_breaking(
    program: Program,
    database: Database | None = None,
    *,
    policy: ChoicePolicy | None = None,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
) -> TieBreakingRun:
    """Algorithm Pure Tie-Breaking (§3).

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("pure_tie_breaking")``.

    Defaults to full grounding: pure tie-breaking is defined on the paper's
    exact ground graph, and may assign unfounded atoms *true* (e.g.
    ``p :- p, ¬q``/``q :- q, ¬p``), so the relevant grounding's pruning
    would change its outcomes.
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("pure_tie_breaking()", 'Engine.solve("pure_tie_breaking")')
    return solve(
        "pure_tie_breaking",
        program,
        database,
        policy=policy,
        grounding=grounding,
        ground_program=ground_program,
    ).run


def well_founded_tie_breaking(
    program: Program,
    database: Database | None = None,
    *,
    policy: ChoicePolicy | None = None,
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
) -> TieBreakingRun:
    """Algorithm Well-Founded Tie-Breaking (§3, with the K/L typo fixed).

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("tie_breaking")``.

    Extends the well-founded semantics: deviates from it only where the
    well-founded interpreter is stuck, and every total result is a stable
    model (Lemma 3).  Relevant grounding is exact for this semantics.
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("well_founded_tie_breaking()", 'Engine.solve("tie_breaking")')
    return solve(
        "tie_breaking",
        program,
        database,
        policy=policy,
        grounding=grounding,
        ground_program=ground_program,
    ).run


def _enumerate_tie_breaking_models(
    program: Program,
    database: Database | None = None,
    *,
    variant: str = "well-founded",
    grounding: GroundingMode | None = None,
    ground_program: GroundProgram | None = None,
    limit: int | None = None,
) -> Iterator[TieBreakingRun]:
    """Every outcome of the tie-breaking interpreter over all free choices.

    Performs a depth-first search over tie orientations (two branches per
    genuinely free decision).  Distinct choice sequences may converge to
    the same model; runs are yielded per *sequence* — deduplicate on
    ``run.model.true_set()`` if only models matter.

    Worst-case exponential in the number of free choices — this is the
    exhaustive verifier behind the paper's "for all choices" statements,
    not an interpreter.
    """
    if variant not in ("pure", "well-founded"):
        raise ValueError(f"variant must be 'pure' or 'well-founded', not {variant!r}")
    well_founded = variant == "well-founded"
    if grounding is None:
        grounding = "relevant" if well_founded else "full"
    gp = ground_program or ground(program, database or Database(), mode=grounding)

    emitted = 0

    def explore(state: GroundGraphState, trail: list[TieChoice]) -> Iterator[TieBreakingRun]:
        nonlocal emitted
        state.close()
        while True:
            if limit is not None and emitted >= limit:
                return
            if well_founded:
                unfounded = state.unfounded_atoms()
                if unfounded:
                    state.assign_many(unfounded, FALSE, ("unfounded", None))
                    state.close()
                    continue
            tie = _select_tie(state)
            if tie is None:
                emitted += 1
                yield TieBreakingRun(
                    state.interpretation(), tuple(trail), variant, state, "enumerated"
                )
                return
            assert tie.analysis.sides is not None
            side_nodes = [0, 0]
            for side in tie.analysis.sides.values():
                side_nodes[side] += 1
            forced = forced_orientation(side_nodes[0], side_nodes[1])
            if forced is not None:
                trail.append(_break_tie_with_side(state, tie, forced, forced=True))
                state.close()
                continue
            for true_side in (0, 1):
                # The last branch consumes this state; only the first
                # needs an independent copy (clones share the compiled
                # index and SCC cache structure, so this is O(n) memcpy).
                branch = state.clone() if true_side == 0 else state
                branch_trail = list(trail)
                branch_trail.append(
                    _break_tie_with_side(branch, tie, true_side, forced=False)
                )
                yield from explore(branch, branch_trail)
            return

    initial = GroundGraphState(gp)
    yield from explore(initial, [])


def enumerate_tie_breaking_models(
    program: Program,
    database: Database | None = None,
    *,
    variant: str = "well-founded",
    grounding: GroundingMode | None = None,
    ground_program: GroundProgram | None = None,
    limit: int | None = None,
) -> Iterator[TieBreakingRun]:
    """Every outcome of the tie-breaking interpreter over all free choices.

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.enumerate("tie_breaking")`` (or
       ``"pure_tie_breaking"``).

    Performs a depth-first search over tie orientations (two branches per
    genuinely free decision).  Distinct choice sequences may converge to
    the same model; runs are yielded per *sequence* — deduplicate on
    ``run.model.true_set()`` if only models matter.

    Worst-case exponential in the number of free choices — this is the
    exhaustive verifier behind the paper's "for all choices" statements,
    not an interpreter.
    """
    from repro.api import enumerate_solutions, warn_deprecated

    warn_deprecated("enumerate_tie_breaking_models()", 'Engine.enumerate("tie_breaking")')
    if variant not in ("pure", "well-founded"):
        raise ValueError(f"variant must be 'pure' or 'well-founded', not {variant!r}")
    name = "tie_breaking" if variant == "well-founded" else "pure_tie_breaking"
    options: dict = {}
    if grounding is not None:
        options["grounding"] = grounding
    for solution in enumerate_solutions(
        name, program, database, ground_program=ground_program, limit=limit, **options
    ):
        yield solution.run


def _break_tie_with_side(
    state: GroundGraphState, component: BottomComponent, true_side: int, *, forced: bool
) -> TieChoice:
    """Orient a tie with an explicit side choice (enumeration path)."""
    atom_sides = component.side_of_atom()
    made_true = [a for a, s in atom_sides.items() if s == true_side]
    made_false = [a for a, s in atom_sides.items() if s != true_side]
    state.assign_many(made_true, TRUE, ("tie", true_side))
    state.assign_many(made_false, FALSE, ("tie", 1 - true_side))
    table = state.gp.atoms
    return TieChoice(
        made_true=frozenset(table.atom(i) for i in made_true),
        made_false=frozenset(table.atom(i) for i in made_false),
        forced=forced,
    )
