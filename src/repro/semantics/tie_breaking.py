"""The tie-breaking semantics — §3 of the paper, the primary contribution.

Two interpreters:

* **Pure tie-breaking** (Algorithm Pure Tie-Breaking): after ``close``,
  repeatedly find a bottom strongly connected component that is a tie,
  orient its Lemma-1 partition (K true, L false), and close again.
* **Well-founded tie-breaking** (Algorithm Well-Founded Tie-Breaking):
  interleave the well-founded unfounded-set step with tie-breaking, trying
  the unfounded step first — ties are only broken when no nonempty
  unfounded set exists, which keeps the result consistent with the
  well-founded semantics, and (Lemma 3) makes every total result a
  *stable* model.

  The paper's pseudocode for this algorithm contains a typo ("for each
  atom a ∈ K set M(a) := true; for each atom a ∈ K set M(a) := false");
  the second K is L, exactly as in the pure version — we implement the
  corrected algorithm.

Both are polynomial-time, and both ride the v2 kernel hot path: the
unfounded step is the fused
:meth:`~repro.ground.state.GroundGraphState.falsify_unfounded` cascade and
tie selection is the kernel's min-keyed schedule
(:meth:`~repro.ground.state.GroundGraphState.select_tie`) — no per-round
rescan of the live graph.  Tie orientation is nondeterministic; a
:class:`~repro.semantics.choices.ChoicePolicy` resolves it and every run
records its trace of :class:`TieChoice` decisions (id-based, decoded to
atoms lazily).  :func:`enumerate_tie_breaking_models` explores *all*
orientations with a trail-based undo log — branching costs the work
undone, not a state copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Mapping

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground
from repro.datalog.program import Program
from repro.ground.backend import make_state
from repro.ground.model import FALSE, TRUE, Interpretation
from repro.ground.state import BottomComponent, GroundGraphState
from repro.semantics.choices import ChoicePolicy, FirstSideTrue, forced_orientation

__all__ = [
    "TieChoice",
    "TieBreakingRun",
    "pure_tie_breaking",
    "well_founded_tie_breaking",
    "enumerate_tie_breaking_models",
]


class TieChoice:
    """One recorded tie orientation.

    ``forced`` marks decisions where one side of the partition was empty
    (no real nondeterminism).  The trail is *id-based*: ``true_ids`` /
    ``false_ids`` are the sorted dense atom ids assigned by the decision,
    and the ground-atom views ``made_true`` / ``made_false`` decode them
    against the grounding's atom table lazily, on first access — a run
    that never inspects its trail never materializes an Atom.  Equality
    and hashing use the id tuples (trails are compared within one
    grounding).
    """

    __slots__ = ("true_ids", "false_ids", "forced", "_table", "_true", "_false")

    def __init__(self, true_ids, false_ids, forced: bool, table) -> None:
        self.true_ids: tuple[int, ...] = tuple(sorted(true_ids))
        self.false_ids: tuple[int, ...] = tuple(sorted(false_ids))
        self.forced = forced
        self._table = table
        self._true: frozenset[Atom] | None = None
        self._false: frozenset[Atom] | None = None

    @property
    def made_true(self) -> frozenset[Atom]:
        """The atoms assigned true (decoded lazily, then cached)."""
        if self._true is None:
            atom = self._table.atom
            self._true = frozenset(atom(i) for i in self.true_ids)
        return self._true

    @property
    def made_false(self) -> frozenset[Atom]:
        """The atoms assigned false (decoded lazily, then cached)."""
        if self._false is None:
            atom = self._table.atom
            self._false = frozenset(atom(i) for i in self.false_ids)
        return self._false

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TieChoice):
            return NotImplemented
        return (
            self.true_ids == other.true_ids
            and self.false_ids == other.false_ids
            and self.forced == other.forced
        )

    def __hash__(self) -> int:
        return hash((self.true_ids, self.false_ids, self.forced))

    def __repr__(self) -> str:
        return (
            f"TieChoice(true_ids={self.true_ids}, false_ids={self.false_ids}, "
            f"forced={self.forced})"
        )


@dataclass(frozen=True)
class TieBreakingRun:
    """Result of one tie-breaking run: the model plus the decision trace.

    ``state`` retains the final evaluation state for provenance queries
    (:func:`repro.ground.explain.explain`); enumerated runs carry
    ``state=None`` (the trail-based explorer reuses one state for every
    branch).  ``policy`` records ``repr(policy)`` of the orientation
    policy that drove the run (e.g. ``RandomChoice(seed=7)``), so
    nondeterministic runs are reproducible from their own output.
    ``timings`` carries the kernel's per-phase solve accounting
    (``close_s`` / ``unfounded_s`` / ``tie_select_s`` / ``tie_apply_s`` /
    ``tie_analysis_s``).
    """

    model: Interpretation
    choices: tuple[TieChoice, ...]
    variant: str  # "pure" or "well-founded"
    state: GroundGraphState | None = None
    policy: str | None = None
    timings: Mapping[str, float] | None = field(default=None, compare=False)

    @property
    def is_total(self) -> bool:
        """True iff the interpreter assigned every materialized atom."""
        return self.model.is_total

    @property
    def free_choice_count(self) -> int:
        """Number of genuinely nondeterministic decisions taken."""
        return sum(1 for c in self.choices if not c.forced)


def _select_tie(state: GroundGraphState) -> BottomComponent | None:
    """Reference tie selection: scan all bottom components for the min.

    Equivalent to :meth:`GroundGraphState.select_tie` (the property suite
    pins the two against each other); kept as the schedule-free oracle
    and for the clone-based reference explorer.  Bottom components are
    disjoint and breaking one cannot affect another bottom component (it
    has no incoming edges), so the processing *order* does not change the
    set of reachable outcomes — only the orientation choices do.
    """
    best: BottomComponent | None = None
    best_key: int | None = None
    order = state.order_key
    for component in state.bottom_components_live():
        if not component.is_tie:
            continue
        key = min(order(a) for a in component.atom_ids)
        if best_key is None or key < best_key:
            best, best_key = component, key
    return best


def _apply_tie(
    state: GroundGraphState, component: BottomComponent, true_side: int, *, forced: bool
) -> TieChoice:
    """Orient one tie: assign the chosen side true, the other false.

    Assignment batches are sorted by atom id so the trail/decision
    trajectory is independent of the side dict's iteration order (fresh
    BFS, cached sides, and the array backend enumerate differently).
    """
    made_true: list[int] = []
    made_false: list[int] = []
    for a, s in component.side_of_atom().items():
        (made_true if s == true_side else made_false).append(a)
    made_true.sort()
    made_false.sort()
    t0 = perf_counter()
    state.assign_many(made_true, TRUE, ("tie", true_side))
    state.assign_many(made_false, FALSE, ("tie", 1 - true_side))
    state.phase_s["tie_apply_s"] += perf_counter() - t0
    return TieChoice(made_true, made_false, forced, state.gp.atoms)


def _break_tie(
    state: GroundGraphState, component: BottomComponent, policy: ChoicePolicy
) -> TieChoice:
    """Orient one tie under a policy (forced orientations bypass it).

    A side is forced exactly when it holds no atoms: in a bipartite SCC
    every rule node's head edge stays in-component and on its own side,
    so a side without atoms has no nodes at all — counting atoms
    (:meth:`BottomComponent.side_counts`) is equivalent to counting
    nodes, and skips a sweep over the rule half of the partition.
    """
    side_atoms: tuple[list[int], list[int]] = ([], [])
    for atom_id, side in component.side_of_atom().items():
        side_atoms[side].append(atom_id)
    true_side = forced_orientation(len(side_atoms[0]), len(side_atoms[1]))
    forced = true_side is not None
    if true_side is None:
        # Policies see canonical ranks, not raw ids: a streamed-update
        # state must make the same choice a fresh re-ground would.  The
        # overlay is identity for fresh groundings — skip the mapping.
        order = state._order
        if order is None:
            ranks0, ranks1 = side_atoms[0], side_atoms[1]
        else:
            ranks0 = [order[a] for a in side_atoms[0]]
            ranks1 = [order[a] for a in side_atoms[1]]
        true_side = policy.choose_true_side(ranks0, ranks1)
    return _apply_tie(state, component, true_side, forced=forced)


def _run(
    state: GroundGraphState,
    policy: ChoicePolicy,
    *,
    well_founded: bool,
) -> list[TieChoice]:
    """Drive a (pure or well-founded) tie-breaking run to completion.

    Backend-agnostic: each round breaks *every* independent bottom tie the
    kernel reports (:meth:`GroundGraphState.select_ties`).  Bottom ties
    are disjoint and have no incoming edges, so orienting one cannot
    change another's tie-ness or partition — batching a round is
    observably identical to the one-tie-per-round schedule.  The python
    kernel reports one tie per round (preserving its sequential
    schedule); the array kernel reports all of them, collapsing a
    committee-style cascade of n rounds into O(DAG depth).
    """
    choices: list[TieChoice] = []
    state.close()
    while True:
        if well_founded:
            state.falsify_unfounded(numbered=False)
        ties = state.select_ties()
        if not ties:
            return choices
        for tie in ties:
            choices.append(_break_tie(state, tie, policy))
        state.close()


def _pure_tie_breaking(
    program: Program,
    database: Database | None = None,
    *,
    policy: ChoicePolicy | None = None,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
    backend: str | None = None,
) -> TieBreakingRun:
    """Implementation behind the ``pure_tie_breaking`` registry entry."""
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    state = make_state(gp, backend)
    chosen = policy or FirstSideTrue()
    choices = _run(state, chosen, well_founded=False)
    return TieBreakingRun(
        state.interpretation(),
        tuple(choices),
        "pure",
        state,
        repr(chosen),
        dict(state.phase_s),
    )


def _well_founded_tie_breaking(
    program: Program,
    database: Database | None = None,
    *,
    policy: ChoicePolicy | None = None,
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
    backend: str | None = None,
) -> TieBreakingRun:
    """Implementation behind the ``tie_breaking`` registry entry."""
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    state = make_state(gp, backend)
    chosen = policy or FirstSideTrue()
    choices = _run(state, chosen, well_founded=True)
    return TieBreakingRun(
        state.interpretation(),
        tuple(choices),
        "well-founded",
        state,
        repr(chosen),
        dict(state.phase_s),
    )


def pure_tie_breaking(
    program: Program,
    database: Database | None = None,
    *,
    policy: ChoicePolicy | None = None,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
) -> TieBreakingRun:
    """Algorithm Pure Tie-Breaking (§3).

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("pure_tie_breaking")``.

    Defaults to full grounding: pure tie-breaking is defined on the paper's
    exact ground graph, and may assign unfounded atoms *true* (e.g.
    ``p :- p, ¬q``/``q :- q, ¬p``), so the relevant grounding's pruning
    would change its outcomes.
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("pure_tie_breaking()", 'Engine.solve("pure_tie_breaking")')
    return solve(
        "pure_tie_breaking",
        program,
        database,
        policy=policy,
        grounding=grounding,
        ground_program=ground_program,
    ).run


def well_founded_tie_breaking(
    program: Program,
    database: Database | None = None,
    *,
    policy: ChoicePolicy | None = None,
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
) -> TieBreakingRun:
    """Algorithm Well-Founded Tie-Breaking (§3, with the K/L typo fixed).

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("tie_breaking")``.

    Extends the well-founded semantics: deviates from it only where the
    well-founded interpreter is stuck, and every total result is a stable
    model (Lemma 3).  Relevant grounding is exact for this semantics.
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("well_founded_tie_breaking()", 'Engine.solve("tie_breaking")')
    return solve(
        "tie_breaking",
        program,
        database,
        policy=policy,
        grounding=grounding,
        ground_program=ground_program,
    ).run


def _check_variant(variant: str) -> bool:
    if variant not in ("pure", "well-founded"):
        raise ValueError(f"variant must be 'pure' or 'well-founded', not {variant!r}")
    return variant == "well-founded"


def _enumerate_tie_breaking_models(
    program: Program,
    database: Database | None = None,
    *,
    variant: str = "well-founded",
    grounding: GroundingMode | None = None,
    ground_program: GroundProgram | None = None,
    limit: int | None = None,
) -> Iterator[TieBreakingRun]:
    """Every outcome of the tie-breaking interpreter over all free choices.

    Performs a depth-first search over tie orientations (two branches per
    genuinely free decision) on **one** evaluation state with a
    trail-based undo log: entering a branch marks the trail, leaving it
    rewinds assignments, counters, and the kernel caches — branch cost is
    proportional to the work undone, never an O(state) copy.  Runs are
    yielded per *sequence* with ``state=None``; deduplicate on
    ``run.model.true_set()`` if only models matter.

    Worst-case exponential in the number of free choices — this is the
    exhaustive verifier behind the paper's "for all choices" statements,
    not an interpreter.
    """
    well_founded = _check_variant(variant)
    if grounding is None:
        grounding = "relevant" if well_founded else "full"
    gp = ground_program or ground(program, database or Database(), mode=grounding)

    emitted = 0
    state = GroundGraphState(gp)
    state.trail_begin()
    state.close()
    trail: list[TieChoice] = []
    # Unexplored second branches, deepest last: (trail mark, choice depth,
    # the tie to re-orient).  Iterative so depth is bounded by memory, not
    # the interpreter stack, and each yield is O(1), not O(depth).
    pending: list[tuple] = []
    advancing = True
    while True:
        if advancing:
            if limit is not None and emitted >= limit:
                return
            if well_founded:
                state.falsify_unfounded(numbered=False)
            tie = state.select_tie()
            if tie is None:
                emitted += 1
                yield TieBreakingRun(
                    state.interpretation(), tuple(trail), variant, None, "enumerated"
                )
                advancing = False
                continue
            assert tie.analysis.sides is not None
            count0, count1 = tie.side_counts()
            forced = forced_orientation(count0, count1)
            if forced is not None:
                trail.append(_apply_tie(state, tie, forced, forced=True))
                state.close()
                continue
            pending.append((state.trail_mark(), len(trail), tie))
            trail.append(_apply_tie(state, tie, 0, forced=False))
            state.close()
        else:
            if not pending or (limit is not None and emitted >= limit):
                return
            mark, depth, tie = pending.pop()
            del trail[depth:]
            state.trail_undo(mark)
            trail.append(_apply_tie(state, tie, 1, forced=False))
            state.close()
            advancing = True


def _enumerate_reference(
    gp: GroundProgram,
    *,
    variant: str = "well-founded",
    limit: int | None = None,
) -> Iterator[TieBreakingRun]:
    """Clone-based reference explorer (the pre-trail algorithm).

    Branches by copying the whole evaluation state and uses the
    schedule-free queries (``unfounded_atoms`` + ``bottom_components_live``
    scan), so it shares none of the trail/undo or tie-schedule machinery —
    the differential oracle the property suite and the enumerate bench
    drive against the trail-based explorer.
    """
    well_founded = _check_variant(variant)
    emitted = 0
    start = GroundGraphState(gp)
    start.close()
    # Closed states ready to drive, deepest last (depth-first, side 0
    # first — the same (model, trail) sequence the trail explorer emits).
    pending: list[tuple[GroundGraphState, list[TieChoice]]] = [(start, [])]
    while pending:
        state, trail = pending.pop()
        while True:
            if limit is not None and emitted >= limit:
                return
            if well_founded:
                unfounded = state.unfounded_atoms()
                if unfounded:
                    state.assign_many(unfounded, FALSE, ("unfounded", None))
                    state.close()
                    continue
            tie = _select_tie(state)
            if tie is None:
                emitted += 1
                yield TieBreakingRun(
                    state.interpretation(), tuple(trail), variant, state, "enumerated"
                )
                break
            assert tie.analysis.sides is not None
            count0, count1 = tie.side_counts()
            forced = forced_orientation(count0, count1)
            if forced is not None:
                trail.append(_apply_tie(state, tie, forced, forced=True))
                state.close()
                continue
            # Side 1 continues later on an independent copy; side 0
            # consumes this state now.
            other = state.clone()
            other_trail = list(trail)
            other_trail.append(_apply_tie(other, tie, 1, forced=False))
            other.close()
            pending.append((other, other_trail))
            trail.append(_apply_tie(state, tie, 0, forced=False))
            state.close()


def enumerate_tie_breaking_models(
    program: Program,
    database: Database | None = None,
    *,
    variant: str = "well-founded",
    grounding: GroundingMode | None = None,
    ground_program: GroundProgram | None = None,
    limit: int | None = None,
) -> Iterator[TieBreakingRun]:
    """Every outcome of the tie-breaking interpreter over all free choices.

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.enumerate("tie_breaking")`` (or
       ``"pure_tie_breaking"``).

    Performs a depth-first search over tie orientations (two branches per
    genuinely free decision).  Distinct choice sequences may converge to
    the same model; runs are yielded per *sequence* — deduplicate on
    ``run.model.true_set()`` if only models matter.

    Worst-case exponential in the number of free choices — this is the
    exhaustive verifier behind the paper's "for all choices" statements,
    not an interpreter.
    """
    from repro.api import enumerate_solutions, warn_deprecated

    warn_deprecated("enumerate_tie_breaking_models()", 'Engine.enumerate("tie_breaking")')
    _check_variant(variant)
    name = "tie_breaking" if variant == "well-founded" else "pure_tie_breaking"
    options: dict = {}
    if grounding is not None:
        options["grounding"] = grounding
    for solution in enumerate_solutions(
        name, program, database, ground_program=ground_program, limit=limit, **options
    ):
        yield solution.run
