"""Choice policies: how the tie-breaking interpreters orient a tie.

Breaking a tie assigns one Lemma-1 side true (the paper's K) and the other
false (L).  When one side is empty the orientation is forced — "the choice
to make all the atoms false is more consistent with the minimalist
philosophy", and the algorithm requires L nonempty — but when both sides
are inhabited the choice is genuinely nondeterministic and can change the
final model, or even whether a total model is reached.

A :class:`ChoicePolicy` resolves that nondeterminism.  Policies receive the
two node sides and return which side index (0/1) plays K; the interpreter
records every decision in the run's trace so "for all choices" statements
(Lemmas 2, 3, Theorem 1) are testable by exhaustive enumeration
(:func:`repro.semantics.tie_breaking.enumerate_tie_breaking_models`).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

__all__ = [
    "ChoicePolicy",
    "FirstSideTrue",
    "SecondSideTrue",
    "FewestTrue",
    "MostTrue",
    "RandomChoice",
    "forced_orientation",
]


class ChoicePolicy(Protocol):
    """Strategy resolving the K/L orientation of a tie."""

    def choose_true_side(self, side0_atoms: Sequence[int], side1_atoms: Sequence[int]) -> int:
        """Return 0 or 1: the side whose atoms become true (K).

        Called only when the orientation is free (both sides contain nodes);
        forced orientations bypass the policy.
        """
        ...


def forced_orientation(side0_nodes: int, side1_nodes: int) -> int | None:
    """The forced K side when one side of the partition is empty, else None.

    An empty side must play K (making L the nonempty side, all false) —
    this is the locally-stratified case where the component has no negative
    edges and minimality demands everything false.
    """
    if side0_nodes == 0:
        return 0
    if side1_nodes == 0:
        return 1
    return None


class FirstSideTrue:
    """Deterministic: the side containing the smallest atom id becomes true."""

    def choose_true_side(self, side0_atoms: Sequence[int], side1_atoms: Sequence[int]) -> int:
        lowest0 = min(side0_atoms, default=float("inf"))
        lowest1 = min(side1_atoms, default=float("inf"))
        return 0 if lowest0 <= lowest1 else 1

    def __repr__(self) -> str:
        return "FirstSideTrue()"


class SecondSideTrue:
    """Deterministic mirror of :class:`FirstSideTrue` (the opposite run)."""

    def choose_true_side(self, side0_atoms: Sequence[int], side1_atoms: Sequence[int]) -> int:
        return 1 - FirstSideTrue().choose_true_side(side0_atoms, side1_atoms)

    def __repr__(self) -> str:
        return "SecondSideTrue()"


class FewestTrue:
    """Minimalist: make the smaller atom side true (ties: FirstSideTrue)."""

    def choose_true_side(self, side0_atoms: Sequence[int], side1_atoms: Sequence[int]) -> int:
        if len(side0_atoms) != len(side1_atoms):
            return 0 if len(side0_atoms) < len(side1_atoms) else 1
        return FirstSideTrue().choose_true_side(side0_atoms, side1_atoms)

    def __repr__(self) -> str:
        return "FewestTrue()"


class MostTrue:
    """Maximalist: make the larger atom side true (ties: FirstSideTrue)."""

    def choose_true_side(self, side0_atoms: Sequence[int], side1_atoms: Sequence[int]) -> int:
        if len(side0_atoms) != len(side1_atoms):
            return 0 if len(side0_atoms) > len(side1_atoms) else 1
        return FirstSideTrue().choose_true_side(side0_atoms, side1_atoms)

    def __repr__(self) -> str:
        return "MostTrue()"


class RandomChoice:
    """Seeded random orientation; reproducible given the seed.

    When constructed without a seed, one is drawn from the system entropy
    source and *recorded* on the instance, so every run — including
    "unseeded" ones — can be replayed from its reported policy
    (``repr(policy)`` appears in :class:`~repro.api.Solution` metadata and
    ``TieBreakingRun.policy``).
    """

    def __init__(self, seed: int | None = None):
        if seed is None:
            seed = random.SystemRandom().randrange(2**32)
        self.seed = seed
        self._rng = random.Random(seed)

    def choose_true_side(self, side0_atoms: Sequence[int], side1_atoms: Sequence[int]) -> int:
        return self._rng.randrange(2)

    def __repr__(self) -> str:
        return f"RandomChoice(seed={self.seed})"
