"""Clark completion: exact fixpoint enumeration via SAT.

The fixpoints (supported models) of Π, Δ are exactly the models of the
*Clark completion* of the ground program: every atom outside Δ is made
equivalent to the disjunction of its rule bodies ("models of the Clark
extension", §1).  Deciding existence is NP-complete even propositionally
(§2, [KP]), so the exact engine is the DPLL solver of :mod:`repro.sat`.

Used throughout §4-5 verification: the Theorem 2/3/6 constructions claim
*no fixpoint exists* — here that is a single UNSAT call.

Grounding note: encoding defaults to the paper-exact ``full`` grounding.
Under ``relevant`` grounding, atoms outside the upper-bound model U\\* are
not materialized; models found are still genuine fixpoints (unmaterialized
atoms read as false satisfy every dropped instance), but fixpoints whose
true atoms are *self-supported outside U\\** are missed.  UNSAT therefore
implies "no fixpoint" under relevant grounding only when no positive cycle
escapes U\\* — the Theorem 6 tests document this argument; when in doubt,
use full grounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground
from repro.datalog.program import Program
from repro.sat.cnf import CNF
from repro.sat.solver import enumerate_models, solve

__all__ = [
    "CompletionEncoding",
    "clark_completion",
    "enumerate_fixpoints",
    "find_fixpoint",
    "has_fixpoint",
    "count_fixpoints",
]


@dataclass
class CompletionEncoding:
    """The CNF of a ground program's Clark completion.

    ``atom_var[i]`` is the SAT variable of ground atom ``i``; ``free_vars``
    lists the variables of atoms whose value is not fixed by Δ (the
    projection set for model enumeration).
    """

    ground_program: GroundProgram
    cnf: CNF
    atom_var: list[int]
    free_vars: list[int]

    def model_to_atoms(self, projection: dict[int, bool]) -> frozenset[Atom]:
        """Translate a projected SAT model into the fixpoint's true set."""
        gp = self.ground_program
        true_atoms: set[Atom] = set(gp.database.atoms())
        for index, var in enumerate(self.atom_var):
            if projection.get(var):
                true_atoms.add(gp.atoms.atom(index))
        return frozenset(true_atoms)


def clark_completion(ground_program: GroundProgram) -> CompletionEncoding:
    """Encode the fixpoint conditions of a ground program as CNF."""
    gp = ground_program
    cnf = CNF()
    atom_var = cnf.new_vars(gp.atom_count)
    edb = gp.program.edb_predicates

    # Group rule instances by head.
    by_head: dict[int, list[int]] = {}
    for r_index, gr in enumerate(gp.rules):
        by_head.setdefault(gr.head, []).append(r_index)

    free_vars: list[int] = []
    for index in range(gp.atom_count):
        atom = gp.atoms.atom(index)
        var = atom_var[index]
        if gp.database.contains_atom(atom):
            cnf.add_unit(var)  # in Δ: true, unconditionally supported
            continue
        if atom.predicate in edb:
            cnf.add_unit(-var)  # EDB outside Δ: false
            continue
        instances = by_head.get(index, ())
        if not instances:
            cnf.add_unit(-var)  # no possible support
            continue
        free_vars.append(var)
        body_vars: list[int] = []
        for r_index in instances:
            gr = gp.rules[r_index]
            b = cnf.new_var()
            body_vars.append(b)
            reverse = [b]
            for p in gr.pos:
                cnf.add_clause([-b, atom_var[p]])
                reverse.append(-atom_var[p])
            for n in gr.neg:
                cnf.add_clause([-b, -atom_var[n]])
                reverse.append(atom_var[n])
            cnf.add_clause(reverse)  # body true ⇒ b
            cnf.add_clause([-b, var])  # b ⇒ atom (closure direction)
        cnf.add_clause([-var] + body_vars)  # atom ⇒ some body (support direction)
    return CompletionEncoding(gp, cnf, atom_var, free_vars)


def _encoding_for(
    program: Program,
    database: Database | None,
    grounding: GroundingMode,
    ground_program: GroundProgram | None,
    max_instances: int,
) -> CompletionEncoding:
    gp = ground_program or ground(
        program, database or Database(), mode=grounding, max_instances=max_instances
    )
    return clark_completion(gp)


def _enumerate_fixpoints(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
    limit: int | None = None,
    max_instances: int = 2_000_000,
) -> Iterator[frozenset[Atom]]:
    """Implementation behind the ``completion`` registry entry."""
    encoding = _encoding_for(program, database, grounding, ground_program, max_instances)
    for projection in enumerate_models(encoding.cnf, encoding.free_vars, limit=limit):
        yield encoding.model_to_atoms(projection)


def enumerate_fixpoints(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
    limit: int | None = None,
    max_instances: int = 2_000_000,
) -> Iterator[frozenset[Atom]]:
    """Yield the true set of every fixpoint of Π, Δ (projected, deduplicated).

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.enumerate("completion")``.

    >>> from repro.datalog.parser import parse_program
    >>> prog = parse_program("p :- not q. q :- not p.")
    >>> models = sorted(sorted(str(a) for a in m) for m in enumerate_fixpoints(prog))
    >>> models
    [['p'], ['q']]
    """
    from repro.api import enumerate_solutions, warn_deprecated

    warn_deprecated("enumerate_fixpoints()", 'Engine.enumerate("completion")')
    for solution in enumerate_solutions(
        "completion",
        program,
        database,
        ground_program=ground_program,
        limit=limit,
        grounding=grounding,
        max_instances=max_instances,
    ):
        yield solution.run


def find_fixpoint(
    program: Program,
    database: Database | None = None,
    **kwargs,
) -> frozenset[Atom] | None:
    """One fixpoint's true set, or None if Π, Δ has no fixpoint.

    .. deprecated:: use ``Engine.solve("completion")`` (check ``found``).
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("find_fixpoint()", 'Engine.solve("completion")')
    return solve("completion", program, database, **kwargs).run


def has_fixpoint(program: Program, database: Database | None = None, **kwargs) -> bool:
    """True iff Π, Δ has at least one fixpoint (NP-complete in general).

    .. deprecated:: use ``Engine.solve("completion").found``.
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("has_fixpoint()", 'Engine.solve("completion").found')
    return solve("completion", program, database, **kwargs).found


def count_fixpoints(program: Program, database: Database | None = None, **kwargs) -> int:
    """Number of distinct fixpoints (enumerates them all).

    .. deprecated:: use ``Engine.enumerate("completion")``.
    """
    from repro.api import enumerate_solutions, warn_deprecated

    warn_deprecated("count_fixpoints()", 'Engine.enumerate("completion")')
    return sum(1 for _ in enumerate_solutions("completion", program, database, **kwargs))
