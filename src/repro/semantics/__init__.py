"""Semantics of Datalog¬: every interpreter and model-checker in the paper.

The per-semantics free functions exported here are **deprecated shims**
over :mod:`repro.api` — prefer ``Engine(program, database).solve(name)``,
which grounds and compiles once per engine.  The checkers
(``is_stable_model``, ``is_fixpoint``, ...) remain first-class.

* fixpoints (supported models): :mod:`repro.semantics.fixpoint`,
  exact SAT enumeration in :mod:`repro.semantics.completion`;
* stable models: :mod:`repro.semantics.stable` (paper's close-based test +
  GL-reduct cross-check);
* well-founded: :mod:`repro.semantics.well_founded`;
* tie-breaking (pure and well-founded): :mod:`repro.semantics.tie_breaking`
  with choice policies in :mod:`repro.semantics.choices`;
* stratified / perfect / Fitting baselines.
"""

from repro.semantics.alternating import (
    alternating_fixpoint_model,
    gamma_operator,
    is_stable_via_gamma,
)
from repro.semantics.choices import (
    ChoicePolicy,
    FewestTrue,
    FirstSideTrue,
    MostTrue,
    RandomChoice,
    SecondSideTrue,
)
from repro.semantics.completion import (
    clark_completion,
    count_fixpoints,
    enumerate_fixpoints,
    find_fixpoint,
    has_fixpoint,
)
from repro.semantics.fitting import fitting_model
from repro.semantics.fixpoint import FixpointViolation, check_fixpoint, is_fixpoint
from repro.semantics.modular import ModularResult, modular_well_founded_model
from repro.semantics.perfect import is_locally_stratified, perfect_model
from repro.semantics.stable import (
    enumerate_stable_models,
    find_stable_model,
    has_stable_model,
    is_stable_model,
    reduct_least_model,
)
from repro.semantics.stratified import (
    Stratification,
    is_stratified,
    stratification,
    stratified_model,
)
from repro.semantics.tie_breaking import (
    TieBreakingRun,
    TieChoice,
    enumerate_tie_breaking_models,
    pure_tie_breaking,
    well_founded_tie_breaking,
)
from repro.semantics.queries import QueryResult, query
from repro.semantics.well_founded import WellFoundedRun, well_founded_model

__all__ = [
    "ChoicePolicy",
    "ModularResult",
    "QueryResult",
    "modular_well_founded_model",
    "alternating_fixpoint_model",
    "gamma_operator",
    "is_stable_via_gamma",
    "query",
    "FewestTrue",
    "FirstSideTrue",
    "FixpointViolation",
    "MostTrue",
    "RandomChoice",
    "SecondSideTrue",
    "Stratification",
    "TieBreakingRun",
    "TieChoice",
    "WellFoundedRun",
    "check_fixpoint",
    "clark_completion",
    "count_fixpoints",
    "enumerate_fixpoints",
    "enumerate_stable_models",
    "enumerate_tie_breaking_models",
    "find_fixpoint",
    "find_stable_model",
    "fitting_model",
    "has_fixpoint",
    "has_stable_model",
    "is_fixpoint",
    "is_locally_stratified",
    "is_stable_model",
    "is_stratified",
    "perfect_model",
    "pure_tie_breaking",
    "reduct_least_model",
    "stratification",
    "stratified_model",
    "well_founded_model",
    "well_founded_tie_breaking",
]
