"""The alternating-fixpoint characterization of the well-founded model.

Van Gelder's classic construction (cited in the paper via [VRS]): let
Γ(S) be the least model of the Gelfond-Lifschitz reduct of the ground
program w.r.t. the true-set S.  Γ is antimonotone, so Γ² is monotone; the
well-founded model is

* true  atoms:  lfp(Γ²)  — the limit of Γ²(∅) ⊆ Γ⁴(∅) ⊆ ...
* false atoms:  complement of gfp(Γ²) = complement of Γ(lfp(Γ²))
* undefined:    the gap between the two.

This is a *second, independent implementation* of the §2 semantics — it
never touches the ground-graph machinery (no close(), no unfounded sets) —
used by the test suite to cross-validate Algorithm Well-Founded, and by the
stable-model theory: S is stable iff Γ(S) = S.
"""

from __future__ import annotations

from collections import deque

from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground
from repro.datalog.program import Program
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation

__all__ = ["gamma_operator", "alternating_fixpoint_model", "is_stable_via_gamma"]


def _gamma(gp: GroundProgram, true_set: set[int], edb_true: set[int]) -> set[int]:
    """Γ(S): least model of the reduct w.r.t. S, over the ground program.

    Instances with a negative body atom in S are deleted; remaining
    negative literals are dropped; the positive cascade then runs with
    counters (EDB atoms of Δ seed it).
    """
    pending: list[int] = []
    pos_occ: dict[int, list[int]] = {}
    queue: deque[int] = deque()
    for r_index, gr in enumerate(gp.rules):
        if any(a in true_set for a in gr.neg):
            pending.append(-1)  # deleted by the reduct
            continue
        live_pos = [a for a in gr.pos if a not in edb_true]
        pending.append(len(live_pos))
        for a in live_pos:
            pos_occ.setdefault(a, []).append(r_index)
        if not live_pos:
            queue.append(r_index)

    derived: set[int] = set(edb_true)
    result: set[int] = set(edb_true)
    while queue:
        r_index = queue.popleft()
        head = gp.rules[r_index].head
        if head in derived:
            continue
        derived.add(head)
        result.add(head)
        for waiting in pos_occ.get(head, ()):
            pending[waiting] -= 1
            if pending[waiting] == 0:
                queue.append(waiting)
    return result


def gamma_operator(gp: GroundProgram) -> "callable":
    """A Γ closure over a ground program: ``gamma(true_ids) -> true_ids``.

    ``true_ids`` are atom-table ids; Δ's atoms (EDB facts and initial IDB
    facts — the uniform case) are always included in the output, since they
    are true unconditionally.
    """
    delta_true = {
        index
        for index in range(gp.atom_count)
        if gp.database.contains_atom(gp.atoms.atom(index))
    }

    def gamma(true_set: set[int]) -> set[int]:
        return _gamma(gp, true_set, delta_true)

    return gamma


def alternating_fixpoint_model(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
) -> Interpretation:
    """The well-founded model via the alternating fixpoint of Γ².

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("alternating")``.

    >>> from repro.datalog.parser import parse_program
    >>> from repro.datalog.atoms import Atom
    >>> m = alternating_fixpoint_model(parse_program("p :- not q. q :- not p. r :- r."))
    >>> m.value(Atom("r")), m.value(Atom("p"))
    (False, None)
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("alternating_fixpoint_model()", 'Engine.solve("alternating")')
    return solve(
        "alternating",
        program,
        database,
        grounding=grounding,
        ground_program=ground_program,
    ).run


def _alternating_fixpoint_model(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "relevant",
    ground_program: GroundProgram | None = None,
) -> Interpretation:
    """Implementation behind the ``alternating`` registry entry.

    Iterates ``under ← Γ(over)``, ``over ← Γ(under)`` from ``under = ∅``
    until both stabilize; atoms in ``under`` are true, atoms outside
    ``over`` are false, the gap is undefined.  Agrees with
    :func:`repro.semantics.well_founded.well_founded_model` on every input
    (property-tested).
    """
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    gamma = gamma_operator(gp)

    under: set[int] = set()
    over = gamma(under)
    while True:
        new_under = gamma(over)
        new_over = gamma(new_under)
        if new_under == under and new_over == over:
            break
        under, over = new_under, new_over

    status = []
    for index in range(gp.atom_count):
        if index in under:
            status.append(TRUE)
        elif index not in over:
            status.append(FALSE)
        else:
            status.append(UNDEF)
    return Interpretation(gp, tuple(status))


def is_stable_via_gamma(
    program: Program,
    database: Database,
    candidate_true: frozenset,
    *,
    grounding: GroundingMode = "edb",
) -> bool:
    """Third stable-model checker: S is stable iff Γ(S) = S.

    Uses the ``edb`` grounding, which materializes every atom that can be
    true in any fixpoint (and hence in any stable model); candidates with
    unmaterialized true atoms are rejected.
    """
    gp = ground(program, database, mode=grounding)
    table = gp.atoms
    true_ids: set[int] = set()
    for atom in candidate_true:
        index = table.get(atom)
        if index is None:
            if database.contains_atom(atom):
                continue  # Δ atoms are implicit
            return False
        true_ids.add(index)
    # Δ atoms must be in the candidate's id set (they are true in S).
    for index in range(gp.atom_count):
        if gp.database.contains_atom(table.atom(index)):
            true_ids.add(index)
            if table.atom(index) not in candidate_true:
                return False
    gamma = gamma_operator(gp)
    return gamma(true_ids) == true_ids
