"""Query-level API: ask for a predicate's rows under a chosen semantics.

The downstream-friendly wrapper over the interpreters: restrict the program
to the query's support cone (a sound cut — see
:func:`repro.analysis.dependencies.relevant_subprogram`), evaluate under
the requested semantics, and return the rows with three-valued results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal as TypingLiteral, Optional

from repro.analysis.dependencies import relevant_subprogram
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.errors import SemanticsError
from repro.semantics.choices import ChoicePolicy

__all__ = ["QueryResult", "query"]

Semantics = TypingLiteral["well-founded", "tie-breaking"]


@dataclass(frozen=True)
class QueryResult:
    """Rows of one queried predicate, three-valued.

    ``true_rows`` / ``undefined_rows`` are sets of constant-value tuples;
    everything else over the universe is false (closed world).
    """

    predicate: str
    true_rows: frozenset[tuple]
    undefined_rows: frozenset[tuple]
    total: bool

    def holds(self, *values) -> bool:
        """True iff the row is true (undefined rows do not hold)."""
        return tuple(values) in self.true_rows

    def __len__(self) -> int:
        return len(self.true_rows)


def query(
    program: Program,
    database: Database,
    predicate: str,
    *,
    semantics: Semantics = "well-founded",
    policy: Optional[ChoicePolicy] = None,
    grounding: str = "relevant",
) -> QueryResult:
    """Evaluate ``predicate`` under the chosen semantics.

    Only the rules in the predicate's support cone are grounded and
    evaluated; the rest of the program cannot influence the answer.

    >>> from repro.datalog.parser import parse_database, parse_program
    >>> prog = parse_program("win(X) :- move(X, Y), not win(Y). junk :- not junk.")
    >>> db = parse_database("move(1, 2).")
    >>> result = query(prog, db, "win")
    >>> result.holds(1), result.total
    (True, True)
    """
    from repro.api import Engine, warn_deprecated

    warn_deprecated("query()", "Engine.query() / Engine.query_many()")
    if predicate not in program.predicates and predicate not in database.predicates():
        raise SemanticsError(f"unknown predicate {predicate!r}")
    if semantics == "well-founded":
        name = "well_founded"
        options = {}
    elif semantics == "tie-breaking":
        name = "tie_breaking"
        options = {"policy": policy}
    else:
        raise SemanticsError(f"unknown semantics {semantics!r}")
    restricted = relevant_subprogram(program, [predicate])
    engine = Engine(restricted, database, grounding=grounding)  # type: ignore[arg-type]
    return engine.query(predicate, semantics=name, **options)
