"""Local stratification and the perfect model [Pr] — referenced in §3.

A program is *locally stratified* for Δ iff no strongly connected component
of the ground graph contains a negative edge.  Przymusinski showed every
such Π, Δ has a fixpoint, the *perfect model*, minimizing positive literals
at lower levels; the paper notes that such components are trivial ties
(one empty side) and both tie-breaking interpreters compute exactly the
perfect model on them.

The evaluator here is independent of the interpreters: it processes the
ground graph's SCC condensation dependency-first, running a positive
derivation cascade inside each component with all lower components fixed.
Cross-validated against the tie-breaking interpreters in the test suite.
"""

from __future__ import annotations

from collections import deque

from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground
from repro.datalog.program import Program
from repro.errors import SemanticsError
from repro.graphs.scc import strongly_connected_components
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation

__all__ = ["is_locally_stratified", "perfect_model"]


def _static_components(gp: GroundProgram) -> tuple[list[list[int]], list[int]]:
    """SCCs of the *static* ground graph (atoms 0.., rules shifted by atom count)."""
    n_atoms = gp.atom_count
    n_nodes = n_atoms + gp.rule_count
    succ: list[list[int]] = [[] for _ in range(n_nodes)]
    for r_index, gr in enumerate(gp.rules):
        node = n_atoms + r_index
        succ[node].append(gr.head)
        for a in gr.pos:
            succ[a].append(node)
        for a in gr.neg:
            succ[a].append(node)
    components = strongly_connected_components(n_nodes, lambda u: succ[u])
    comp_id = [0] * n_nodes
    for cid, comp in enumerate(components):
        for node in comp:
            comp_id[node] = cid
    return components, comp_id


def is_locally_stratified(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
) -> bool:
    """True iff no SCC of G(Π, Δ) contains a negative edge."""
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    _, comp_id = _static_components(gp)
    n_atoms = gp.atom_count
    for r_index, gr in enumerate(gp.rules):
        rule_comp = comp_id[n_atoms + r_index]
        for a in gr.neg:
            if comp_id[a] == rule_comp:
                return False
    return True


def perfect_model(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
) -> Interpretation:
    """The perfect model of a locally stratified Π, Δ.

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("perfect")``.

    Raises :class:`SemanticsError` when some ground SCC contains a negative
    edge (the program is not locally stratified for this database).
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("perfect_model()", 'Engine.solve("perfect")')
    return solve(
        "perfect",
        program,
        database,
        grounding=grounding,
        ground_program=ground_program,
    ).run


def _perfect_model(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
) -> Interpretation:
    """Implementation behind the ``perfect`` registry entry."""
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    database = gp.database
    components, comp_id = _static_components(gp)
    n_atoms = gp.atom_count

    # Local stratification check inline (comp structure already built).
    for r_index, gr in enumerate(gp.rules):
        rule_comp = comp_id[n_atoms + r_index]
        for a in gr.neg:
            if comp_id[a] == rule_comp:
                raise SemanticsError(
                    "program is not locally stratified for this database: ground "
                    f"SCC of {gp.atoms.atom(gr.head)} contains a negative edge"
                )

    status = [UNDEF] * n_atoms
    edb = gp.program.edb_predicates
    pending = [len(gr.pos) + len(gr.neg) for gr in gp.rules]
    dead = [False] * gp.rule_count
    pos_occ: list[list[int]] = [[] for _ in range(n_atoms)]
    neg_occ: list[list[int]] = [[] for _ in range(n_atoms)]
    ready_rules: list[deque[int]] = [deque() for _ in range(len(components))]
    for r_index, gr in enumerate(gp.rules):
        for a in gr.pos:
            pos_occ[a].append(r_index)
        for a in gr.neg:
            neg_occ[a].append(r_index)
        if pending[r_index] == 0:
            ready_rules[comp_id[gr.head]].append(r_index)

    def settle(atom_id: int, value: int) -> None:
        """Give an atom its final value and update rule counters."""
        status[atom_id] = value
        satisfied, violated = (
            (pos_occ[atom_id], neg_occ[atom_id])
            if value == TRUE
            else (neg_occ[atom_id], pos_occ[atom_id])
        )
        for r in violated:
            dead[r] = True
        for r in satisfied:
            pending[r] -= 1
            if pending[r] == 0 and not dead[r]:
                ready_rules[comp_id[gp.rules[r].head]].append(r)

    # Dependency-first order is the reversed Tarjan output.
    for cid in reversed(range(len(components))):
        component_atoms = [n for n in components[cid] if n < n_atoms]
        # EDB atoms and Δ atoms are fixed a priori.
        cascade: deque[int] = ready_rules[cid]
        for a in component_atoms:
            atom = gp.atoms.atom(a)
            if database.contains_atom(atom):
                settle(a, TRUE)
            elif atom.predicate in edb:
                settle(a, FALSE)
        while cascade:
            r = cascade.popleft()
            if dead[r]:
                continue
            head = gp.rules[r].head
            if status[head] == UNDEF:
                settle(head, TRUE)
        for a in component_atoms:
            if status[a] == UNDEF:
                settle(a, FALSE)
    return Interpretation(gp, tuple(status))
