"""Fixpoints (supported models) — §2 of the paper.

A *fixpoint* of Π for Δ is a total model M in which an atom is true iff it
belongs to Δ or is the head of an instantiated rule whose body is true
under M ("supported model" [ABW]).  Since a total model is determined by
its true set (everything else false), candidates are passed as sets of
ground atoms.

:func:`check_fixpoint` verifies a candidate *exactly and without grounding
the whole universe*: supportedness joins rule bodies against the
candidate's true set, and closure violations are found by the same joins —
so the check is polynomial in ``|M| + |Π|`` even for programs whose full
grounding is astronomically large (used heavily by the Theorem 6 tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Optional

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import universe_of
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant
from repro.engine.facts import FactStore
from repro.engine.matching import (
    Binding,
    enumerate_bindings,
    match_atom_row,
    order_body_for_join,
)
from repro.errors import SemanticsError
from repro.ground.model import Interpretation

__all__ = ["FixpointViolation", "check_fixpoint", "is_fixpoint", "normalize_candidate"]


@dataclass(frozen=True)
class FixpointViolation:
    """Why a candidate model is not a fixpoint.

    ``kind`` is one of:

    * ``"edb-mismatch"`` — a true EDB atom outside Δ, or a Δ atom missing;
    * ``"unsupported"``  — a true IDB atom outside Δ with no rule instance
      whose body is true;
    * ``"unsatisfied-rule"`` — a rule instance with a true body whose head
      is false (``rule`` carries the instantiated rule).
    """

    kind: str
    atom: Atom
    rule: Optional[Rule] = None

    def __str__(self) -> str:
        if self.kind == "unsatisfied-rule":
            return f"unsatisfied rule instance {self.rule} (head {self.atom} is false)"
        return f"{self.kind}: {self.atom}"


def normalize_candidate(candidate: Iterable[Atom] | Interpretation) -> frozenset[Atom]:
    """Accept an interpretation or an iterable of atoms; return the true set."""
    if isinstance(candidate, Interpretation):
        if not candidate.is_total:
            raise SemanticsError("fixpoint candidates must be total models")
        return candidate.true_set()
    atoms = frozenset(candidate)
    for a in atoms:
        if not a.is_ground:
            raise SemanticsError(f"candidate contains non-ground atom {a}")
    return atoms


def _negatives_satisfiable(
    rule: Rule,
    binding: Binding,
    store: FactStore,
    universe: tuple[Constant, ...],
    max_branch: int,
) -> Iterable[Binding]:
    """Extensions of ``binding`` (over the rule's remaining variables) whose
    negative literals are all false in the candidate (i.e. atoms not in the
    true store)."""
    unbound = [v for v in rule.variables() if v not in binding]
    if unbound and not universe:
        return
    total = len(universe) ** len(unbound) if unbound else 1
    if total > max_branch:
        raise SemanticsError(
            f"rule {rule} needs {total} instantiations of unbound variables; "
            "raise max_branch to allow this"
        )
    for values in product(universe, repeat=len(unbound)):
        extended = dict(binding)
        extended.update(zip(unbound, values))
        if all(
            not store.contains_atom(lit.atom.substitute(extended))
            for lit in rule.negative_body()
        ):
            yield extended


def check_fixpoint(
    program: Program,
    database: Database,
    candidate: Iterable[Atom] | Interpretation,
    *,
    max_branch: int = 200_000,
) -> Optional[FixpointViolation]:
    """Verify the fixpoint conditions; return the first violation or None.

    >>> from repro.datalog.parser import parse_database, parse_program
    >>> from repro.datalog.atoms import atom
    >>> prog = parse_program("p(X) :- e(X), not q(X). q(X) :- e(X), not p(X).")
    >>> db = parse_database("e(1).")
    >>> check_fixpoint(prog, db, {atom("e", 1), atom("p", 1)}) is None
    True
    >>> check_fixpoint(prog, db, {atom("e", 1)}).kind
    'unsatisfied-rule'
    """
    true_atoms = normalize_candidate(candidate)
    universe = universe_of(program, database)

    # EDB part must equal Δ's EDB part; Δ must be contained in M.
    edb = program.edb_predicates
    for a in true_atoms:
        if a.predicate in edb and not database.contains_atom(a):
            return FixpointViolation("edb-mismatch", a)
    for a in database.atoms():
        if a not in true_atoms:
            return FixpointViolation("edb-mismatch", a)

    store = FactStore()
    for a in true_atoms:
        store.add_atom(a)

    # Support: every true atom outside Δ needs a rule instance with true body.
    for a in true_atoms:
        if database.contains_atom(a):
            continue
        if not _is_supported(program, a, store, universe, max_branch):
            return FixpointViolation("unsupported", a)

    # Closure: no rule instance may have a true body and a false head.
    for rule in program.rules:
        ordered = order_body_for_join(list(rule.positive_body()))
        for binding in enumerate_bindings(ordered, store):
            for full in _negatives_satisfiable(rule, binding, store, universe, max_branch):
                head = rule.head.substitute(full)
                if not store.contains_atom(head):
                    return FixpointViolation(
                        "unsatisfied-rule", head, rule.substitute(full)
                    )
    return None


def _is_supported(
    program: Program,
    atom: Atom,
    store: FactStore,
    universe: tuple[Constant, ...],
    max_branch: int,
) -> bool:
    for rule in program.rules_for(atom.predicate):
        seed = match_atom_row(rule.head, atom.args, {})
        if seed is None:
            continue
        ordered = order_body_for_join(list(rule.positive_body()))
        for binding in enumerate_bindings(ordered, store, seed):
            for _ in _negatives_satisfiable(rule, binding, store, universe, max_branch):
                return True
    return False


def is_fixpoint(
    program: Program,
    database: Database,
    candidate: Iterable[Atom] | Interpretation,
    *,
    max_branch: int = 200_000,
) -> bool:
    """True iff the candidate is a fixpoint of Π for Δ (§2)."""
    return check_fixpoint(program, database, candidate, max_branch=max_branch) is None
