"""Stratification semantics [CH, ABW] — the baseline semantics of §1.

A program is *stratified* iff its program graph has no cycle containing a
negative edge.  IDB predicates then split into levels (strata) such that
each level depends positively on its own or lower levels and negatively
only on lower levels; evaluating least fixpoints level-by-level yields the
standard model.

Theorem 5 of the paper characterizes stratified programs as exactly those
that are *structurally well-founded total*, which makes this module both a
baseline semantics and a test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional

from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import universe_of
from repro.datalog.program import Program
from repro.engine.facts import FactStore
from repro.engine.matching import enumerate_bindings, order_body_for_join
from repro.errors import SemanticsError
from repro.analysis.program_graph import program_graph
from repro.graphs.scc import strongly_connected_components

__all__ = ["Stratification", "stratification", "is_stratified", "stratified_model"]


@dataclass(frozen=True)
class Stratification:
    """Levels for a stratified program.

    ``level`` maps every predicate to its stratum (EDB predicates are
    level 0 — the paper's "zeroth level"); ``strata[i]`` lists the
    predicates of level ``i``.
    """

    level: dict[str, int]
    strata: tuple[frozenset[str], ...]


def stratification(program: Program) -> Optional[Stratification]:
    """Compute strata, or None if the program is not stratified.

    A single SCC of G(Π) containing a negative edge (including a negative
    self-loop) defeats stratification; otherwise levels are the longest
    count of negative edges on any path into the predicate.
    """
    graph = program_graph(program)
    succ = graph.successor_lists()
    components = strongly_connected_components(
        graph.node_count, lambda u: (v for v, _ in succ[u])
    )
    comp_id = {}
    for cid, comp in enumerate(components):
        for node in comp:
            comp_id[node] = cid

    # Negative edge inside a component => unstratifiable.
    for u in range(graph.node_count):
        for v, positive in succ[u]:
            if not positive and comp_id[u] == comp_id[v]:
                return None

    # Components in dependency-first order: reversed Tarjan output.
    comp_level = [0] * len(components)
    for cid in reversed(range(len(components))):
        for u in components[cid]:
            for v, positive in succ[u]:
                target = comp_id[v]
                if target != cid:
                    bump = 0 if positive else 1
                    comp_level[target] = max(comp_level[target], comp_level[cid] + bump)

    level = {
        graph.label_of(node): comp_level[comp_id[node]] for node in range(graph.node_count)
    }
    for predicate in program.edb_predicates:
        level[predicate] = 0
    height = max(level.values(), default=0)
    strata = tuple(
        frozenset(p for p, l in level.items() if l == i) for i in range(height + 1)
    )
    return Stratification(level, strata)


def is_stratified(program: Program) -> bool:
    """True iff G(Π) has no cycle containing a negative edge."""
    return stratification(program) is not None


def stratified_model(
    program: Program,
    database: Database,
    *,
    max_branch: int = 200_000,
) -> frozenset[Atom]:
    """The standard (perfect) model of a stratified program, as its true set.

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("stratified")``.

    >>> from repro.datalog.parser import parse_database, parse_program
    >>> prog = parse_program("odd(X) :- succ(Y, X), not odd(Y).")
    >>> # not stratified? odd depends negatively on itself -> SemanticsError
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("stratified_model()", 'Engine.solve("stratified")')
    return solve("stratified", program, database, max_branch=max_branch).run


def _stratified_model(
    program: Program,
    database: Database,
    *,
    max_branch: int = 200_000,
) -> frozenset[Atom]:
    """Implementation behind the ``stratified`` registry entry.

    Evaluates strata bottom-up: within a stratum, a least fixpoint where
    negative literals are checked against the (already final) lower strata.
    Initial IDB facts of Δ participate as seeds — the uniform setting.
    """
    strat = stratification(program)
    if strat is None:
        raise SemanticsError("program is not stratified")
    universe = universe_of(program, database)
    store = FactStore.from_database(database)

    height = len(strat.strata)
    for current in range(height):
        rules = [r for r in program.rules if strat.level[r.head.predicate] == current]
        changed = True
        while changed:
            changed = False
            for rule in rules:
                ordered = order_body_for_join(list(rule.positive_body()))
                derived = []  # buffered: the store must not grow mid-join
                for binding in enumerate_bindings(ordered, store):
                    unbound = [v for v in rule.variables() if v not in binding]
                    if unbound and not universe:
                        continue
                    combos = len(universe) ** len(unbound) if unbound else 1
                    if combos > max_branch:
                        raise SemanticsError(
                            f"rule {rule}: {combos} unbound instantiations exceed max_branch"
                        )
                    for values in product(universe, repeat=len(unbound)):
                        extended = dict(binding)
                        extended.update(zip(unbound, values))
                        if any(
                            store.contains_atom(lit.atom.substitute(extended))
                            for lit in rule.negative_body()
                        ):
                            continue
                        derived.append(rule.head.substitute(extended))
                for head in derived:
                    if store.add_atom(head):
                        changed = True
    return frozenset(store.atoms())
