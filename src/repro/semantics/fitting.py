"""The Fitting (Kripke-Kleene) three-valued semantics.

Not part of the paper's toolbox, but the natural lower bound to compare
against: the Fitting model is the least fixpoint of the three-valued
immediate-consequence operator, and the well-founded model always extends
it (WF additionally falsifies unfounded *sets*, e.g. ``p :- p`` is false
under WF but undefined under Fitting).  The test suite uses this
containment as a cross-check on both implementations, and the examples use
it to show where the tie-breaking ladder starts.

Requires full grounding: relevant grounding prunes instances whose bodies
Fitting regards as *undefined*, not false.
"""

from __future__ import annotations


from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground
from repro.datalog.program import Program
from repro.errors import SemanticsError
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation

__all__ = ["fitting_model"]


def fitting_model(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
) -> Interpretation:
    """The Kripke-Kleene / Fitting three-valued model of Π, Δ.

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("fitting")``.

    >>> from repro.datalog.parser import parse_program
    >>> from repro.datalog.atoms import Atom
    >>> m = fitting_model(parse_program("p :- p."))
    >>> m.value(Atom("p")) is None   # undefined: Fitting does not falsify loops
    True
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("fitting_model()", 'Engine.solve("fitting")')
    return solve(
        "fitting",
        program,
        database,
        grounding=grounding,
        ground_program=ground_program,
    ).run


def _fitting_model(
    program: Program,
    database: Database | None = None,
    *,
    grounding: GroundingMode = "full",
    ground_program: GroundProgram | None = None,
) -> Interpretation:
    """Implementation behind the ``fitting`` registry entry.

    Iterates the three-valued consequence operator to its least fixpoint:
    an atom becomes true when some instance body is (all) true, false when
    every instance body contains a false literal.
    """
    gp = ground_program or ground(program, database or Database(), mode=grounding)
    if gp.mode != "full":
        raise SemanticsError(
            "fitting_model requires full grounding (relevant pruning treats "
            "undefined bodies as false)"
        )
    database = gp.database
    n_atoms = gp.atom_count
    status = [UNDEF] * n_atoms
    edb = gp.program.edb_predicates

    by_head: dict[int, list[int]] = {}
    for r_index, gr in enumerate(gp.rules):
        by_head.setdefault(gr.head, []).append(r_index)

    for index in range(n_atoms):
        atom = gp.atoms.atom(index)
        if database.contains_atom(atom):
            status[index] = TRUE
        elif atom.predicate in edb:
            status[index] = FALSE

    def body_value(r_index: int) -> int:
        """Three-valued conjunction of the instance's body."""
        gr = gp.rules[r_index]
        value = TRUE
        for a in gr.pos:
            s = status[a]
            if s == FALSE:
                return FALSE
            if s == UNDEF:
                value = UNDEF
        for a in gr.neg:
            s = status[a]
            if s == TRUE:
                return FALSE
            if s == UNDEF:
                value = UNDEF
        return value

    changed = True
    while changed:
        changed = False
        for index in range(n_atoms):
            if status[index] != UNDEF:
                continue
            atom = gp.atoms.atom(index)
            instances = by_head.get(index, ())
            if not instances:
                status[index] = FALSE
                changed = True
                continue
            values = [body_value(r) for r in instances]
            if any(v == TRUE for v in values):
                status[index] = TRUE
                changed = True
            elif all(v == FALSE for v in values):
                status[index] = FALSE
                changed = True
    return Interpretation(gp, tuple(status))
