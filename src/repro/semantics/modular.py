"""Modular well-founded evaluation over the predicate condensation.

The well-founded semantics splits along the program graph's SCC
condensation: evaluate one strongly connected predicate component at a
time, dependency-first, treating lower components' atoms as settled.
Lower atoms that the well-founded semantics left *undefined* are carried
into the sub-evaluation by a two-rule **tie gadget** —

    α :- ¬auxα.     auxα :- ¬α.

— which the well-founded semantics leaves undefined, propagating
three-valuedness exactly (a ground even cycle is the canonical undefined
pair, §3).  The result equals the monolithic well-founded model on every
input (differentially tested), while grounding each component against only
its own slice of the program — the classic win when a program has many
independent layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.program_graph import program_graph
from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, ground, universe_of
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.graphs.scc import strongly_connected_components
from repro.semantics.well_founded import _well_founded_model

__all__ = ["ModularResult", "modular_well_founded_model"]

_AUX_PREFIX = "undef_aux__"


@dataclass(frozen=True)
class ModularResult:
    """Three-valued outcome of a modular evaluation.

    ``true_atoms`` / ``undefined_atoms`` cover the IDB; everything else is
    false (EDB atoms resolve against Δ via :meth:`value`).
    """

    true_atoms: frozenset[Atom]
    undefined_atoms: frozenset[Atom]
    database: Database
    component_count: int

    @property
    def is_total(self) -> bool:
        """True iff no atom was left undefined."""
        return not self.undefined_atoms

    def value(self, atom: Atom):
        """True / False / None for any ground atom."""
        if atom in self.true_atoms or self.database.contains_atom(atom):
            return True
        if atom in self.undefined_atoms:
            return None
        return False


def modular_well_founded_model(
    program: Program,
    database: Database,
    *,
    grounding: GroundingMode = "relevant",
) -> ModularResult:
    """The well-founded model, one predicate component at a time.

    .. deprecated:: delegates to the :mod:`repro.api` registry; new code
       should use ``Engine.solve("modular")``.

    >>> from repro.datalog.parser import parse_database, parse_program
    >>> prog = parse_program("a :- not b. b :- not a. safe :- e, not a.")
    >>> result = modular_well_founded_model(prog, parse_database("e."))
    >>> sorted(str(x) for x in result.undefined_atoms)
    ['a', 'b', 'safe']
    """
    from repro.api import solve, warn_deprecated

    warn_deprecated("modular_well_founded_model()", 'Engine.solve("modular")')
    return solve("modular", program, database, grounding=grounding).run


def _modular_well_founded_model(
    program: Program,
    database: Database,
    *,
    grounding: GroundingMode = "relevant",
) -> ModularResult:
    """Implementation behind the ``modular`` registry entry."""
    graph = program_graph(program)
    succ = graph.successor_lists()
    components = strongly_connected_components(
        graph.node_count, lambda u: (v for v, _ in succ[u])
    )
    idb = program.idb_predicates
    rules_by_head: dict[str, list[Rule]] = {}
    for rule in program.rules:
        rules_by_head.setdefault(rule.head.predicate, []).append(rule)

    decided = database.copy()  # accumulates true atoms (lower components + Δ)
    undefined: set[Atom] = set()
    true_idb: set[Atom] = set()
    evaluated = 0
    # The universe is global: a component's rules must be instantiated over
    # every constant of the whole program and database, not just its slice.
    global_universe = universe_of(program, database)

    # Reversed Tarjan output = dependency-first (bodies before heads).
    for cid in reversed(range(len(components))):
        predicates = [graph.label_of(node) for node in components[cid]]
        component_rules = [
            rule for predicate in predicates for rule in rules_by_head.get(predicate, [])
        ]
        if not component_rules:
            continue  # pure-EDB component
        evaluated += 1

        # Tie gadgets for lower-component atoms left undefined, restricted
        # to the predicates this component actually references.
        referenced = {
            lit.predicate for rule in component_rules for lit in rule.body
        }
        gadget_rules: list[Rule] = []
        for atom in undefined:
            if atom.predicate not in referenced:
                continue
            aux = Atom(_AUX_PREFIX + atom.predicate, atom.args)
            gadget_rules.append(Rule(atom, (Literal(aux, False),)))
            gadget_rules.append(Rule(aux, (Literal(atom, False),)))

        subprogram = Program(tuple(component_rules) + tuple(gadget_rules))
        gp = ground(
            subprogram, decided, mode=grounding, extra_constants=global_universe
        )
        run = _well_founded_model(subprogram, decided, ground_program=gp)

        component_set = set(predicates)
        for atom in run.model.true_atoms():
            if atom.predicate in component_set and atom.predicate in idb:
                true_idb.add(atom)
                decided.add_atom(atom)
        for atom in run.model.undefined_atoms():
            if atom.predicate in component_set:
                undefined.add(atom)

    return ModularResult(
        true_atoms=frozenset(true_idb),
        undefined_atoms=frozenset(undefined),
        database=database,
        component_count=evaluated,
    )
