"""Strongly connected components via an iterative Tarjan algorithm.

The paper's interpreters repeatedly compute the SCCs of the (remaining)
ground graph to find *bottom components* (no incoming edges from other
components).  The implementation here works on index-based adjacency lists
so it can serve both :class:`~repro.graphs.signed_digraph.SignedDigraph`
and the live ground-graph state, and it is iterative so deep recursion on
long chains cannot hit the Python recursion limit.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = ["strongly_connected_components", "scc_of_signed_digraph"]


def strongly_connected_components(
    node_count: int,
    successors: Callable[[int], Iterable[int]],
    nodes: Iterable[int] | None = None,
) -> list[list[int]]:
    """Tarjan's algorithm, iteratively, over nodes ``0..node_count-1``.

    ``successors(u)`` must yield the out-neighbours of ``u``.  ``nodes``
    optionally restricts the traversal to a subset (used on the live ground
    graph, where dead nodes are skipped); successors must then also stay
    within the subset.

    Returns the list of components, each a list of node indices, in
    *reverse topological order* (every edge leaving a component points to a
    component earlier in the list).  This is the natural output order of
    Tarjan's algorithm and is relied upon by callers that need bottom-up
    processing.
    """
    index = [-1] * node_count  # discovery index, -1 = unvisited
    lowlink = [0] * node_count
    on_stack = [False] * node_count
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    roots = range(node_count) if nodes is None else nodes
    # Explicit DFS stack as two parallel lists (node, successor iterator):
    # avoids a tuple allocation per visited node and unpacking per step.
    work_node: list[int] = []
    work_iter: list[object] = []
    for root in roots:
        if index[root] != -1:
            continue
        work_node.append(root)
        work_iter.append(iter(successors(root)))
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work_node:
            u = work_node[-1]
            it = work_iter[-1]
            advanced = False
            ll_u = lowlink[u]
            for v in it:  # type: ignore[union-attr]
                iv = index[v]
                if iv == -1:
                    index[v] = lowlink[v] = counter
                    counter += 1
                    stack.append(v)
                    on_stack[v] = True
                    work_node.append(v)
                    work_iter.append(iter(successors(v)))
                    advanced = True
                    break
                if on_stack[v] and iv < ll_u:
                    ll_u = iv
            lowlink[u] = ll_u
            if advanced:
                continue
            work_node.pop()
            work_iter.pop()
            if work_node:
                parent = work_node[-1]
                if ll_u < lowlink[parent]:
                    lowlink[parent] = ll_u
            if ll_u == index[u]:
                component: list[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == u:
                        break
                components.append(component)
    return components


def scc_of_signed_digraph(graph) -> list[list[object]]:
    """SCCs of a :class:`SignedDigraph`, as lists of node *labels*.

    Components are returned in reverse topological order (see
    :func:`strongly_connected_components`).
    """
    succ = graph.successor_lists()
    components = strongly_connected_components(graph.node_count, lambda u: (v for v, _ in succ[u]))
    return [[graph.label_of(i) for i in comp] for comp in components]
