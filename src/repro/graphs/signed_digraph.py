"""Signed directed graphs: digraphs whose edges carry a +/− sign.

This is the graph model used throughout the paper: the program graph G(Π)
and the ground graph G(Π, Δ) are both signed digraphs ``(V, E+, E−)``.

Nodes are arbitrary hashable objects; internally they are mapped to dense
integer indices so the algorithms in :mod:`repro.graphs.scc` and
:mod:`repro.graphs.ties` can run on flat adjacency lists.

Parallel edges with different signs are allowed (e.g. a predicate occurring
both positively and negatively in one rule body), and are significant: a
positive and a negative edge between the same pair of nodes immediately
create cycles of both parities once the pair lies on a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Iterable, Iterator, Sequence, TypeVar

__all__ = ["SignedDigraph", "SignedEdge"]

N = TypeVar("N", bound=Hashable)

POSITIVE = True
NEGATIVE = False


@dataclass(frozen=True, slots=True)
class SignedEdge(Generic[N]):
    """A directed edge ``source → target`` with a sign.

    ``positive`` is ``True`` for E+ membership, ``False`` for E−.
    """

    source: N
    target: N
    positive: bool

    def __str__(self) -> str:
        arrow = "→" if self.positive else "⊸"
        return f"{self.source} {arrow} {self.target}"


class SignedDigraph(Generic[N]):
    """A mutable signed digraph over hashable node labels.

    >>> g = SignedDigraph()
    >>> g.add_edge("p", "q", positive=False)
    >>> g.add_edge("q", "p", positive=True)
    >>> sorted(g.nodes)
    ['p', 'q']
    >>> g.edge_count
    2
    """

    def __init__(self) -> None:
        self._index: dict[N, int] = {}
        self._labels: list[N] = []
        # adjacency: per node index, list of (neighbour_index, sign)
        self._succ: list[list[tuple[int, bool]]] = []
        self._pred: list[list[tuple[int, bool]]] = []
        self._edge_count = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node: N) -> int:
        """Ensure ``node`` exists; return its dense integer index."""
        idx = self._index.get(node)
        if idx is None:
            idx = len(self._labels)
            self._index[node] = idx
            self._labels.append(node)
            self._succ.append([])
            self._pred.append([])
        return idx

    def add_edge(self, source: N, target: N, *, positive: bool) -> None:
        """Add a signed edge; duplicate (source, target, sign) triples are kept once."""
        u = self.add_node(source)
        v = self.add_node(target)
        if (v, positive) in self._succ[u]:
            return
        self._succ[u].append((v, positive))
        self._pred[v].append((u, positive))
        self._edge_count += 1

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[N, N, bool]]) -> "SignedDigraph[N]":
        """Build a graph from ``(source, target, positive)`` triples."""
        g: SignedDigraph[N] = cls()
        for source, target, positive in edges:
            g.add_edge(source, target, positive=positive)
        return g

    # -- inspection --------------------------------------------------------

    @property
    def nodes(self) -> Sequence[N]:
        """Node labels in insertion order (index order)."""
        return tuple(self._labels)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._labels)

    @property
    def edge_count(self) -> int:
        """Number of distinct signed edges."""
        return self._edge_count

    def index_of(self, node: N) -> int:
        """Dense index of ``node`` (KeyError if absent)."""
        return self._index[node]

    def label_of(self, index: int) -> N:
        """Node label at dense ``index``."""
        return self._labels[index]

    def __contains__(self, node: N) -> bool:
        return node in self._index

    def successors(self, node: N) -> Iterator[tuple[N, bool]]:
        """Yield ``(target, positive)`` pairs for edges out of ``node``."""
        for v, sign in self._succ[self._index[node]]:
            yield self._labels[v], sign

    def predecessors(self, node: N) -> Iterator[tuple[N, bool]]:
        """Yield ``(source, positive)`` pairs for edges into ``node``."""
        for u, sign in self._pred[self._index[node]]:
            yield self._labels[u], sign

    def edges(self) -> Iterator[SignedEdge[N]]:
        """Yield every edge as a :class:`SignedEdge`."""
        for u, adjacency in enumerate(self._succ):
            for v, sign in adjacency:
                yield SignedEdge(self._labels[u], self._labels[v], sign)

    def has_negative_edge(self) -> bool:
        """True iff E− is non-empty."""
        return any(not sign for adjacency in self._succ for _, sign in adjacency)

    # -- low-level access for algorithms ------------------------------------

    def successor_lists(self) -> Sequence[Sequence[tuple[int, bool]]]:
        """Raw adjacency (index-based); used by the SCC / tie algorithms."""
        return self._succ

    def predecessor_lists(self) -> Sequence[Sequence[tuple[int, bool]]]:
        """Raw reverse adjacency (index-based)."""
        return self._pred

    def __repr__(self) -> str:
        return f"SignedDigraph({self.node_count} nodes, {self.edge_count} edges)"
