"""Signed-graph substrate: SCCs, ties (Lemma 1), odd cycles, condensation."""

from repro.graphs.condensation import bottom_components, component_ids, topological_component_order
from repro.graphs.odd_cycles import (
    component_analyses,
    find_odd_cycle,
    has_odd_cycle,
    is_cycle_balanced,
)
from repro.graphs.scc import scc_of_signed_digraph, strongly_connected_components
from repro.graphs.signed_digraph import SignedDigraph, SignedEdge
from repro.graphs.ties import TieAnalysis, analyze_component, extract_simple_odd_cycle

__all__ = [
    "SignedDigraph",
    "SignedEdge",
    "TieAnalysis",
    "analyze_component",
    "bottom_components",
    "component_analyses",
    "component_ids",
    "extract_simple_odd_cycle",
    "find_odd_cycle",
    "has_odd_cycle",
    "is_cycle_balanced",
    "scc_of_signed_digraph",
    "strongly_connected_components",
    "topological_component_order",
]
