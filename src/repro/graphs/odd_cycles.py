"""Odd-cycle detection on whole signed digraphs.

A signed digraph is *cycle-balanced* (Harary) iff no cycle carries an odd
number of negative edges — equivalently, iff every strongly connected
component is a tie (Lemma 1).  These helpers run the tie analysis across
all components and surface either the verdict or a concrete simple odd
cycle as a witness, reported in node labels.
"""

from __future__ import annotations

from typing import Optional

from repro.graphs.scc import strongly_connected_components
from repro.graphs.signed_digraph import SignedDigraph, SignedEdge
from repro.graphs.ties import TieAnalysis, analyze_component

__all__ = [
    "find_odd_cycle",
    "has_odd_cycle",
    "is_cycle_balanced",
    "component_analyses",
    "find_negative_cycle",
]


def _indexed_successors(graph: SignedDigraph):
    succ = graph.successor_lists()
    return lambda u: succ[u]


def component_analyses(graph: SignedDigraph) -> list[tuple[list[int], TieAnalysis]]:
    """Tie analysis of every SCC, in reverse topological order.

    Returns ``(component_indices, analysis)`` pairs; indices are the graph's
    dense node indices (``graph.label_of`` maps them back).
    """
    succ = _indexed_successors(graph)
    components = strongly_connected_components(graph.node_count, lambda u: (v for v, _ in succ(u)))
    return [(comp, analyze_component(comp, succ)) for comp in components]


def find_odd_cycle(graph: SignedDigraph) -> Optional[list[SignedEdge]]:
    """A simple cycle with an odd number of negative edges, or ``None``.

    The cycle is returned as a list of :class:`SignedEdge` over node labels,
    in traversal order (the target of the last edge is the source of the
    first).
    """
    for _, analysis in component_analyses(graph):
        if not analysis.is_tie:
            assert analysis.odd_cycle is not None
            return [
                SignedEdge(graph.label_of(u), graph.label_of(v), positive)
                for u, v, positive in analysis.odd_cycle
            ]
    return None


def has_odd_cycle(graph: SignedDigraph) -> bool:
    """True iff some cycle of ``graph`` has an odd number of negative edges."""
    return find_odd_cycle(graph) is not None


def is_cycle_balanced(graph: SignedDigraph) -> bool:
    """True iff no cycle has an odd number of negative edges (Harary)."""
    return not has_odd_cycle(graph)


def find_negative_cycle(graph: SignedDigraph) -> Optional[list[SignedEdge]]:
    """A simple cycle containing at least one negative edge, or ``None``.

    This is the witness for *non-stratification* (Theorem 5's premise): a
    cycle with a negative edge exists iff some SCC contains a negative edge.
    The returned cycle is the negative edge followed by a shortest path from
    its target back to its source within the SCC; BFS paths visit distinct
    vertices, so the cycle is simple by construction.
    """
    from collections import deque

    succ = graph.successor_lists()
    components = strongly_connected_components(graph.node_count, lambda u: (v for v, _ in succ[u]))
    comp_id = [0] * graph.node_count
    for cid, comp in enumerate(components):
        for node in comp:
            comp_id[node] = cid
    for u in range(graph.node_count):
        for v, positive in succ[u]:
            if positive or comp_id[u] != comp_id[v]:
                continue
            # BFS v -> u inside the component.
            members = set(components[comp_id[u]])
            parent: dict[int, tuple[int, int, bool]] = {}
            queue: deque[int] = deque([v])
            seen = {v}
            while queue and u not in seen:
                x = queue.popleft()
                for y, sign in succ[x]:
                    if y in members and y not in seen:
                        seen.add(y)
                        parent[y] = (x, y, sign)
                        queue.append(y)
            path: list[tuple[int, int, bool]] = []
            node = u
            while node != v:
                arc = parent[node]
                path.append(arc)
                node = arc[0]
            path.reverse()
            cycle = [(u, v, False)] + path
            sources = [a for a, _, _ in cycle]
            assert len(set(sources)) == len(sources), "BFS cycle must be simple"
            return [
                SignedEdge(graph.label_of(a), graph.label_of(b), sign)
                for a, b, sign in cycle
            ]
    return None
