"""Condensation helpers: component ids, bottom components, topological order.

The tie-breaking interpreters need the *bottom* strongly connected
components of the live ground graph — components with no incoming edges
from outside themselves (§3).  These helpers are index-based so they work
on both :class:`~repro.graphs.signed_digraph.SignedDigraph` and the ground
graph's live adjacency.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

__all__ = ["component_ids", "bottom_components", "topological_component_order"]


def component_ids(node_count: int, components: Sequence[Sequence[int]]) -> list[int]:
    """Map each node index to the index of its component in ``components``.

    Nodes not covered by any component (e.g. dead ground-graph nodes) get
    id ``-1``.
    """
    ids = [-1] * node_count
    for cid, comp in enumerate(components):
        for node in comp:
            ids[node] = cid
    return ids


def bottom_components(
    components: Sequence[Sequence[int]],
    successors: Callable[[int], Iterable[int]],
    node_count: int,
) -> list[int]:
    """Indices (into ``components``) of components with no incoming cross edges.

    ``successors`` ranges over the same node set the components cover; edges
    to nodes with id ``-1`` are ignored.
    """
    ids = component_ids(node_count, components)
    has_incoming = [False] * len(components)
    for comp in components:
        for u in comp:
            cu = ids[u]
            for v in successors(u):
                cv = ids[v]
                if cv != -1 and cv != cu:
                    has_incoming[cv] = True
    return [cid for cid, incoming in enumerate(has_incoming) if not incoming]


def topological_component_order(
    components: Sequence[Sequence[int]],
    successors: Callable[[int], Iterable[int]],
    node_count: int,
) -> list[int]:
    """Component indices ordered so that edges go from later to earlier.

    Tarjan already emits components in reverse topological order, so this
    simply validates and returns ``range(len(components))``; it exists as a
    named operation (and a checked invariant) for callers that process the
    condensation bottom-up, e.g. the perfect-model evaluator.
    """
    ids = component_ids(node_count, components)
    for comp_index, comp in enumerate(components):
        for u in comp:
            for v in successors(u):
                cv = ids[v]
                if cv != -1 and cv > comp_index:
                    raise AssertionError("components are not in reverse topological order")
    return list(range(len(components)))
