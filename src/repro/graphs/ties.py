"""Ties and the (K, L) partition — Lemma 1 of the paper.

A strongly connected signed digraph ``T = (V, E+, E−)`` is a **tie** iff it
contains no cycle with an odd number of negative edges.  Lemma 1: ``T`` is a
tie iff its nodes split into two sets ``K`` and ``L`` such that every
positive edge stays within a side and every negative edge crosses sides —
and this is testable in linear time.

The algorithm follows the paper's proof: grow a spanning tree from an
arbitrary root, assign each node the side given by the parity of negative
edges on its tree path, then verify every non-tree edge.  A violating edge
yields a closed walk with an odd number of negative edges, from which a
*simple* odd cycle is spliced out (the decomposition argument of §3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import NotATieError

__all__ = ["TieAnalysis", "analyze_component", "extract_simple_odd_cycle"]

SignedArc = tuple[int, int, bool]  # (source, target, positive)


@dataclass(frozen=True)
class TieAnalysis:
    """Result of analysing one strongly connected component.

    Exactly one of ``sides`` / ``odd_cycle`` is set:

    * ``is_tie`` — the component has no odd cycle; ``sides`` maps each node
      to ``0`` (the root's side, the paper's K) or ``1`` (the paper's L);
    * otherwise ``odd_cycle`` is a simple cycle, as a list of
      ``(source, target, positive)`` arcs, containing an odd number of
      negative arcs.
    """

    is_tie: bool
    sides: dict[int, int] | None = None
    odd_cycle: tuple[SignedArc, ...] | None = None

    def side_nodes(self, side: int) -> list[int]:
        """Nodes assigned to ``side`` (0 or 1); requires ``is_tie``."""
        if self.sides is None:
            raise NotATieError("component has an odd cycle; no (K, L) partition exists")
        return [node for node, s in self.sides.items() if s == side]


def analyze_component(
    component: Sequence[int],
    successors: Callable[[int], Iterable[tuple[int, bool]]],
) -> TieAnalysis:
    """Apply Lemma 1 to one strongly connected component.

    ``component`` lists the node indices of the component; ``successors(u)``
    yields signed out-edges of ``u`` (edges leaving the component are
    ignored).  The component is assumed strongly connected — as produced by
    :func:`repro.graphs.scc.strongly_connected_components`.

    Runs in time linear in the component's size, per Lemma 1.
    """
    members = set(component)
    root = component[0]

    # Spanning tree by BFS; side = parity of negative edges on the tree path.
    side: dict[int, int] = {root: 0}
    parent: dict[int, SignedArc] = {}
    queue: deque[int] = deque([root])
    while queue:
        u = queue.popleft()
        for v, positive in successors(u):
            if v not in members or v in side:
                continue
            side[v] = side[u] ^ (0 if positive else 1)
            parent[v] = (u, v, positive)
            queue.append(v)

    # Verify every in-component edge against the partition.
    for u in component:
        for v, positive in successors(u):
            if v not in members:
                continue
            consistent = (side[u] == side[v]) if positive else (side[u] != side[v])
            if not consistent:
                cycle = _odd_cycle_via_violation(
                    root, (u, v, positive), side, parent, members, successors
                )
                return TieAnalysis(is_tie=False, odd_cycle=tuple(cycle))
    return TieAnalysis(is_tie=True, sides=side)


def _tree_path(root: int, node: int, parent: dict[int, SignedArc]) -> list[SignedArc]:
    """Arcs of the spanning-tree path root → node."""
    path: list[SignedArc] = []
    while node != root:
        arc = parent[node]
        path.append(arc)
        node = arc[0]
    path.reverse()
    return path


def _bfs_path(
    start: int,
    goal: int,
    members: set[int],
    successors: Callable[[int], Iterable[tuple[int, bool]]],
) -> list[SignedArc]:
    """Arcs of some in-component path start → goal (exists: strongly connected)."""
    if start == goal:
        return []
    parent: dict[int, SignedArc] = {}
    queue: deque[int] = deque([start])
    seen = {start}
    while queue:
        u = queue.popleft()
        for v, positive in successors(u):
            if v not in members or v in seen:
                continue
            parent[v] = (u, v, positive)
            if v == goal:
                return _reconstruct(start, goal, parent)
            seen.add(v)
            queue.append(v)
    raise AssertionError(f"no path {start} → {goal}; component not strongly connected")


def _reconstruct(start: int, goal: int, parent: dict[int, SignedArc]) -> list[SignedArc]:
    path: list[SignedArc] = []
    node = goal
    while node != start:
        arc = parent[node]
        path.append(arc)
        node = arc[0]
    path.reverse()
    return path


def _parity(arcs: Iterable[SignedArc]) -> int:
    return sum(1 for _, _, positive in arcs if not positive) % 2


def _odd_cycle_via_violation(
    root: int,
    violation: SignedArc,
    side: dict[int, int],
    parent: dict[int, SignedArc],
    members: set[int],
    successors: Callable[[int], Iterable[tuple[int, bool]]],
) -> list[SignedArc]:
    """Build a closed odd walk from a partition-violating arc, then simplify.

    Per the Lemma 1 proof: the walks ``root →tree z → w → root`` and
    ``root →tree w → root`` have negative-edge parities differing by one, so
    one of them is odd; a simple odd cycle is then extracted by splicing.
    """
    z, w, positive = violation
    back = _bfs_path(w, root, members, successors)
    walk_a = _tree_path(root, z, parent) + [violation] + back
    walk_b = _tree_path(root, w, parent) + back
    walk = walk_a if _parity(walk_a) == 1 else walk_b
    assert _parity(walk) == 1, "violating edge must yield an odd closed walk"
    return extract_simple_odd_cycle(walk)


def extract_simple_odd_cycle(walk: Sequence[SignedArc]) -> list[SignedArc]:
    """Extract a simple cycle with odd negative parity from a closed odd walk.

    Repeatedly finds the first simple sub-cycle of the walk; if it is odd it
    is returned, otherwise it is spliced out (the remainder stays a closed
    walk of odd parity).  This realises the decomposition argument in §3:
    a non-simple odd cycle decomposes into simple cycles, at least one odd.
    """
    arcs = list(walk)
    if not arcs:
        raise ValueError("empty walk has no cycles")
    while True:
        # Node sequence v0, v1, ..., vn (= v0).
        seen: dict[int, int] = {arcs[0][0]: 0}
        cut: tuple[int, int] | None = None
        for position, (_, target, _) in enumerate(arcs):
            if target in seen:
                cut = (seen[target], position + 1)
                break
            seen[target] = position + 1
        assert cut is not None, "closed walk must contain a cycle"
        start, end = cut
        cycle = arcs[start:end]
        if _parity(cycle) == 1:
            return cycle
        del arcs[start:end]
        assert arcs, "odd walk cannot consist solely of even simple cycles"
