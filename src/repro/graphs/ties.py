"""Ties and the (K, L) partition — Lemma 1 of the paper.

A strongly connected signed digraph ``T = (V, E+, E−)`` is a **tie** iff it
contains no cycle with an odd number of negative edges.  Lemma 1: ``T`` is a
tie iff its nodes split into two sets ``K`` and ``L`` such that every
positive edge stays within a side and every negative edge crosses sides —
and this is testable in linear time.

The algorithm follows the paper's proof: grow a spanning tree from an
arbitrary root, assign each node the side given by the parity of negative
edges on its tree path, then verify every non-tree edge.  A violating edge
yields a closed walk with an odd number of negative edges, from which a
*simple* odd cycle is spliced out (the decomposition argument of §3).

:func:`analyze_component` is the frozen one-shot form (the differential
oracle); :class:`TieSides` is its mutable, incrementally-maintained
sibling: it keeps the spanning forest, the per-node parity, and the set
of currently violated edges alive across ``delete_edges`` /
``delete_nodes`` calls, re-rooting only the orphaned subtree(s) and
re-verifying only the edges incident to the touched region.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import NotATieError

__all__ = ["TieAnalysis", "TieSides", "analyze_component", "extract_simple_odd_cycle"]

SignedArc = tuple[int, int, bool]  # (source, target, positive)


@dataclass(frozen=True)
class TieAnalysis:
    """Result of analysing one strongly connected component.

    Exactly one of ``sides`` / ``odd_cycle`` is set:

    * ``is_tie`` — the component has no odd cycle; ``sides`` maps each node
      to ``0`` (the root's side, the paper's K) or ``1`` (the paper's L);
    * otherwise ``odd_cycle`` is a simple cycle, as a list of
      ``(source, target, positive)`` arcs, containing an odd number of
      negative arcs.
    """

    is_tie: bool
    sides: dict[int, int] | None = None
    odd_cycle: tuple[SignedArc, ...] | None = None

    def side_nodes(self, side: int) -> list[int]:
        """Nodes assigned to ``side`` (0 or 1); requires ``is_tie``."""
        if self.sides is None:
            raise NotATieError("component has an odd cycle; no (K, L) partition exists")
        return sorted(node for node, s in self.sides.items() if s == side)


class TieSides:
    """Mutable Lemma-1 (K, L) state, maintained incrementally under deletions.

    Where :class:`TieAnalysis` is a frozen one-shot verdict, ``TieSides``
    keeps the underlying machinery alive: the undirected incidence lists,
    the spanning forest (as parent arcs), the per-node parity labelling,
    and the set of edges currently violating the partition.  The component
    is a tie exactly while ``violations`` is empty.

    :meth:`delete_edges` and :meth:`delete_nodes` update the structure in
    place.  Only the orphaned subtree(s) — the forest subtrees hanging off
    a deleted parent arc or node — are re-rooted, by re-attaching them
    through any surviving edge into the anchored region, and only edges
    incident to re-labelled nodes are re-verified.  Both return ``True``
    when the surviving nodes remain (weakly) connected; ``False`` signals
    that the component split, in which case the structure is stale and the
    caller must fall back to a fresh analysis per piece (the kernel does
    this in ``_refine_scc`` / ``_rebuild_scc``).

    Side values are relative to the original root (side 0); after
    re-rooting they remain a valid (K, L) labelling but may be the global
    flip of what a fresh :func:`analyze_component` would assign.  Compare
    through relabelling, or use :meth:`to_analysis` which canonicalises.
    """

    __slots__ = ("members", "side", "parent", "children", "violations", "adj")

    def __init__(
        self,
        members: set[int],
        side: dict[int, int],
        parent: dict[int, SignedArc | None] | None = None,
        children: dict[int, list[int]] | None = None,
        violations: set[SignedArc] | None = None,
        adj: dict[int, list[SignedArc]] | None = None,
    ) -> None:
        self.members = members
        self.side = side
        self.parent = parent
        self.children = children
        self.violations = violations if violations is not None else set()
        self.adj = adj

    @classmethod
    def analyze(
        cls,
        component: Sequence[int],
        successors: Callable[[int], Iterable[tuple[int, bool]]],
    ) -> "TieSides":
        """Build the full incremental structure for one component.

        Mirrors :func:`analyze_component` — root ``component[0]`` gets
        side 0, and on a tie the labelling is identical — but spans via
        the *undirected* incidence so the input only needs to be weakly
        connected (deletions preserve weak connectivity longer than
        strong, and Lemma 1's parity argument never uses direction).
        """
        members = set(component)
        adj: dict[int, list[SignedArc]] = {n: [] for n in component}
        for u in component:
            for v, positive in successors(u):
                if v not in members:
                    continue
                arc = (u, v, positive)
                adj[u].append(arc)
                if v != u:
                    adj[v].append(arc)

        root = component[0]
        side: dict[int, int] = {root: 0}
        parent: dict[int, SignedArc | None] = {root: None}
        children: dict[int, list[int]] = {n: [] for n in component}
        queue: deque[int] = deque([root])
        while queue:
            u = queue.popleft()
            for arc in adj[u]:
                v = arc[1] if arc[0] == u else arc[0]
                if v in side:
                    continue
                side[v] = side[u] ^ (0 if arc[2] else 1)
                parent[v] = arc
                children[u].append(v)
                queue.append(v)

        violations: set[SignedArc] = set()
        for u in component:
            for arc in adj[u]:
                if arc[0] != u:  # each arc is listed under both endpoints
                    continue
                if not _consistent(arc, side):
                    violations.add(arc)
        return cls(members, side, parent, children, violations, adj)

    @property
    def is_tie(self) -> bool:
        return not self.violations

    def copy(self) -> "TieSides":
        return TieSides(
            set(self.members),
            dict(self.side),
            dict(self.parent) if self.parent is not None else None,
            {k: list(v) for k, v in self.children.items()}
            if self.children is not None
            else None,
            set(self.violations),
            {k: list(v) for k, v in self.adj.items()} if self.adj is not None else None,
        )

    def restricted(self, nodes: Iterable[int]) -> "TieSides":
        """Side-only restriction to ``nodes`` (a subset of ``members``).

        A valid (K, L) partition stays valid on any subgraph (the
        partition condition is per-edge), so restricting a clean
        labelling to a surviving piece needs no re-verification.  The
        result carries no forest/incidence — it answers side queries and
        further restrictions only; it cannot absorb deletions itself.
        """
        keep = set(nodes)
        return TieSides(
            keep,
            {n: self.side[n] for n in keep},
            None,
            None,
            {a for a in self.violations if a[0] in keep and a[1] in keep},
            None,
        )

    def to_analysis(self, component: Sequence[int] | None = None) -> TieAnalysis:
        """Frozen :class:`TieAnalysis` view with canonical side naming.

        Requires a clean (tie) state.  ``component`` fixes the node order
        of the ``sides`` dict (defaults to sorted members); sides are
        flipped so the first listed node gets side 0, matching what
        :func:`analyze_component` assigns when rooted there.
        """
        if self.violations:
            raise NotATieError("component has violating edges; no (K, L) partition")
        order = list(component) if component is not None else sorted(self.members)
        flip = self.side[order[0]]
        if flip == 0:
            # Already canonical (the common case: kernel passes root the
            # component head); a plain copy beats a per-node xor.
            return TieAnalysis(is_tie=True, sides=dict(self.side))
        return TieAnalysis(is_tie=True, sides={n: self.side[n] ^ flip for n in order})

    def delete_edges(self, arcs: Iterable[SignedArc]) -> bool:
        """Remove arcs; returns ``False`` if the component disconnects."""
        if self.adj is None or self.parent is None:
            raise ValueError("restricted TieSides cannot absorb deletions")
        assert self.children is not None
        orphan_roots: list[int] = []
        for arc in arcs:
            u, v, _positive = arc
            self.adj[u].remove(arc)
            if v != u:
                self.adj[v].remove(arc)
            if arc not in self.adj[u] and (v == u or arc not in self.adj[v]):
                # Last copy of this arc is gone.
                self.violations.discard(arc)
                for node in (u, v):
                    if self.parent.get(node) == arc:
                        p = v if node == u else u
                        self.children[p].remove(node)
                        self.parent[node] = None
                        orphan_roots.append(node)
        return self._repair(orphan_roots)

    def delete_nodes(self, nodes: Iterable[int]) -> bool:
        """Remove nodes and all incident arcs; ``False`` on disconnect."""
        if self.adj is None or self.parent is None:
            raise ValueError("restricted TieSides cannot absorb deletions")
        assert self.children is not None
        dead = set(nodes) & self.members
        orphan_roots: list[int] = []
        for d in dead:
            for arc in self.adj.pop(d):
                u, v, _positive = arc
                other = v if u == d else u
                if other != d and other not in dead:
                    try:
                        self.adj[other].remove(arc)
                    except ValueError:
                        pass  # duplicate arc already removed via this loop
                    if self.parent.get(other) == arc:
                        self.parent[other] = None
                        orphan_roots.append(other)
                self.violations.discard(arc)
            parc = self.parent.pop(d)
            if parc is not None:
                p = parc[0] if parc[1] == d else parc[1]
                if p in self.children:
                    try:
                        self.children[p].remove(d)
                    except ValueError:
                        pass
            self.members.discard(d)
            del self.side[d]
        for d in dead:
            # Children of d were orphaned by the incident-arc sweep above
            # (their parent arc touches d); only the list itself remains.
            self.children.pop(d, None)
        return self._repair(orphan_roots)

    def _repair(self, orphan_roots: list[int]) -> bool:
        """Re-root detached subtrees and re-verify touched edges.

        ``orphan_roots`` are nodes whose parent arc was deleted.  Their
        forest subtrees form the *touched region*: every node in it is
        detached, re-attached through some surviving edge into the
        anchored remainder, and relabelled; afterwards only arcs incident
        to the region are re-checked against the partition.
        """
        assert self.adj is not None and self.parent is not None
        assert self.children is not None
        if not orphan_roots:
            return True
        # Collect the full orphan region (subtrees under the cut points).
        pending: set[int] = set()
        stack = [r for r in orphan_roots if r in self.members]
        while stack:
            n = stack.pop()
            if n in pending:
                continue
            pending.add(n)
            stack.extend(self.children[n])
        if not pending:
            return True
        # Detach: clear forest links internal bookkeeping for the region.
        for n in pending:
            parc = self.parent[n]
            if parc is not None:
                p = parc[1] if parc[0] == n else parc[0]
                if p not in pending:
                    self.children[p].remove(n)
            self.parent[n] = None
            self.children[n] = []
        # Re-attach via BFS from the anchored boundary.
        queue: deque[int] = deque()
        for n in sorted(pending):
            for arc in self.adj[n]:
                u, v, positive = arc
                other = v if u == n else u
                if other in self.members and other not in pending:
                    self.side[n] = self.side[other] ^ (0 if positive else 1)
                    self.parent[n] = arc
                    self.children[other].append(n)
                    queue.append(n)
                    break
        attached = set(queue)
        if not attached and pending == self.members:
            # The whole component was orphaned (the forest root died or
            # was cut loose), so no anchored label exists to grow from:
            # re-root at the smallest survivor, keeping its current side
            # so the labelling stays maximally stable, and regrow.
            new_root = min(pending)
            attached = {new_root}
            queue.append(new_root)
        pending -= attached
        while queue:
            x = queue.popleft()
            for arc in self.adj[x]:
                u, v, positive = arc
                y = v if u == x else u
                if y in pending:
                    self.side[y] = self.side[x] ^ (0 if positive else 1)
                    self.parent[y] = arc
                    self.children[x].append(y)
                    pending.discard(y)
                    attached.add(y)
                    queue.append(y)
        # Re-verify every arc incident to a relabelled node.
        for n in attached:
            for arc in self.adj[n]:
                if _consistent(arc, self.side):
                    self.violations.discard(arc)
                else:
                    self.violations.add(arc)
        return not pending


def _consistent(arc: SignedArc, side: dict[int, int]) -> bool:
    u, v, positive = arc
    return (side[u] == side[v]) if positive else (side[u] != side[v])


def analyze_component(
    component: Sequence[int],
    successors: Callable[[int], Iterable[tuple[int, bool]]],
) -> TieAnalysis:
    """Apply Lemma 1 to one strongly connected component.

    ``component`` lists the node indices of the component; ``successors(u)``
    yields signed out-edges of ``u`` (edges leaving the component are
    ignored).  The component is assumed strongly connected — as produced by
    :func:`repro.graphs.scc.strongly_connected_components`.

    Runs in time linear in the component's size, per Lemma 1.
    """
    members = set(component)
    root = component[0]

    # Spanning tree by BFS; side = parity of negative edges on the tree path.
    side: dict[int, int] = {root: 0}
    parent: dict[int, SignedArc] = {}
    queue: deque[int] = deque([root])
    while queue:
        u = queue.popleft()
        for v, positive in successors(u):
            if v not in members or v in side:
                continue
            side[v] = side[u] ^ (0 if positive else 1)
            parent[v] = (u, v, positive)
            queue.append(v)

    # Verify every in-component edge against the partition.
    for u in component:
        for v, positive in successors(u):
            if v not in members:
                continue
            consistent = (side[u] == side[v]) if positive else (side[u] != side[v])
            if not consistent:
                cycle = _odd_cycle_via_violation(
                    root, (u, v, positive), side, parent, members, successors
                )
                return TieAnalysis(is_tie=False, odd_cycle=tuple(cycle))
    return TieAnalysis(is_tie=True, sides=side)


def _tree_path(root: int, node: int, parent: dict[int, SignedArc]) -> list[SignedArc]:
    """Arcs of the spanning-tree path root → node."""
    path: list[SignedArc] = []
    while node != root:
        arc = parent[node]
        path.append(arc)
        node = arc[0]
    path.reverse()
    return path


def _bfs_path(
    start: int,
    goal: int,
    members: set[int],
    successors: Callable[[int], Iterable[tuple[int, bool]]],
) -> list[SignedArc]:
    """Arcs of some in-component path start → goal (exists: strongly connected)."""
    if start == goal:
        return []
    parent: dict[int, SignedArc] = {}
    queue: deque[int] = deque([start])
    seen = {start}
    while queue:
        u = queue.popleft()
        for v, positive in successors(u):
            if v not in members or v in seen:
                continue
            parent[v] = (u, v, positive)
            if v == goal:
                return _reconstruct(start, goal, parent)
            seen.add(v)
            queue.append(v)
    raise AssertionError(f"no path {start} → {goal}; component not strongly connected")


def _reconstruct(start: int, goal: int, parent: dict[int, SignedArc]) -> list[SignedArc]:
    path: list[SignedArc] = []
    node = goal
    while node != start:
        arc = parent[node]
        path.append(arc)
        node = arc[0]
    path.reverse()
    return path


def _parity(arcs: Iterable[SignedArc]) -> int:
    return sum(1 for _, _, positive in arcs if not positive) % 2


def _odd_cycle_via_violation(
    root: int,
    violation: SignedArc,
    side: dict[int, int],
    parent: dict[int, SignedArc],
    members: set[int],
    successors: Callable[[int], Iterable[tuple[int, bool]]],
) -> list[SignedArc]:
    """Build a closed odd walk from a partition-violating arc, then simplify.

    Per the Lemma 1 proof: the walks ``root →tree z → w → root`` and
    ``root →tree w → root`` have negative-edge parities differing by one, so
    one of them is odd; a simple odd cycle is then extracted by splicing.
    """
    z, w, positive = violation
    back = _bfs_path(w, root, members, successors)
    walk_a = _tree_path(root, z, parent) + [violation] + back
    walk_b = _tree_path(root, w, parent) + back
    walk = walk_a if _parity(walk_a) == 1 else walk_b
    assert _parity(walk) == 1, "violating edge must yield an odd closed walk"
    return extract_simple_odd_cycle(walk)


def extract_simple_odd_cycle(walk: Sequence[SignedArc]) -> list[SignedArc]:
    """Extract a simple cycle with odd negative parity from a closed odd walk.

    Repeatedly finds the first simple sub-cycle of the walk; if it is odd it
    is returned, otherwise it is spliced out (the remainder stays a closed
    walk of odd parity).  This realises the decomposition argument in §3:
    a non-simple odd cycle decomposes into simple cycles, at least one odd.
    """
    arcs = list(walk)
    if not arcs:
        raise ValueError("empty walk has no cycles")
    while True:
        # Node sequence v0, v1, ..., vn (= v0).
        seen: dict[int, int] = {arcs[0][0]: 0}
        cut: tuple[int, int] | None = None
        for position, (_, target, _) in enumerate(arcs):
            if target in seen:
                cut = (seen[target], position + 1)
                break
            seen[target] = position + 1
        assert cut is not None, "closed walk must contain a cycle"
        start, end = cut
        cycle = arcs[start:end]
        if _parity(cycle) == 1:
            return cycle
        del arcs[start:end]
        assert arcs, "odd walk cannot consist solely of even simple cycles"
