"""Theorem 3 constructions: the nonuniform case (IDB predicates start empty).

Harder than Theorem 2 because only EDB relations can be seeded: the
construction must first make every *useful* predicate derive its Q(a, b)
witness bottom-up, and only then does the odd cycle (which lives in the
reduced graph G(Π′), so all its predicates are useful) close the
contradiction on the diagonal atoms Pᵢ(a, a).

* :func:`theorem3_variant` — binary predicates over constants a, b; arc
  rules become ``Pᵢ₊₁(a, x) :- Pᵢ(a, x), ...`` (positive arc) or
  ``Pᵢ₊₁(a, x) :- ¬Pᵢ(x, a), ...`` (negative arc); every other positive
  occurrence becomes Q(a, b) and negative ¬Q(b, a).  EDB relations are
  initialized to {(a, b)}, IDBs empty.
* :func:`theorem3_constant_free_variant` — 4-ary equality-pattern version:
  arcs use (x, y, y, z) / ¬(y, x, y, z); other positives (x, z, z, z),
  negatives ¬(z, x, z, z); EDB relations get {(1, 2, 2, 2)}.

Both "no fixpoint with empty IDBs" claims are machine-checked by SAT.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.structural import odd_cycle_in_program_graph
from repro.analysis.useless import reduced_program
from repro.constructions.variants import Cycle, RewriteScheme, assign_arc_rules, rewrite_program
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.terms import Constant, Variable
from repro.errors import ConstructionError

__all__ = ["theorem3_variant", "theorem3_constant_free_variant"]


def _resolve_reduced_cycle(program: Program, cycle: Optional[Cycle]) -> Cycle:
    if cycle is not None:
        return cycle
    witness = odd_cycle_in_program_graph(reduced_program(program))
    if witness is None:
        raise ConstructionError(
            "the reduced program graph G(Π′) has no odd cycle; the program is "
            "structurally nonuniformly total (Theorem 3)"
        )
    return witness.arcs


def theorem3_variant(
    program: Program, cycle: Optional[Cycle] = None
) -> tuple[Program, Database]:
    """The binary variant and EDB-only database of the Theorem 3 proof.

    >>> from repro.datalog.parser import parse_program
    >>> variant, delta = theorem3_variant(parse_program("p :- e, not p."))
    >>> print(variant)
    p(a, X) :- e(a, b), ¬p(X, a).
    >>> [str(a) for a in delta.atoms()]
    ['e(a, b)']
    """
    arcs = _resolve_reduced_cycle(program, cycle)
    assignments = assign_arc_rules(program, arcs, avoid_useless=True)
    a, b = Constant("a"), Constant("b")
    x = Variable("X")
    scheme = RewriteScheme(
        designated_head=lambda _pred: (a, x),
        designated_body=lambda _pred, positive: (a, x) if positive else (x, a),
        other_positive=lambda _pred: (a, b),
        other_negative=lambda _pred: (b, a),
    )
    variant = rewrite_program(program, assignments, scheme)

    delta = Database()
    for predicate in sorted(variant.edb_predicates):
        delta.add(predicate, a, b)
    return variant, delta


def theorem3_constant_free_variant(
    program: Program, cycle: Optional[Cycle] = None
) -> tuple[Program, Database]:
    """The constant-free 4-ary variant of the Theorem 3 proof.

    Patterns: arc heads (x, y, y, z); positive arc bodies (x, y, y, z),
    negative arc bodies (y, x, y, z); other positive occurrences
    (x, z, z, z); other negative occurrences (z, x, z, z).  The database
    initializes every EDB relation to {(1, 2, 2, 2)}.

    Requires at least one EDB predicate: with no EDB relation the universe
    of the constant-free variant is empty and the (single, empty) database
    trivially has the empty fixpoint.
    """
    arcs = _resolve_reduced_cycle(program, cycle)
    if not program.edb_predicates:
        raise ConstructionError(
            "constant-free nonuniform construction needs an EDB predicate to "
            "seed the universe"
        )
    assignments = assign_arc_rules(program, arcs, avoid_useless=True)
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    scheme = RewriteScheme(
        designated_head=lambda _pred: (x, y, y, z),
        designated_body=lambda _pred, positive: (
            (x, y, y, z) if positive else (y, x, y, z)
        ),
        other_positive=lambda _pred: (x, z, z, z),
        other_negative=lambda _pred: (z, x, z, z),
    )
    variant = rewrite_program(program, assignments, scheme)

    delta = Database()
    for predicate in sorted(variant.edb_predicates):
        delta.add(predicate, 1, 2, 2, 2)
    return variant, delta
