"""Theorem 2 constructions: odd cycle ⇒ an alphabetic variant with no fixpoint.

Given a program whose graph has a cycle with an odd number of negative
edges, build:

* :func:`theorem2_variant` — the unary variant over constants a, b, c with
  initial database Δ̃ = {Q(b) : every predicate Q}.  Non-participating
  rules collapse to truths (heads Q(b) are in Δ̃); constants c make every
  negative non-designated literal true (Q(c) is never derivable); the odd
  cycle survives as Pᵢ₊₁(a) ⇐ (¬)Pᵢ(a) — a contradiction, so **no fixpoint
  exists**.
* :func:`theorem2_constant_free_variant` — the same idea with ternary
  predicates and equality patterns simulating the constants:
  a ↦ (x, y, y), b ↦ (y, y, y), c ↦ (x, x, y), universe {1, 2},
  Δ̃ = {Q(d, d, d) : every predicate Q, d ∈ {1, 2}}.

Both claims ("the variant has no fixpoint for Δ̃") are machine-checked in
the test suite by exhaustive SAT over the Clark completion.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.structural import odd_cycle_in_program_graph
from repro.constructions.variants import Cycle, RewriteScheme, assign_arc_rules, rewrite_program
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.terms import Constant, Variable
from repro.errors import ConstructionError

__all__ = ["theorem2_variant", "theorem2_constant_free_variant"]


def _resolve_cycle(program: Program, cycle: Optional[Cycle]) -> Cycle:
    if cycle is not None:
        return cycle
    witness = odd_cycle_in_program_graph(program)
    if witness is None:
        raise ConstructionError(
            "program graph has no odd cycle; the program is structurally total "
            "(Theorem 2), so no fixpoint-free variant exists"
        )
    return witness.arcs


def theorem2_variant(
    program: Program, cycle: Optional[Cycle] = None
) -> tuple[Program, Database]:
    """The unary alphabetic variant Π̃ and database Δ̃ of the Theorem 2 proof.

    ``cycle`` defaults to a witness odd cycle of G(Π).  Returns
    ``(variant, database)`` with no fixpoint.

    >>> from repro.datalog.parser import parse_program
    >>> variant, delta = theorem2_variant(parse_program("p(X, Y) :- not p(Y, Y), e(X)."))
    >>> print(variant)
    p(a) :- ¬p(a), e(b).
    """
    arcs = _resolve_cycle(program, cycle)
    assignments = assign_arc_rules(program, arcs)
    a, b, c = Constant("a"), Constant("b"), Constant("c")
    scheme = RewriteScheme(
        designated_head=lambda _pred: (a,),
        designated_body=lambda _pred, _positive: (a,),
        other_positive=lambda _pred: (b,),
        other_negative=lambda _pred: (c,),
    )
    variant = rewrite_program(program, assignments, scheme)

    delta = Database()
    for predicate in sorted(variant.predicates):
        delta.add(predicate, b)
    return variant, delta


def theorem2_constant_free_variant(
    program: Program, cycle: Optional[Cycle] = None
) -> tuple[Program, Database]:
    """The constant-free ternary variant of the Theorem 2 proof.

    Equality patterns over per-rule variables x, y simulate the constants:
    a ↦ (x, y, y), b ↦ (y, y, y), c ↦ (x, x, y).  The database contains
    Q(d, d, d) for every predicate and d ∈ {1, 2}; instantiating the cycle
    rules at x=1, y=2 recreates the odd ground cycle on Pᵢ(1, 2, 2).

    >>> from repro.datalog.parser import parse_program
    >>> variant, delta = theorem2_constant_free_variant(parse_program("p :- not p, e."))
    >>> print(variant)
    p(X, Y, Y) :- ¬p(X, Y, Y), e(Y, Y, Y).
    >>> len(variant.constants)
    0
    """
    arcs = _resolve_cycle(program, cycle)
    assignments = assign_arc_rules(program, arcs)
    x, y = Variable("X"), Variable("Y")
    pattern_a = (x, y, y)
    pattern_b = (y, y, y)
    pattern_c = (x, x, y)
    scheme = RewriteScheme(
        designated_head=lambda _pred: pattern_a,
        designated_body=lambda _pred, _positive: pattern_a,
        other_positive=lambda _pred: pattern_b,
        other_negative=lambda _pred: pattern_c,
    )
    variant = rewrite_program(program, assignments, scheme)

    delta = Database()
    for predicate in sorted(variant.predicates):
        for d in (1, 2):
            delta.add(predicate, d, d, d)
    return variant, delta
