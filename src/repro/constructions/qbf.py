"""∀∃-CNF formulas — the substrate of the §5 Proposition's Π₂ᵖ reduction.

A :class:`ForallExistsCNF` is a CNF formula F(x, y) whose variables are
split into a universally quantified block x and an existentially
quantified block y; the decision problem "∀x ∃y F(x, y)?" is the canonical
Π₂ᵖ-complete problem.  Instances here are tiny (the reduction is verified
by exhaustive search), so the evaluator is brute force by design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Mapping, Sequence

__all__ = ["ForallExistsCNF", "forall_exists_holds", "random_formula"]

CNFLiteral = tuple[str, bool]  # (variable name, positive)


@dataclass(frozen=True)
class ForallExistsCNF:
    """∀x ∃y ⋀ clauses, with clauses as tuples of (variable, sign) literals.

    >>> f = ForallExistsCNF(("x1",), ("y1",), ((("x1", True), ("y1", True)),))
    >>> forall_exists_holds(f)   # choose y1 = true whenever x1 is false
    True
    """

    x_vars: tuple[str, ...]
    y_vars: tuple[str, ...]
    clauses: tuple[tuple[CNFLiteral, ...], ...]

    def __post_init__(self) -> None:
        if set(self.x_vars) & set(self.y_vars):
            raise ValueError("x and y variable blocks must be disjoint")
        known = set(self.x_vars) | set(self.y_vars)
        for clause in self.clauses:
            if not clause:
                raise ValueError("empty clause is never satisfiable")
            for name, _sign in clause:
                if name not in known:
                    raise ValueError(f"unknown variable {name!r} in clause")

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Truth of the matrix F under a total assignment."""
        return all(
            any(assignment[name] == positive for name, positive in clause)
            for clause in self.clauses
        )

    def __str__(self) -> str:
        def lit(name: str, positive: bool) -> str:
            return name if positive else f"¬{name}"

        matrix = " ∧ ".join(
            "(" + " ∨ ".join(lit(n, s) for n, s in clause) + ")"
            for clause in self.clauses
        )
        return f"∀{','.join(self.x_vars)} ∃{','.join(self.y_vars)} {matrix}"


def _assignments(variables: Sequence[str]) -> Iterator[dict[str, bool]]:
    for bits in product([False, True], repeat=len(variables)):
        yield dict(zip(variables, bits))


def forall_exists_holds(formula: ForallExistsCNF) -> bool:
    """Brute-force decision of ∀x ∃y F(x, y) (exponential; tiny inputs only)."""
    for x_assignment in _assignments(formula.x_vars):
        witness_found = False
        for y_assignment in _assignments(formula.y_vars):
            if formula.evaluate({**x_assignment, **y_assignment}):
                witness_found = True
                break
        if not witness_found:
            return False
    return True


def random_formula(
    n_x: int,
    n_y: int,
    n_clauses: int,
    *,
    width: int = 3,
    seed: int | None = None,
) -> ForallExistsCNF:
    """A random ∀∃-CNF with the given shape (for randomized E10 sweeps)."""
    rng = random.Random(seed)
    x_vars = tuple(f"x{i}" for i in range(1, n_x + 1))
    y_vars = tuple(f"y{i}" for i in range(1, n_y + 1))
    names = x_vars + y_vars
    clauses = []
    for _ in range(n_clauses):
        size = rng.randint(1, width)
        clause = tuple(
            (rng.choice(names), rng.random() < 0.5) for _ in range(size)
        )
        clauses.append(clause)
    return ForallExistsCNF(x_vars, y_vars, tuple(clauses))
