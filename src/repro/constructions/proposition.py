"""The §5 Proposition: propositional totality is Π₂ᵖ-complete.

Membership: a propositional program is total iff for every database (truth
assignment to EDB propositions, plus — in the uniform case — any initial
IDB propositions) some fixpoint exists; :func:`is_total_propositional`
decides this by brute force over databases with a SAT call per database.

Hardness: :func:`formula_to_program` implements the reduction from
∀x ∃y F(x, y).  For every universal variable xᵢ an EDB proposition Xᵢ; for
every existential yᵢ an IDB proposition Yᵢ; two extra IDB propositions p
and q.  Every clause C_j yields a rule

    p :- ¬p, ¬q, <complement of each literal of C_j>,

and every yᵢ contributes ``Yᵢ :- Yᵢ, ¬q`` and ``q :- Yᵢ, q``.  The paper
shows the program is total (uniform *and* nonuniform) iff ∀x ∃y F holds —
experiment E10 verifies the equivalence exhaustively on small formulas.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

from repro.constructions.qbf import ForallExistsCNF
from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.errors import ConstructionError, SemanticsError
from repro.api.engine import solve

__all__ = ["formula_to_program", "is_total_propositional", "propositional_databases"]


def _x_predicate(name: str) -> str:
    return f"edb_{name}"


def _y_predicate(name: str) -> str:
    return f"idb_{name}"


def formula_to_program(formula: ForallExistsCNF) -> Program:
    """The Proposition's reduction program for ∀x ∃y F(x, y).

    >>> from repro.constructions.qbf import ForallExistsCNF
    >>> f = ForallExistsCNF(("x1",), ("y1",), ((("x1", True), ("y1", False)),))
    >>> print(formula_to_program(f))
    p :- ¬p, ¬q, ¬edb_x1, idb_y1.
    idb_y1 :- idb_y1, ¬q.
    q :- idb_y1, q.
    """
    p, q = Atom("p"), Atom("q")
    x_set = set(formula.x_vars)
    rules: list[Rule] = []
    for clause in formula.clauses:
        body: list[Literal] = [Literal(p, False), Literal(q, False)]
        for name, positive in clause:
            predicate = _x_predicate(name) if name in x_set else _y_predicate(name)
            # The body carries the COMPLEMENT of the clause literal.
            body.append(Literal(Atom(predicate), not positive))
        rules.append(Rule(p, tuple(body)))
    for name in formula.y_vars:
        y = Atom(_y_predicate(name))
        rules.append(Rule(y, (Literal(y, True), Literal(q, False))))
        rules.append(Rule(q, (Literal(y, True), Literal(q, True))))
    return Program(rules)


def propositional_databases(
    program: Program, *, nonuniform: bool
) -> Iterator[Database]:
    """Every database of a propositional program.

    Uniform: all subsets of EDB ∪ IDB propositions; nonuniform: all subsets
    of the EDB propositions (IDBs empty).
    """
    if not program.is_propositional:
        raise SemanticsError("propositional_databases requires a propositional program")
    fixed = sorted(program.edb_predicates)
    free = [] if nonuniform else sorted(program.idb_predicates)
    names = fixed + free
    for bits in product([False, True], repeat=len(names)):
        db = Database()
        for name, bit in zip(names, bits):
            if bit:
                db.add(name)
        yield db


def is_total_propositional(
    program: Program,
    *,
    nonuniform: bool = False,
    max_databases: int = 1 << 16,
) -> bool:
    """Brute-force totality of a propositional program (§5).

    Totality is Π₂ᵖ-complete, so exponential behaviour is inherent: the
    database space is exhausted (guarded by ``max_databases``) with one
    NP-call (SAT on the Clark completion) per database.

    >>> from repro.datalog.parser import parse_program
    >>> is_total_propositional(parse_program("p :- not p, e."))
    False
    >>> is_total_propositional(parse_program("p :- not q. q :- not p."))
    True
    """
    count = len(program.edb_predicates) + (
        0 if nonuniform else len(program.idb_predicates)
    )
    if 1 << count > max_databases:
        raise ConstructionError(
            f"2^{count} databases exceed max_databases={max_databases}"
        )
    for db in propositional_databases(program, nonuniform=nonuniform):
        if not solve("completion", program, db, grounding="full").found:
            return False
    return True
