"""Theorem 4's P-completeness reduction: MCVP → structural nonuniform totality.

Given a monotone circuit B and input assignment x, build a (propositional)
program Π with one predicate G_i per gate plus an extra predicate P:

* input bit 1  → G_i is an EDB predicate (appears only in bodies);
* input bit 0  → the rule ``G_i :- G_i`` (making G_i useless);
* AND gate     → one rule listing all operand predicates positively;
* OR gate      → one rule per operand;
* finally      → ``P :- ¬P, G_out``.

Claims machine-checked by the tests (experiment E8):

* G_i is *useful* iff gate i evaluates to 1 (induction of the proof);
* the reduced program Π′ contains the odd cycle through P iff B(x) = 1,
  i.e. Π is structurally nonuniformly total **iff B(x) = 0**.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.structural import is_structurally_nonuniformly_total
from repro.analysis.useless import useful_predicates
from repro.constructions.circuits import AND, INPUT, OR, MonotoneCircuit
from repro.datalog.atoms import Atom, Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule

__all__ = ["gate_predicate", "mcvp_program", "mcvp_via_structural_totality", "useful_gates"]

TRAP_PREDICATE = "p_trap"


def gate_predicate(index: int) -> str:
    """Predicate name of gate ``index`` (the paper's G_i)."""
    return f"g{index}"


def mcvp_program(circuit: MonotoneCircuit, assignment: Sequence[bool]) -> Program:
    """The reduction program Π for (B, x).

    >>> from repro.constructions.circuits import Gate, MonotoneCircuit
    >>> c = MonotoneCircuit((Gate("input"), Gate("and", (0, 0))), output=1)
    >>> print(mcvp_program(c, [False]))
    g0 :- g0.
    g1 :- g0, g0.
    p_trap :- ¬p_trap, g1.
    """
    inputs = circuit.input_indices
    if len(assignment) != len(inputs):
        raise ValueError(f"need {len(inputs)} input bits, got {len(assignment)}")
    bit = dict(zip(inputs, assignment))

    rules: list[Rule] = []
    for index, gate in enumerate(circuit.gates):
        head = Atom(gate_predicate(index))
        if gate.kind == INPUT:
            if not bit[index]:
                rules.append(Rule(head, (Literal(head, True),)))
            # bit 1: EDB predicate — no rule at all.
        elif gate.kind == AND:
            body = tuple(
                Literal(Atom(gate_predicate(op)), True) for op in gate.inputs
            )
            rules.append(Rule(head, body))
        else:  # OR: one rule per operand
            for op in gate.inputs:
                rules.append(Rule(head, (Literal(Atom(gate_predicate(op)), True),)))
    trap = Atom(TRAP_PREDICATE)
    rules.append(
        Rule(
            trap,
            (
                Literal(trap, False),
                Literal(Atom(gate_predicate(circuit.output)), True),
            ),
        )
    )
    return Program(rules)


def mcvp_via_structural_totality(
    circuit: MonotoneCircuit, assignment: Sequence[bool]
) -> bool:
    """Evaluate B(x) through the reduction: B(x) = 1 iff Π is *not*
    structurally nonuniformly total.

    This is the P-completeness direction run as an algorithm — the test
    suite compares it with direct circuit evaluation on random circuits.
    """
    program = mcvp_program(circuit, assignment)
    return not is_structurally_nonuniformly_total(program)


def useful_gates(circuit: MonotoneCircuit, assignment: Sequence[bool]) -> set[int]:
    """Gate indices whose predicate is useful in the reduction program.

    The proof's invariant: exactly the gates with value 1.  Input gates
    with bit 1 are EDB predicates and count as useful even when no other
    gate references them (in which case the predicate does not occur in
    the program's text at all).
    """
    program = mcvp_program(circuit, assignment)
    useful = useful_predicates(program)
    result = {
        index
        for index in range(len(circuit.gates))
        if gate_predicate(index) in useful
    }
    bit = dict(zip(circuit.input_indices, assignment))
    result.update(index for index, value in bit.items() if value)
    return result
