"""Theorem 6: totality is undecidable — the 2-counter-machine reduction.

:func:`machine_to_program` builds, for a machine M, a Datalog¬ program that
is **nonuniformly total iff M does not halt**:

* binary IDB predicates ``state(T, S)``, ``count1(T, C)``, ``count2(T, C)``
  encode configurations over an EDB arithmetic ``zero/succ/less``;
* initialization and one rule triple per machine transition simulate runs,
  using the paper's ``[X = i]`` chains (``zero(A0), succ(A0, A1), ...``) to
  name concrete states;
* the *troublesome* rule ``p :- ¬p, state(T, S), [S = h]`` kills every
  fixpoint once the halting state is derivable;
* guard rules (1a), (1b), (2) supply an alternative derivation of ``p``
  whenever the EDB relations fail to be a genuine arithmetic — this is
  what makes the non-halting direction work for *every* database.

:func:`uniformize` is the paper's uniform-case transform: a fresh
proposition ``q`` is added negatively to every body, plus ``q :- Q(z̄), q``
for every IDB predicate Q; Π is nonuniformly total iff the transform is
uniformly total.

Undecidability itself cannot be "run"; experiment E11 machine-checks both
directions of the reduction on concrete halting and non-halting machines,
including adversarial (non-arithmetic) databases.
"""

from __future__ import annotations

import random

from repro.constructions.counter_machines import CounterMachine
from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable

__all__ = [
    "machine_to_program",
    "uniformize",
    "natural_database",
    "random_database",
]

STATE, COUNT1, COUNT2 = "state", "count1", "count2"
ZERO, SUCC, LESS = "zero", "succ", "less"
TROUBLE = "p"
GUARD = "q"


def _chain(value: int, target: Variable, prefix: str) -> list[Literal]:
    """The paper's ``[target = value]``: zero(A0), succ(A0, A1), ..., succ(, target)."""
    if value == 0:
        return [Literal(Atom(ZERO, (target,)))]
    names = [Variable(f"{prefix}{i}") for i in range(value)]
    literals = [Literal(Atom(ZERO, (names[0],)))]
    for i in range(value - 1):
        literals.append(Literal(Atom(SUCC, (names[i], names[i + 1]))))
    literals.append(Literal(Atom(SUCC, (names[-1], target))))
    return literals


def machine_to_program(machine: CounterMachine) -> Program:
    """The Theorem 6 reduction program for machine M (nonuniform case)."""
    T, S, T2, S2 = Variable("T"), Variable("S"), Variable("T2"), Variable("S2")
    C1, C2 = Variable("C1"), Variable("C2")
    C1N, C2N = Variable("C1N"), Variable("C2N")
    X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
    rules: list[Rule] = []

    # Initialization: time 0, state 0, counters 0.
    rules.append(Rule(Atom(STATE, (T, S)), (Literal(Atom(ZERO, (T,))), Literal(Atom(ZERO, (S,))))))
    rules.append(Rule(Atom(COUNT1, (T, C1)), (Literal(Atom(ZERO, (T,))), Literal(Atom(ZERO, (C1,))))))
    rules.append(Rule(Atom(COUNT2, (T, C2)), (Literal(Atom(ZERO, (T,))), Literal(Atom(ZERO, (C2,))))))

    def common_body(state: int, z1: bool, z2: bool) -> list[Literal]:
        body = [
            Literal(Atom(STATE, (T, S))),
            Literal(Atom(COUNT1, (T, C1))),
            Literal(Atom(COUNT2, (T, C2))),
            Literal(Atom(SUCC, (T, T2))),
            Literal(Atom(ZERO, (C1,)), z1),
            Literal(Atom(ZERO, (C2,)), z2),
        ]
        body.extend(_chain(state, S, "A"))
        return body

    for (state, z1, z2), t in sorted(machine.transitions.items()):
        # STATE rule.
        body = common_body(state, z1, z2)
        body.extend(_chain(t.state, S2, "B"))
        rules.append(Rule(Atom(STATE, (T2, S2)), tuple(body)))
        # COUNT1 rule.
        body = common_body(state, z1, z2)
        if t.d1 == 0:
            head1 = Atom(COUNT1, (T2, C1))
        elif t.d1 == 1:
            body.append(Literal(Atom(SUCC, (C1, C1N))))
            head1 = Atom(COUNT1, (T2, C1N))
        else:
            body.append(Literal(Atom(SUCC, (C1N, C1))))
            head1 = Atom(COUNT1, (T2, C1N))
        rules.append(Rule(head1, tuple(body)))
        # COUNT2 rule.
        body = common_body(state, z1, z2)
        if t.d2 == 0:
            head2 = Atom(COUNT2, (T2, C2))
        elif t.d2 == 1:
            body.append(Literal(Atom(SUCC, (C2, C2N))))
            head2 = Atom(COUNT2, (T2, C2N))
        else:
            body.append(Literal(Atom(SUCC, (C2N, C2))))
            head2 = Atom(COUNT2, (T2, C2N))
        rules.append(Rule(head2, tuple(body)))

    p = Atom(TROUBLE)
    h = machine.halting_state

    # The troublesome rule: p :- ¬p, state(T, S), [S = h].
    trouble_body = [Literal(p, False), Literal(Atom(STATE, (T, S)))]
    trouble_body.extend(_chain(h, S, "A"))
    rules.append(Rule(p, tuple(trouble_body)))

    # (1a) p :- succ(X, Y), ¬less(X, Y).
    rules.append(
        Rule(p, (Literal(Atom(SUCC, (X, Y))), Literal(Atom(LESS, (X, Y)), False)))
    )
    # (1b) p :- succ(X, Y), less(Y, Z), ¬less(X, Z).
    rules.append(
        Rule(
            p,
            (
                Literal(Atom(SUCC, (X, Y))),
                Literal(Atom(LESS, (Y, Z))),
                Literal(Atom(LESS, (X, Z)), False),
            ),
        )
    )
    # (2) p :- state(T, S), state(T, S2), [S2 = h], less(S, S2).
    body2 = [Literal(Atom(STATE, (T, S))), Literal(Atom(STATE, (T, S2)))]
    body2.extend(_chain(h, S2, "B"))
    body2.append(Literal(Atom(LESS, (S, S2))))
    rules.append(Rule(p, tuple(body2)))

    return Program(rules)


def uniformize(program: Program, guard: str = GUARD) -> Program:
    """The uniform-case transform of the Theorem 6 proof.

    Adds ¬q to every rule body and ``q :- Q(z̄), q`` for every IDB
    predicate Q.  Π is nonuniformly total iff the result is (uniformly)
    total — verified on small propositional programs in the test suite.
    """
    if guard in program.predicates:
        raise ValueError(f"guard predicate {guard!r} already used by the program")
    q = Atom(guard)
    rules = [
        Rule(r.head, r.body + (Literal(q, False),)) for r in program.rules
    ]
    for predicate in sorted(program.idb_predicates):
        arity = program.arities[predicate]
        args = tuple(Variable(f"Z{i}") for i in range(arity))
        rules.append(Rule(q, (Literal(Atom(predicate, args)), Literal(q, True))))
    return Program(rules)


def natural_database(horizon: int) -> Database:
    """The intended arithmetic over 0..horizon: zero, succ, and less."""
    db = Database()
    db.add(ZERO, 0)
    for i in range(horizon):
        db.add(SUCC, i, i + 1)
    for i in range(horizon + 1):
        for j in range(i + 1, horizon + 1):
            db.add(LESS, i, j)
    return db


def random_database(size: int, *, seed: int | None = None, density: float = 0.3) -> Database:
    """An adversarial EDB: arbitrary zero/succ/less over 0..size-1.

    Exercises the guard rules (1a), (1b), (2): the non-halting direction of
    Theorem 6 promises a fixpoint for *every* database, not just the
    natural arithmetic.
    """
    rng = random.Random(seed)
    db = Database()
    values = list(range(size))
    for v in values:
        if rng.random() < density:
            db.add(ZERO, v)
    for a in values:
        for b in values:
            if rng.random() < density:
                db.add(SUCC, a, b)
            if rng.random() < density:
                db.add(LESS, a, b)
    if not db.predicates():
        db.add(ZERO, 0)
    return db
