"""Deterministic two-counter (Minsky) machines — the substrate of Theorem 6.

A machine has states 0..h (0 starting, h halting) and two counters; a
transition is chosen by the current state and the zero-tests of both
counters, and may move each counter by -1/0/+1 (never decrementing a zero
counter).  Two-counter machines are Turing-complete, which is what makes
the Theorem 6 reduction an undecidability proof; here we only ever *run*
them for bounded horizons to validate both directions of the reduction on
concrete halting and non-halting machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = [
    "Transition",
    "Configuration",
    "CounterMachine",
    "bounded_counter_machine",
    "looping_machine",
    "alternating_machine",
    "countdown_machine",
]


@dataclass(frozen=True, slots=True)
class Transition:
    """Target state and counter deltas of one machine step."""

    state: int
    d1: int
    d2: int


@dataclass(frozen=True, slots=True)
class Configuration:
    """A machine configuration: state and both counter values."""

    state: int
    c1: int
    c2: int


@dataclass(frozen=True)
class CounterMachine:
    """A deterministic 2-counter machine.

    ``transitions`` maps ``(state, c1_is_zero, c2_is_zero)`` to a
    :class:`Transition` for every non-halting state and test combination;
    the halting state ``state_count - 1`` has no transitions.

    >>> m = bounded_counter_machine(2)
    >>> m.run(10).halted, m.run(10).steps
    (True, 2)
    """

    state_count: int
    transitions: Mapping[tuple[int, bool, bool], Transition]

    def __post_init__(self) -> None:
        if self.state_count < 2:
            raise ValueError("need at least a start and a halting state")
        h = self.halting_state
        for (state, z1, z2), t in self.transitions.items():
            if not 0 <= state < h:
                raise ValueError(f"transition from invalid state {state}")
            if not 0 <= t.state <= h:
                raise ValueError(f"transition into invalid state {t.state}")
            if t.d1 not in (-1, 0, 1) or t.d2 not in (-1, 0, 1):
                raise ValueError("counter deltas must be -1, 0, or +1")
            if z1 and t.d1 == -1:
                raise ValueError(f"state {state}: cannot decrement zero counter 1")
            if z2 and t.d2 == -1:
                raise ValueError(f"state {state}: cannot decrement zero counter 2")
        for state in range(h):
            for z1 in (False, True):
                for z2 in (False, True):
                    if (state, z1, z2) not in self.transitions:
                        raise ValueError(
                            f"machine is not total: no transition for "
                            f"(state={state}, z1={z1}, z2={z2})"
                        )

    @property
    def halting_state(self) -> int:
        """The paper's h: the highest-numbered state."""
        return self.state_count - 1

    def step(self, config: Configuration) -> Configuration | None:
        """One move, or None if the configuration is halting."""
        if config.state == self.halting_state:
            return None
        t = self.transitions[(config.state, config.c1 == 0, config.c2 == 0)]
        return Configuration(t.state, config.c1 + t.d1, config.c2 + t.d2)

    def trace(self, max_steps: int) -> Iterator[Configuration]:
        """Configurations from the start, up to halting or ``max_steps``."""
        config = Configuration(0, 0, 0)
        yield config
        for _ in range(max_steps):
            next_config = self.step(config)
            if next_config is None:
                return
            config = next_config
            yield config

    def run(self, max_steps: int) -> "RunResult":
        """Run from (0, 0, 0); report halting within ``max_steps``."""
        trace = list(self.trace(max_steps))
        halted = trace[-1].state == self.halting_state
        return RunResult(halted=halted, steps=len(trace) - 1, trace=trace)


@dataclass(frozen=True)
class RunResult:
    """Outcome of a bounded run."""

    halted: bool
    steps: int
    trace: list[Configuration]

    @property
    def final(self) -> Configuration:
        """The last configuration reached."""
        return self.trace[-1]


def bounded_counter_machine(n: int) -> CounterMachine:
    """Increments counter 1 exactly ``n`` times, then halts (at time n).

    States 0..n with n halting: state i unconditionally increments and
    moves to i+1.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    transitions: dict[tuple[int, bool, bool], Transition] = {}
    for state in range(n):
        for z1 in (False, True):
            for z2 in (False, True):
                transitions[(state, z1, z2)] = Transition(state + 1, 1, 0)
    return CounterMachine(n + 1, transitions)


def looping_machine() -> CounterMachine:
    """Never halts: state 0 increments counter 1 forever (h = 1 unreachable)."""
    transitions = {
        (0, z1, z2): Transition(0, 1, 0) for z1 in (False, True) for z2 in (False, True)
    }
    return CounterMachine(2, transitions)


def alternating_machine() -> CounterMachine:
    """Never halts: ping-pongs between states 0 and 1, incrementing counter 1.

    Unlike :func:`looping_machine` it keeps *moving through states*, which
    exercises the state-encoding rules of the Theorem 6 reduction under
    adversarial databases.
    """
    transitions: dict[tuple[int, bool, bool], Transition] = {}
    for z1 in (False, True):
        for z2 in (False, True):
            transitions[(0, z1, z2)] = Transition(1, 1, 0)
            transitions[(1, z1, z2)] = Transition(0, 1, 0)
    return CounterMachine(3, transitions)


def countdown_machine(n: int) -> CounterMachine:
    """Counts counter 1 up to ``n`` then back down to 0, then halts.

    Exercises decrements and both zero-test polarities; halts at time
    2n + 1 (n increments, n decrements, one final halt move).
    States: 0..n-1 (up phase), n (down phase), n+1 halting.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    up_states = n
    down = n
    halt = n + 1
    transitions: dict[tuple[int, bool, bool], Transition] = {}
    for state in range(up_states):
        target = state + 1 if state + 1 < up_states else down
        for z1 in (False, True):
            for z2 in (False, True):
                transitions[(state, z1, z2)] = Transition(target, 1, 0)
    for z2 in (False, True):
        transitions[(down, False, z2)] = Transition(down, -1, 0)  # still positive
        transitions[(down, True, z2)] = Transition(halt, 0, 0)  # reached zero
    return CounterMachine(n + 2, transitions)
