"""Monotone Boolean circuits — the substrate of the Theorem 4 reduction.

The monotone circuit value problem (MCVP) is the canonical P-complete
problem; Theorem 4 reduces it to structural nonuniform totality.  This
module provides the circuit data structure, a topological evaluator, and
generators for random and adversarial circuits used by tests and benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Gate", "MonotoneCircuit", "random_monotone_circuit", "alternating_circuit"]

INPUT = "input"
AND = "and"
OR = "or"


@dataclass(frozen=True, slots=True)
class Gate:
    """One node of the circuit.

    ``kind`` is ``"input"``, ``"and"``, or ``"or"``; non-input gates list
    the indices of their operands, which must be strictly smaller than the
    gate's own index (the circuit is stored in topological order).
    """

    kind: str
    inputs: tuple[int, ...] = ()


@dataclass(frozen=True)
class MonotoneCircuit:
    """A monotone circuit in topological order; ``output`` names the root.

    >>> c = MonotoneCircuit((Gate(INPUT), Gate(INPUT), Gate(AND, (0, 1))), output=2)
    >>> c.evaluate([True, False])
    False
    >>> c.evaluate([True, True])
    True
    """

    gates: tuple[Gate, ...]
    output: int

    def __post_init__(self) -> None:
        for index, gate in enumerate(self.gates):
            if gate.kind == INPUT:
                if gate.inputs:
                    raise ValueError(f"input gate {index} must have no operands")
                continue
            if gate.kind not in (AND, OR):
                raise ValueError(f"gate {index} has unknown kind {gate.kind!r}")
            if not gate.inputs:
                raise ValueError(f"{gate.kind} gate {index} needs operands")
            if any(op >= index for op in gate.inputs):
                raise ValueError(f"gate {index} is not in topological order")
        if not 0 <= self.output < len(self.gates):
            raise ValueError("output index out of range")

    @property
    def input_indices(self) -> tuple[int, ...]:
        """Indices of the input gates, in order."""
        return tuple(i for i, g in enumerate(self.gates) if g.kind == INPUT)

    @property
    def input_count(self) -> int:
        """Number of input gates."""
        return len(self.input_indices)

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """Evaluate on an input-bit assignment (aligned with input order)."""
        inputs = self.input_indices
        if len(assignment) != len(inputs):
            raise ValueError(
                f"need {len(inputs)} input bits, got {len(assignment)}"
            )
        bit = dict(zip(inputs, assignment))
        values: list[bool] = []
        for index, gate in enumerate(self.gates):
            if gate.kind == INPUT:
                values.append(bit[index])
            elif gate.kind == AND:
                values.append(all(values[op] for op in gate.inputs))
            else:
                values.append(any(values[op] for op in gate.inputs))
        return values[self.output]

    def gate_values(self, assignment: Sequence[bool]) -> list[bool]:
        """Value of every gate (used to cross-check the usefulness claim)."""
        inputs = self.input_indices
        bit = dict(zip(inputs, assignment))
        values: list[bool] = []
        for index, gate in enumerate(self.gates):
            if gate.kind == INPUT:
                values.append(bit[index])
            elif gate.kind == AND:
                values.append(all(values[op] for op in gate.inputs))
            else:
                values.append(any(values[op] for op in gate.inputs))
        return values


def random_monotone_circuit(
    n_inputs: int,
    n_gates: int,
    *,
    seed: int | None = None,
    max_fan_in: int = 3,
) -> MonotoneCircuit:
    """A random topologically ordered monotone circuit.

    Gate kinds alternate at random; operands are drawn uniformly from all
    earlier gates, so late gates aggregate wide sub-circuits.
    """
    if n_inputs < 1 or n_gates < 1:
        raise ValueError("need at least one input and one gate")
    rng = random.Random(seed)
    gates: list[Gate] = [Gate(INPUT) for _ in range(n_inputs)]
    for _ in range(n_gates):
        fan_in = rng.randint(2, max(2, max_fan_in))
        operands = tuple(
            rng.randrange(len(gates)) for _ in range(min(fan_in, len(gates)))
        )
        gates.append(Gate(rng.choice([AND, OR]), operands))
    return MonotoneCircuit(tuple(gates), output=len(gates) - 1)


def alternating_circuit(depth: int) -> MonotoneCircuit:
    """A full binary AND/OR tree of the given depth (2**depth inputs).

    The classic hard MCVP shape: strictly alternating layers, output an
    AND.  Used for the scaling benches of experiment E8.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    n_leaves = 2**depth
    gates: list[Gate] = [Gate(INPUT) for _ in range(n_leaves)]
    layer = list(range(n_leaves))
    kind = OR if depth % 2 == 0 else AND
    while len(layer) > 1:
        next_layer = []
        for i in range(0, len(layer), 2):
            gates.append(Gate(kind, (layer[i], layer[i + 1])))
            next_layer.append(len(gates) - 1)
        layer = next_layer
        kind = AND if kind == OR else OR
    return MonotoneCircuit(tuple(gates), output=layer[0])
