"""Shared machinery for the Theorem 2/3/5 alphabetic-variant constructions.

All three constructions start from a cycle C = (P₀, ..., P_k) in a program
graph and rewrite the program rule-by-rule, treating one rule per arc as
*participating*: for the arc (Pᵢ, Pᵢ₊₁) a rule with head Pᵢ₊₁ and a body
occurrence of Pᵢ of the arc's sign is chosen, and that single occurrence is
the *designated* literal.  Every other occurrence in every rule is
rewritten by a scheme specific to the theorem.

:func:`assign_arc_rules` performs the choice; :func:`rewrite_program`
applies a rewrite scheme, producing a program with the same skeleton
(verified by the callers' tests via ``is_alphabetic_variant``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.useless import useless_predicates
from repro.datalog.atoms import Atom, Literal
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Term
from repro.errors import ConstructionError

__all__ = ["ArcAssignment", "Cycle", "assign_arc_rules", "rewrite_program", "RewriteScheme"]

Cycle = Sequence[tuple[str, str, bool]]  # arcs (P_i, P_{i+1}, positive)


@dataclass(frozen=True)
class ArcAssignment:
    """The rule and body position realising one arc of the cycle.

    ``rule_index`` indexes the source program; ``literal_index`` is the
    position (within that rule's body) of the designated occurrence of
    ``arc[0]`` with sign ``arc[2]``.
    """

    arc: tuple[str, str, bool]
    rule_index: int
    literal_index: int


def assign_arc_rules(
    program: Program,
    cycle: Cycle,
    *,
    avoid_useless: bool = False,
) -> list[ArcAssignment]:
    """Choose, for every arc of the cycle, a witnessing rule and occurrence.

    A simple cycle has distinct heads, so distinct arcs always pick distinct
    rules.  With ``avoid_useless`` (the Theorem 3 setting, where the cycle
    lives in G(Π′)), rules containing a positive occurrence of a useless
    predicate are skipped — those rules are dropped by the reduction, so
    they cannot witness an arc of the reduced graph.
    """
    heads = [arc[1] for arc in cycle]
    if len(set(heads)) != len(heads):
        raise ConstructionError("cycle must be simple (distinct predicates)")
    useless = useless_predicates(program) if avoid_useless else frozenset()

    assignments: list[ArcAssignment] = []
    for arc in cycle:
        source, target, positive = arc
        found = None
        for rule_index, rule in enumerate(program.rules):
            if rule.head.predicate != target:
                continue
            if avoid_useless and any(
                lit.positive and lit.predicate in useless for lit in rule.body
            ):
                continue
            for literal_index, lit in enumerate(rule.body):
                if lit.predicate == source and lit.positive == positive:
                    found = ArcAssignment(arc, rule_index, literal_index)
                    break
            if found:
                break
        if found is None:
            raise ConstructionError(
                f"no rule witnesses the arc {source} "
                f"{'→' if positive else '¬→'} {target}; is the cycle from this "
                "program's graph?"
            )
        assignments.append(found)
    return assignments


@dataclass(frozen=True)
class RewriteScheme:
    """How one construction rewrites occurrences of predicates.

    Each hook maps a predicate name to the argument tuple it receives:

    * ``designated_head`` — head of a participating rule (the paper's
      Pᵢ₊₁(a), or Pᵢ₊₁(a, x) ...);
    * ``designated_body`` — the designated occurrence itself, given the
      arc's sign (e.g. Pᵢ(a), or Pᵢ(a, x) / ¬Pᵢ(x, a));
    * ``other_positive`` / ``other_negative`` — every remaining occurrence,
      in participating and non-participating rules alike (the paper's Q(b)
      and ¬Q(c) replacements; heads of non-participating rules count as
      positive occurrences).
    """

    designated_head: Callable[[str], tuple[Term, ...]]
    designated_body: Callable[[str, bool], tuple[Term, ...]]
    other_positive: Callable[[str], tuple[Term, ...]]
    other_negative: Callable[[str], tuple[Term, ...]]


def rewrite_program(
    program: Program,
    assignments: Sequence[ArcAssignment],
    scheme: RewriteScheme,
) -> Program:
    """Apply a rewrite scheme, producing an alphabetic variant.

    The output keeps the rule order and the sign/predicate pattern of every
    rule — only argument tuples change — so the skeleton is preserved by
    construction.
    """
    designated = {
        (a.rule_index, a.literal_index): a for a in assignments
    }
    participating_rules = {a.rule_index for a in assignments}

    new_rules: list[Rule] = []
    for rule_index, rule in enumerate(program.rules):
        if rule_index in participating_rules:
            head = Atom(rule.head.predicate, scheme.designated_head(rule.head.predicate))
        else:
            head = Atom(rule.head.predicate, scheme.other_positive(rule.head.predicate))
        body: list[Literal] = []
        for literal_index, lit in enumerate(rule.body):
            assignment = designated.get((rule_index, literal_index))
            if assignment is not None:
                args = scheme.designated_body(lit.predicate, lit.positive)
            elif lit.positive:
                args = scheme.other_positive(lit.predicate)
            else:
                args = scheme.other_negative(lit.predicate)
            body.append(Literal(Atom(lit.predicate, args), lit.positive))
        new_rules.append(Rule(head, tuple(body)))
    return Program(new_rules)
