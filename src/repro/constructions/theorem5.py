"""Theorem 5 construction: unstratified ⇒ a variant where WF gets stuck.

Theorem 5: a program is *structurally well-founded total* iff it is
stratified (nonuniform case: iff Π′ is stratified).  The only-if proof
reuses the Theorem 2/3 rewrites, but starting from a cycle that merely
*contains a negative arc* (odd or even): the construction isolates the
cycle into ground rules ``Pᵢ₊₁(τ) ⇐ (¬)Pᵢ(τ)`` on which the well-founded
algorithm can assign nothing — the negative arc keeps the atoms out of
every unfounded set, and nothing else derives them.

When the cycle's negative count is *even* the variant still has fixpoints
(Theorem 2's if-direction) and the tie-breaking interpreters find them —
the sharpest separation between the paper's semantics and its baseline,
exercised as experiment E9.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.program_graph import program_graph
from repro.analysis.useless import reduced_program
from repro.constructions.theorem2 import theorem2_variant
from repro.constructions.theorem3 import theorem3_variant
from repro.constructions.variants import Cycle
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.errors import ConstructionError
from repro.graphs.odd_cycles import find_negative_cycle

__all__ = ["negative_cycle_in_program_graph", "theorem5_variant"]


def negative_cycle_in_program_graph(program: Program) -> Optional[Cycle]:
    """A simple cycle of G(Π) containing a negative edge, or None.

    Exists iff the program is unstratified (Theorem 5's premise).
    """
    cycle = find_negative_cycle(program_graph(program))
    if cycle is None:
        return None
    return tuple((e.source, e.target, e.positive) for e in cycle)


def theorem5_variant(
    program: Program,
    cycle: Optional[Cycle] = None,
    *,
    nonuniform: bool = False,
) -> tuple[Program, Database]:
    """An alphabetic variant on which the well-founded model is not total.

    ``cycle`` defaults to a negative-edge cycle of G(Π) (uniform case) or
    of G(Π′) (nonuniform case).  The rewrite is the Theorem 2 unary scheme
    (uniform) or the Theorem 3 binary scheme (nonuniform) applied to that
    cycle; the cycle need not be odd.

    >>> from repro.datalog.parser import parse_program
    >>> variant, delta = theorem5_variant(parse_program("p(X) :- not q(X). q(X) :- not p(X)."))
    >>> print(variant)
    p(a) :- ¬q(a).
    q(a) :- ¬p(a).
    """
    if cycle is None:
        base = reduced_program(program) if nonuniform else program
        cycle = negative_cycle_in_program_graph(base)
        if cycle is None:
            raise ConstructionError(
                "program is stratified"
                + (" after reduction" if nonuniform else "")
                + "; by Theorem 5 the well-founded semantics is total on every "
                "alphabetic variant"
            )
    if nonuniform:
        return theorem3_variant(program, cycle)
    return theorem2_variant(program, cycle)
