"""Every reduction and proof construction in the paper, executable.

* Theorem 2/3: alphabetic variants with no fixpoint (uniform / nonuniform,
  with and without constants);
* Theorem 5: variants where the well-founded semantics stalls;
* Theorem 4: monotone circuits and the MCVP P-completeness reduction;
* §5 Proposition: ∀∃-CNF and the Π₂ᵖ totality reduction;
* Theorem 6: two-counter machines and the undecidability reduction.
"""

from repro.constructions.circuits import (
    Gate,
    MonotoneCircuit,
    alternating_circuit,
    random_monotone_circuit,
)
from repro.constructions.counter_machines import (
    Configuration,
    CounterMachine,
    Transition,
    alternating_machine,
    bounded_counter_machine,
    countdown_machine,
    looping_machine,
)
from repro.constructions.proposition import (
    formula_to_program,
    is_total_propositional,
    propositional_databases,
)
from repro.constructions.qbf import ForallExistsCNF, forall_exists_holds, random_formula
from repro.constructions.theorem2 import theorem2_constant_free_variant, theorem2_variant
from repro.constructions.theorem3 import theorem3_constant_free_variant, theorem3_variant
from repro.constructions.theorem4 import (
    gate_predicate,
    mcvp_program,
    mcvp_via_structural_totality,
    useful_gates,
)
from repro.constructions.theorem5 import negative_cycle_in_program_graph, theorem5_variant
from repro.constructions.theorem6 import (
    machine_to_program,
    natural_database,
    random_database,
    uniformize,
)
from repro.constructions.variants import ArcAssignment, RewriteScheme, assign_arc_rules, rewrite_program

__all__ = [
    "ArcAssignment",
    "Configuration",
    "CounterMachine",
    "ForallExistsCNF",
    "Gate",
    "MonotoneCircuit",
    "RewriteScheme",
    "Transition",
    "alternating_circuit",
    "alternating_machine",
    "assign_arc_rules",
    "bounded_counter_machine",
    "countdown_machine",
    "forall_exists_holds",
    "formula_to_program",
    "gate_predicate",
    "is_total_propositional",
    "looping_machine",
    "machine_to_program",
    "mcvp_program",
    "mcvp_via_structural_totality",
    "natural_database",
    "negative_cycle_in_program_graph",
    "propositional_databases",
    "random_database",
    "random_formula",
    "random_monotone_circuit",
    "rewrite_program",
    "theorem2_constant_free_variant",
    "theorem2_variant",
    "theorem3_constant_free_variant",
    "theorem3_variant",
    "theorem5_variant",
    "uniformize",
    "useful_gates",
]
