"""repro.api — the unified evaluation surface.

One :class:`Engine` per (program, database): parse once, ground once,
compile the kernel index once, then serve every semantics through one
result schema (:class:`Solution`).  The semantics themselves are
declarative :class:`~repro.api.registry.SemanticsSpec` entries — see
:func:`available_semantics` — so new semantics plug in without new module
exports.

The historical per-semantics free functions
(``well_founded_model``, ``pure_tie_breaking``, ``enumerate_stable_models``,
...) remain importable but are deprecated shims over this package.
"""

from __future__ import annotations

import warnings

from repro.api.engine import Engine, enumerate_solutions, solve
from repro.api.registry import (
    SemanticsSpec,
    SolveRequest,
    available_semantics,
    describe_registry,
    get_spec,
    register,
)
from repro.api.solution import Solution

__all__ = [
    "Engine",
    "SemanticsSpec",
    "SolveRequest",
    "Solution",
    "available_semantics",
    "describe_registry",
    "enumerate_solutions",
    "get_spec",
    "register",
    "solve",
]


def warn_deprecated(old: str, replacement: str) -> None:
    """Emit the standard deprecation warning for a legacy free function."""
    warnings.warn(
        f"{old} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )
