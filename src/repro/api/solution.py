"""The one result schema every semantics returns.

Every entrypoint of :class:`repro.api.Engine` — ``solve``, ``enumerate``,
``query_many`` — produces a :class:`Solution`: a three-valued model
partition, totality flags, the tie trail (with the policy that oriented
it), per-phase timings, and the legacy run object for backward
compatibility.  JSON serialization lives in
:func:`repro.io.json_io.solution_to_json` (schema ``repro-solution/1``).

Two model conventions coexist, mirroring the interpreters:

* **materialized** — ``false_atoms`` is a set: the ground program's atom
  table was walked and every materialized atom received a value (the
  ground-graph semantics);
* **closed-world** — ``false_atoms`` is ``None``: only the true (and
  possibly undefined) atoms are listed and everything else is false
  (the set-based semantics: stratified, stable, completion, modular).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.datalog.atoms import Atom
from repro.ground.model import Interpretation

if TYPE_CHECKING:  # pragma: no cover - import cycles at type-check time only
    from repro.ground.state import GroundGraphState
    from repro.semantics.tie_breaking import TieChoice

__all__ = ["Solution"]


@dataclass(frozen=True)
class Solution:
    """One semantics' answer for one (program, database) pair.

    Field semantics:

    * ``semantics`` — canonical registry name that produced the result
      (aliases are resolved before solving);
    * ``found`` — ``False`` only for search semantics that found no
      model (``stable``, ``completion``); deterministic semantics always
      produce their (possibly partial) model;
    * ``total`` — every atom is true or false, nothing undefined;
    * ``true_atoms`` / ``undefined_atoms`` — always materialized sets;
    * ``false_atoms`` — a set under the *materialized* convention, or
      ``None`` under the *closed-world* convention (everything not
      listed true or undefined is false — see the module docstring);
    * ``model`` — the full :class:`~repro.ground.model.Interpretation`
      for ground-graph semantics, ``None`` for set-based ones;
    * ``choices`` — the tie-orientation trail (one ``TieChoice`` per
      orientation, forced or free), empty for tie-free semantics;
    * ``policy`` — ``repr()`` of the policy that oriented the ties
      (self-describing: ``"RandomChoice(seed=7)"`` replays the run);
    * ``iterations`` — semantics-specific loop count (unfounded-set
      rounds for ``well_founded``, components for ``modular``), or
      ``None``;
    * ``grounding`` — the grounding mode actually used, ``None`` for
      semantics that never ground;
    * ``timings`` — wall-clock seconds per pipeline phase (``parse_s``,
      ``ground_s``, ``compile_s``, ``solve_s``; ``artifact_load_s`` /
      ``artifact_save_s`` when binary artifacts are involved).  The
      ground-graph interpreters additionally break ``solve_s`` down into
      the kernel phases ``close_s`` / ``unfounded_s`` / ``tie_select_s``
      / ``tie_apply_s`` / ``tie_analysis_s`` (summing to ~``solve_s``);
    * ``state`` — the retained evaluation state for ``explain``, or
      ``None``;
    * ``run`` — the legacy result object (``WellFoundedRun``,
      ``TieBreakingRun``, ``Interpretation``, ``frozenset`` of true
      atoms, or ``None`` when nothing was found), kept so the deprecated
      free functions can delegate here without changing their return
      types.
    """

    semantics: str
    found: bool
    total: bool
    true_atoms: frozenset[Atom]
    undefined_atoms: frozenset[Atom]
    false_atoms: frozenset[Atom] | None
    model: Interpretation | None = None
    choices: tuple["TieChoice", ...] = ()
    policy: str | None = None
    iterations: int | None = None
    grounding: str | None = None
    timings: Mapping[str, float] = field(default_factory=dict)
    state: Optional["GroundGraphState"] = None
    run: Any = None

    @property
    def is_total(self) -> bool:
        """Alias for ``total`` matching the legacy run dataclasses."""
        return self.total

    @property
    def free_choice_count(self) -> int:
        """Number of genuinely nondeterministic tie orientations taken."""
        return sum(1 for c in self.choices if not c.forced)

    def value(self, atom: Atom) -> bool | None:
        """Three-valued lookup: True / False / None (undefined)."""
        if self.model is not None:
            return self.model.value(atom)
        if atom in self.true_atoms:
            return True
        if atom in self.undefined_atoms:
            return None
        if self.false_atoms is None:  # closed world
            return False
        return False if atom in self.false_atoms else None

    def holds(self, atom: Atom) -> bool:
        """True iff the atom is *true* (undefined does not hold)."""
        return self.value(atom) is True

    def true_rows(self, predicate: str) -> frozenset[tuple]:
        """Constant tuples of the true atoms of one predicate."""
        return frozenset(a.args for a in self.true_atoms if a.predicate == predicate)

    def undefined_rows(self, predicate: str) -> frozenset[tuple]:
        """Constant tuples of the undefined atoms of one predicate."""
        return frozenset(a.args for a in self.undefined_atoms if a.predicate == predicate)

    def to_json_dict(self) -> dict:
        """The ``repro-solution/1`` JSON object (see :mod:`repro.io.json_io`)."""
        from repro.io.json_io import solution_to_obj

        return solution_to_obj(self)

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON text of :meth:`to_json_dict`."""
        from repro.io.json_io import solution_to_json

        return solution_to_json(self, indent=indent)

    @classmethod
    def from_interpretation(
        cls,
        semantics: str,
        model: Interpretation,
        **extra: Any,
    ) -> "Solution":
        """Wrap a materialized three-valued model (the ground-graph result)."""
        return cls(
            semantics=semantics,
            found=True,
            total=model.is_total,
            true_atoms=frozenset(model.true_atoms()),
            undefined_atoms=frozenset(model.undefined_atoms()),
            false_atoms=frozenset(model.false_atoms()),
            model=model,
            **extra,
        )

    @classmethod
    def from_true_set(
        cls,
        semantics: str,
        true_atoms: frozenset[Atom],
        *,
        undefined_atoms: frozenset[Atom] = frozenset(),
        **extra: Any,
    ) -> "Solution":
        """Wrap a closed-world result (everything unlisted is false)."""
        return cls(
            semantics=semantics,
            found=True,
            total=not undefined_atoms,
            true_atoms=frozenset(true_atoms),
            undefined_atoms=frozenset(undefined_atoms),
            false_atoms=None,
            **extra,
        )

    @classmethod
    def not_found(cls, semantics: str, **extra: Any) -> "Solution":
        """The empty answer of a search semantics with no model."""
        return cls(
            semantics=semantics,
            found=False,
            total=False,
            true_atoms=frozenset(),
            undefined_atoms=frozenset(),
            false_atoms=None,
            **extra,
        )

    def summary(self) -> str:
        """One human line, for logs and the CLI."""
        if not self.found:
            return f"Solution({self.semantics}: no model)"
        undef = len(self.undefined_atoms)
        false = "closed-world" if self.false_atoms is None else str(len(self.false_atoms))
        return (
            f"Solution({self.semantics}: true={len(self.true_atoms)}, "
            f"false={false}, undefined={undef}, total={self.total})"
        )

    def __repr__(self) -> str:
        return self.summary()
