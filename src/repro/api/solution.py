"""The one result schema every semantics returns.

Every entrypoint of :class:`repro.api.Engine` — ``solve``, ``enumerate``,
``query_many`` — produces a :class:`Solution`: a three-valued model
partition, totality flags, the tie trail (with the policy that oriented
it), per-phase timings, and the legacy run object for backward
compatibility.  JSON serialization lives in
:func:`repro.io.json_io.solution_to_json` (schema ``repro-solution/1``).

Two model conventions coexist, mirroring the interpreters:

* **materialized** — ``false_atoms`` is a set: the ground program's atom
  table was walked and every materialized atom received a value (the
  ground-graph semantics);
* **closed-world** — ``false_atoms`` is ``None``: only the true (and
  possibly undefined) atoms are listed and everything else is false
  (the set-based semantics: stratified, stable, completion, modular).

Since PR 10 the materialized convention is **id-native and lazy**: a
model-backed solution stores only the kernel's
:class:`~repro.ground.model.Interpretation` (a status array over the
ground program's dense atom ids).  ``true_ids`` / ``false_ids`` /
``undefined_ids`` partition those ids with one status scan;
``true_atoms`` / ``false_atoms`` / ``undefined_atoms`` decode the ids
into :class:`~repro.datalog.atoms.Atom` sets *once, on first touch* —
callers that only need membership (``value``, ``query_many``) or the
streaming JSONL encoder never pay for the eager sets at all.  Decode
wall-clock is booked into ``timings["result_s"]``.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.datalog.atoms import Atom
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation

if TYPE_CHECKING:  # pragma: no cover - import cycles at type-check time only
    from repro.ground.state import GroundGraphState
    from repro.semantics.tie_breaking import TieChoice

__all__ = ["Solution"]

_UNSET = object()

#: (true_ids, false_ids, undefined_ids) — one status scan, cached.
_IdPartition = tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]

_FIELDS = (
    "semantics",
    "found",
    "total",
    "true_atoms",
    "undefined_atoms",
    "false_atoms",
    "model",
    "choices",
    "policy",
    "iterations",
    "grounding",
    "timings",
    "state",
    "run",
)


class Solution:
    """One semantics' answer for one (program, database) pair.

    Field semantics:

    * ``semantics`` — canonical registry name that produced the result
      (aliases are resolved before solving);
    * ``found`` — ``False`` only for search semantics that found no
      model (``stable``, ``completion``); deterministic semantics always
      produce their (possibly partial) model;
    * ``total`` — every atom is true or false, nothing undefined;
    * ``true_atoms`` / ``undefined_atoms`` — frozensets of atoms.  For
      model-backed solutions these are **lazy views**: nothing is decoded
      until a property is first read, then the decoded frozenset is
      cached on the instance (see the module docstring);
    * ``false_atoms`` — a (lazy) set under the *materialized* convention,
      or ``None`` under the *closed-world* convention (everything not
      listed true or undefined is false);
    * ``true_ids`` / ``false_ids`` / ``undefined_ids`` — the id-native
      partition of the atom table backing the lazy views: sorted tuples
      of dense atom ids, computed with one status scan and no atom
      decode.  ``None`` for model-less (closed-world) solutions;
    * ``model`` — the full :class:`~repro.ground.model.Interpretation`
      for ground-graph semantics, ``None`` for set-based ones;
    * ``choices`` — the tie-orientation trail (one ``TieChoice`` per
      orientation, forced or free), empty for tie-free semantics;
    * ``policy`` — ``repr()`` of the policy that oriented the ties
      (self-describing: ``"RandomChoice(seed=7)"`` replays the run);
    * ``iterations`` — semantics-specific loop count (unfounded-set
      rounds for ``well_founded``, components for ``modular``), or
      ``None``;
    * ``grounding`` — the grounding mode actually used, ``None`` for
      semantics that never ground;
    * ``timings`` — wall-clock seconds per pipeline phase (``parse_s``,
      ``ground_s``, ``compile_s``, ``solve_s``; ``artifact_load_s`` /
      ``artifact_save_s`` when binary artifacts are involved).  The
      ground-graph interpreters additionally break ``solve_s`` down into
      the kernel phases ``close_s`` / ``unfounded_s`` / ``tie_select_s``
      / ``tie_apply_s`` / ``tie_analysis_s`` (summing to ~``solve_s``);
      ``result_s`` accumulates lazy-decode/encode wall clock as views
      are touched (booked non-overlapping with ``solve_s``);
    * ``state`` — the retained evaluation state for ``explain``, or
      ``None``;
    * ``run`` — the legacy result object (``WellFoundedRun``,
      ``TieBreakingRun``, ``Interpretation``, ``frozenset`` of true
      atoms, or ``None`` when nothing was found), kept so the deprecated
      free functions can delegate here without changing their return
      types.

    Thread-safety of the lazy views: decode is idempotent (two racing
    readers build equal frozensets and one wins the cache slot), so
    concurrent reads are safe; only the ``result_s`` booking may
    undercount under a race.  The serving tier decodes at write time on
    the owning thread.
    """

    def __init__(
        self,
        semantics: str,
        found: bool,
        total: bool,
        true_atoms: frozenset[Atom] | Any = _UNSET,
        undefined_atoms: frozenset[Atom] | Any = _UNSET,
        false_atoms: frozenset[Atom] | None | Any = _UNSET,
        model: Interpretation | None = None,
        choices: tuple["TieChoice", ...] = (),
        policy: str | None = None,
        iterations: int | None = None,
        grounding: str | None = None,
        timings: Mapping[str, float] | None = None,
        state: Optional["GroundGraphState"] = None,
        run: Any = None,
    ) -> None:
        self.semantics = semantics
        self.found = found
        self.total = total
        self.model = model
        self.choices = choices
        self.policy = policy
        self.iterations = iterations
        self.grounding = grounding
        self.timings = {} if timings is None else timings
        self.state = state
        self.run = run
        if model is None:
            # Set-based results are born eager; unset fields default to
            # the closed-world empty answer.
            self._true = frozenset() if true_atoms is _UNSET else frozenset(true_atoms)
            self._undefined = (
                frozenset() if undefined_atoms is _UNSET else frozenset(undefined_atoms)
            )
            self._false = (
                None
                if false_atoms is _UNSET or false_atoms is None
                else frozenset(false_atoms)
            )
            self._false_decoded = True
        else:
            # Model-backed: whatever was not passed eagerly stays an
            # undecoded lazy view over the status array.
            self._true = None if true_atoms is _UNSET else frozenset(true_atoms)
            self._undefined = (
                None if undefined_atoms is _UNSET else frozenset(undefined_atoms)
            )
            self._false = None if false_atoms is _UNSET else false_atoms
            self._false_decoded = false_atoms is not _UNSET
        self._ids: _IdPartition | None = None
        self._strs: list[list[str] | None] = [None, None, None]
        self._result_s = 0.0

    # -- lazy id partition and decoded views -------------------------------

    def _book_result(self, dt: float) -> None:
        """Accumulate decode/encode wall clock into ``timings["result_s"]``."""
        self._result_s += dt
        timings = self.timings
        if isinstance(timings, dict):
            timings["result_s"] = self._result_s

    def _id_partition(self) -> _IdPartition:
        ids = self._ids
        if ids is None:
            t0 = perf_counter()
            true_ids: list[int] = []
            false_ids: list[int] = []
            undef_ids: list[int] = []
            push = {
                TRUE: true_ids.append,
                FALSE: false_ids.append,
                UNDEF: undef_ids.append,
            }
            for index, status in enumerate(self.model.status):
                push[status](index)
            ids = (tuple(true_ids), tuple(false_ids), tuple(undef_ids))
            self._ids = ids
            self._book_result(perf_counter() - t0)
        return ids

    def _decode(self, which: int) -> frozenset[Atom]:
        t0 = perf_counter()
        ids = self._id_partition()[which]
        table = self.model.ground_program.atoms
        decoded = frozenset(table.atom(i) for i in ids)
        self._book_result(perf_counter() - t0)
        return decoded

    def _sorted_strings(self, which: int) -> list[str]:
        """Sorted atom strings of one partition (0=true, 1=false, 2=undefined).

        The streaming encoder's decode path: id → atom → str, sorted, with
        no intermediate frozenset.  Cached per partition; the first compute
        books into ``result_s``.
        """
        strings = self._strs[which]
        if strings is None:
            t0 = perf_counter()
            if self.model is not None:
                ids = self._id_partition()[which]
                table = self.model.ground_program.atoms
                strings = sorted(str(table.atom(i)) for i in ids)
            else:
                atoms = (self._true, self._false or frozenset(), self._undefined)[which]
                strings = sorted(str(a) for a in atoms)
            self._strs[which] = strings
            self._book_result(perf_counter() - t0)
        return strings

    @property
    def true_ids(self) -> tuple[int, ...] | None:
        """Atom-table ids with value true (``None`` when model-less)."""
        if self.model is None:
            return None
        return self._id_partition()[0]

    @property
    def false_ids(self) -> tuple[int, ...] | None:
        """Atom-table ids with value false (``None`` when model-less)."""
        if self.model is None:
            return None
        return self._id_partition()[1]

    @property
    def undefined_ids(self) -> tuple[int, ...] | None:
        """Atom-table ids left undefined (``None`` when model-less)."""
        if self.model is None:
            return None
        return self._id_partition()[2]

    @property
    def true_atoms(self) -> frozenset[Atom]:
        if self._true is None:
            self._true = self._decode(0)
        return self._true

    @property
    def undefined_atoms(self) -> frozenset[Atom]:
        if self._undefined is None:
            self._undefined = self._decode(2)
        return self._undefined

    @property
    def false_atoms(self) -> frozenset[Atom] | None:
        if self.model is not None and not self._false_decoded:
            self._false = self._decode(1)
            self._false_decoded = True
        return self._false

    # -- derived views -----------------------------------------------------

    @property
    def is_total(self) -> bool:
        """Alias for ``total`` matching the legacy run dataclasses."""
        return self.total

    @property
    def free_choice_count(self) -> int:
        """Number of genuinely nondeterministic tie orientations taken."""
        return sum(1 for c in self.choices if not c.forced)

    def counts(self) -> tuple[int, int | None, int]:
        """``(true, false, undefined)`` cardinalities without atom decode.

        ``false`` is ``None`` under the closed-world convention.  For
        model-backed solutions this scans the status array once (cached)
        and never builds an atom set.
        """
        if self.model is not None:
            true_ids, false_ids, undef_ids = self._id_partition()
            return len(true_ids), len(false_ids), len(undef_ids)
        return (
            len(self._true),
            None if self._false is None else len(self._false),
            len(self._undefined),
        )

    def value(self, atom: Atom) -> bool | None:
        """Three-valued lookup: True / False / None (undefined).

        Model-backed solutions answer straight from the interned atom id
        (O(1), no set construction); set-based ones consult their sets.
        """
        if self.model is not None:
            return self.model.value(atom)
        if atom in self.true_atoms:
            return True
        if atom in self.undefined_atoms:
            return None
        if self.false_atoms is None:  # closed world
            return False
        return False if atom in self.false_atoms else None

    def holds(self, atom: Atom) -> bool:
        """True iff the atom is *true* (undefined does not hold)."""
        return self.value(atom) is True

    def true_rows(self, predicate: str) -> frozenset[tuple]:
        """Constant tuples of the true atoms of one predicate."""
        return frozenset(a.args for a in self.true_atoms if a.predicate == predicate)

    def undefined_rows(self, predicate: str) -> frozenset[tuple]:
        """Constant tuples of the undefined atoms of one predicate."""
        return frozenset(a.args for a in self.undefined_atoms if a.predicate == predicate)

    def to_json_dict(self) -> dict:
        """The ``repro-solution/1`` JSON object (see :mod:`repro.io.json_io`)."""
        from repro.io.json_io import solution_to_obj

        return solution_to_obj(self)

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON text of :meth:`to_json_dict`."""
        from repro.io.json_io import solution_to_json

        return solution_to_json(self, indent=indent)

    # -- construction ------------------------------------------------------

    def replace(self, **changes: Any) -> "Solution":
        """A copy with ``changes`` applied (the ``dataclasses.replace`` of old).

        Lazy-view caches (the id partition, any already-decoded sets, the
        accumulated ``result_s``) carry over, so replacing ``timings`` or
        ``grounding`` never forces or repeats a decode.
        """
        unknown = sorted(set(changes) - set(_FIELDS))
        if unknown:
            raise TypeError(f"unknown Solution field(s): {', '.join(unknown)}")
        lazy_fields = ("true_atoms", "undefined_atoms", "false_atoms")
        # Read the raw slots, not the properties: touching the properties
        # here would defeat the laziness this class exists for.
        kwargs = {
            name: getattr(self, name)
            for name in _FIELDS
            if name not in changes and name not in lazy_fields
        }
        if self.model is None:
            kwargs["true_atoms"] = self._true
            kwargs["undefined_atoms"] = self._undefined
            kwargs["false_atoms"] = self._false
        kwargs.update(changes)
        new = Solution(**kwargs)
        if self.model is not None and new.model is self.model:
            if "true_atoms" not in changes:
                new._true = self._true
            if "undefined_atoms" not in changes:
                new._undefined = self._undefined
            if "false_atoms" not in changes and self._false_decoded:
                new._false = self._false
                new._false_decoded = True
            if new._ids is None:
                new._ids = self._ids
            new._strs = self._strs
            new._result_s = self._result_s
            if self._result_s and isinstance(new.timings, dict):
                new.timings.setdefault("result_s", self._result_s)
        return new

    @classmethod
    def from_interpretation(
        cls,
        semantics: str,
        model: Interpretation,
        **extra: Any,
    ) -> "Solution":
        """Wrap a materialized three-valued model (the ground-graph result).

        Purely id-native: no atom set is built here — the views decode
        lazily on first read.
        """
        return cls(
            semantics=semantics,
            found=True,
            total=model.is_total,
            model=model,
            **extra,
        )

    @classmethod
    def from_true_set(
        cls,
        semantics: str,
        true_atoms: frozenset[Atom],
        *,
        undefined_atoms: frozenset[Atom] = frozenset(),
        **extra: Any,
    ) -> "Solution":
        """Wrap a closed-world result (everything unlisted is false)."""
        return cls(
            semantics=semantics,
            found=True,
            total=not undefined_atoms,
            true_atoms=frozenset(true_atoms),
            undefined_atoms=frozenset(undefined_atoms),
            false_atoms=None,
            **extra,
        )

    @classmethod
    def not_found(cls, semantics: str, **extra: Any) -> "Solution":
        """The empty answer of a search semantics with no model."""
        return cls(
            semantics=semantics,
            found=False,
            total=False,
            true_atoms=frozenset(),
            undefined_atoms=frozenset(),
            false_atoms=None,
            **extra,
        )

    # -- comparison and display --------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Solution):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name) for name in _FIELDS)

    def summary(self) -> str:
        """One human line, for logs and the CLI (no atom decode)."""
        if not self.found:
            return f"Solution({self.semantics}: no model)"
        true, false, undef = self.counts()
        false_text = "closed-world" if false is None else str(false)
        return (
            f"Solution({self.semantics}: true={true}, "
            f"false={false_text}, undefined={undef}, total={self.total})"
        )

    def __repr__(self) -> str:
        return self.summary()
