"""Declarative semantics registry: one spec per semantics, one result schema.

Every semantics the library implements is described by a
:class:`SemanticsSpec` — its canonical name, aliases, grounding
requirements, accepted options, and the runner (plus optional enumerator)
that produces :class:`~repro.api.solution.Solution` objects.  The
:class:`~repro.api.engine.Engine` resolves names through this table, so a
new semantics plugs in with one :func:`register` call instead of another
hand-written module export; the deprecated per-semantics free functions
delegate here as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram
from repro.datalog.program import Program
from repro.errors import SemanticsError
from repro.api.solution import Solution

__all__ = [
    "SemanticsSpec",
    "SolveRequest",
    "register",
    "get_spec",
    "available_semantics",
    "describe_registry",
]


@dataclass(frozen=True)
class SolveRequest:
    """Everything a semantics runner may need, resolved by the engine.

    ``gp`` is a zero-argument callable returning the (cached) ground
    program for the resolved grounding mode — runners that never call it
    never trigger a grounding.
    """

    program: Program
    database: Database
    grounding: GroundingMode | None
    gp: Callable[[], GroundProgram]
    options: Mapping[str, Any]


@dataclass(frozen=True)
class SemanticsSpec:
    """One semantics, declaratively.

    * ``default_grounding`` — mode used when neither the engine nor the
      call site picks one; ``None`` means the semantics never touches the
      ground graph (it evaluates on the program/database directly);
    * ``grounding_locked`` — the semantics' *results* depend on its
      grounding mode (e.g. Fitting requires full grounding; pure
      tie-breaking, completion, and stable enumeration are sound only on
      their defaults), so an engine-level default grounding must not
      override the spec default — only an explicit per-call
      ``grounding=`` does;
    * ``options`` — keyword options the runner understands; anything else
      is rejected up front with the available choices;
    * ``solver`` / ``enumerator`` — produce one :class:`Solution` /
      lazily yield every :class:`Solution`.
    """

    name: str
    summary: str
    solver: Callable[[SolveRequest], Solution]
    enumerator: Callable[[SolveRequest], Iterator[Solution]] | None = None
    aliases: tuple[str, ...] = ()
    default_grounding: GroundingMode | None = "relevant"
    grounding_locked: bool = False
    options: tuple[str, ...] = ()


_REGISTRY: dict[str, SemanticsSpec] = {}
_ALIASES: dict[str, str] = {}


def register(spec: SemanticsSpec) -> SemanticsSpec:
    """Install a semantics spec; its name and aliases become solvable.

    Returns the spec (so it can be used as a decorator-style one-liner);
    raises :class:`~repro.errors.SemanticsError` when a name or alias is
    already registered for a *different* semantics.  Re-registering the
    same name overwrites it — the plug-in path for replacing a built-in.
    """
    for name in (spec.name, *spec.aliases):
        taken = _ALIASES.get(name)
        if taken is not None and taken != spec.name:
            raise SemanticsError(f"semantics name {name!r} already registered for {taken!r}")
    _REGISTRY[spec.name] = spec
    for name in (spec.name, *spec.aliases):
        _ALIASES[name] = spec.name
    return spec


def get_spec(name: str) -> SemanticsSpec:
    """Resolve a semantics name or alias to its spec.

    Raises :class:`~repro.errors.SemanticsError` for unknown names,
    listing the available canonical names.
    """
    canonical = _ALIASES.get(name)
    if canonical is None:
        raise SemanticsError(
            f"unknown semantics {name!r}; available: {', '.join(available_semantics())}"
        )
    return _REGISTRY[canonical]


def available_semantics() -> tuple[str, ...]:
    """Canonical names of every registered semantics, sorted."""
    return tuple(sorted(_REGISTRY))


def describe_registry() -> str:
    """Human-readable table of the registry (CLI ``run --semantics help``)."""
    lines = []
    for name in available_semantics():
        spec = _REGISTRY[name]
        aka = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        lines.append(f"{name:<18} {spec.summary}{aka}")
    return "\n".join(lines)


def _check_options(spec: SemanticsSpec, options: Mapping[str, Any]) -> None:
    unknown = sorted(set(options) - set(spec.options))
    if unknown:
        allowed = ", ".join(spec.options) if spec.options else "(none)"
        raise SemanticsError(
            f"semantics {spec.name!r} does not accept option(s) "
            f"{', '.join(unknown)}; allowed: {allowed}"
        )


# ---------------------------------------------------------------------------
# Built-in semantics runners.  Each wraps the private implementation living
# in its repro.semantics module; the public free functions there are the
# deprecated shims delegating back to this registry.
# ---------------------------------------------------------------------------


def _solve_well_founded(req: SolveRequest) -> Solution:
    from repro.semantics.well_founded import _well_founded_model

    run = _well_founded_model(
        req.program,
        req.database,
        ground_program=req.gp(),
        backend=req.options.get("backend"),
    )
    return Solution.from_interpretation(
        "well_founded",
        run.model,
        iterations=run.iterations,
        state=run.state,
        run=run,
        timings=dict(run.timings or {}),
    )


def _tie_solution(name: str, run: Any) -> Solution:
    return Solution.from_interpretation(
        name,
        run.model,
        choices=run.choices,
        policy=run.policy,
        state=run.state,
        run=run,
        timings=dict(run.timings or {}),
    )


def _solve_tie_breaking(req: SolveRequest) -> Solution:
    from repro.semantics.tie_breaking import _well_founded_tie_breaking

    run = _well_founded_tie_breaking(
        req.program,
        req.database,
        policy=req.options.get("policy"),
        ground_program=req.gp(),
        backend=req.options.get("backend"),
    )
    return _tie_solution("tie_breaking", run)


def _solve_pure_tie_breaking(req: SolveRequest) -> Solution:
    from repro.semantics.tie_breaking import _pure_tie_breaking

    run = _pure_tie_breaking(
        req.program,
        req.database,
        policy=req.options.get("policy"),
        ground_program=req.gp(),
        backend=req.options.get("backend"),
    )
    return _tie_solution("pure_tie_breaking", run)


def _enumerate_ties(req: SolveRequest, name: str, variant: str) -> Iterator[Solution]:
    from repro.semantics.tie_breaking import _enumerate_tie_breaking_models

    for run in _enumerate_tie_breaking_models(
        req.program,
        req.database,
        variant=variant,
        ground_program=req.gp(),
        limit=req.options.get("limit"),
    ):
        yield _tie_solution(name, run)


def _enumerate_tie_breaking(req: SolveRequest) -> Iterator[Solution]:
    return _enumerate_ties(req, "tie_breaking", "well-founded")


def _enumerate_pure_tie_breaking(req: SolveRequest) -> Iterator[Solution]:
    return _enumerate_ties(req, "pure_tie_breaking", "pure")


def _solve_fitting(req: SolveRequest) -> Solution:
    from repro.semantics.fitting import _fitting_model

    model = _fitting_model(req.program, req.database, ground_program=req.gp())
    return Solution.from_interpretation("fitting", model, run=model)


def _solve_perfect(req: SolveRequest) -> Solution:
    from repro.semantics.perfect import _perfect_model

    model = _perfect_model(req.program, req.database, ground_program=req.gp())
    return Solution.from_interpretation("perfect", model, run=model)


def _solve_alternating(req: SolveRequest) -> Solution:
    from repro.semantics.alternating import _alternating_fixpoint_model

    model = _alternating_fixpoint_model(req.program, req.database, ground_program=req.gp())
    return Solution.from_interpretation("alternating", model, run=model)


def _solve_stratified(req: SolveRequest) -> Solution:
    from repro.semantics.stratified import _stratified_model

    kwargs = {}
    if "max_branch" in req.options:
        kwargs["max_branch"] = req.options["max_branch"]
    trues = _stratified_model(req.program, req.database, **kwargs)
    return Solution.from_true_set("stratified", trues, run=trues)


def _solve_modular(req: SolveRequest) -> Solution:
    from repro.semantics.modular import _modular_well_founded_model

    result = _modular_well_founded_model(
        req.program, req.database, grounding=req.grounding or "relevant"
    )
    return Solution.from_true_set(
        "modular",
        result.true_atoms,
        undefined_atoms=result.undefined_atoms,
        iterations=result.component_count,
        run=result,
    )


def _enumerate_completion(req: SolveRequest) -> Iterator[Solution]:
    from repro.semantics.completion import _enumerate_fixpoints

    for trues in _enumerate_fixpoints(
        req.program,
        req.database,
        ground_program=req.gp(),
        limit=req.options.get("limit"),
    ):
        yield Solution.from_true_set("completion", trues, run=trues)


def _solve_completion(req: SolveRequest) -> Solution:
    for solution in _enumerate_completion(req):
        return solution
    return Solution.not_found("completion")


def _enumerate_stable(req: SolveRequest) -> Iterator[Solution]:
    from repro.semantics.stable import _enumerate_stable_models

    for trues in _enumerate_stable_models(
        req.program,
        req.database,
        ground_program=req.gp(),
        limit=req.options.get("limit"),
    ):
        yield Solution.from_true_set("stable", trues, run=trues)


def _solve_stable(req: SolveRequest) -> Solution:
    for solution in _enumerate_stable(req):
        return solution
    return Solution.not_found("stable")


register(
    SemanticsSpec(
        name="well_founded",
        summary="Algorithm Well-Founded (§2): the unique partial model",
        solver=_solve_well_founded,
        aliases=("wf", "well-founded"),
        default_grounding="relevant",
        options=("backend",),
    )
)

register(
    SemanticsSpec(
        name="tie_breaking",
        summary="Algorithm Well-Founded Tie-Breaking (§3): total results are stable",
        solver=_solve_tie_breaking,
        enumerator=_enumerate_tie_breaking,
        aliases=("wf-tb", "tie-breaking", "well-founded-tie-breaking"),
        default_grounding="relevant",
        options=("policy", "backend"),
    )
)

register(
    SemanticsSpec(
        name="pure_tie_breaking",
        summary="Algorithm Pure Tie-Breaking (§3): break ties without the unfounded step",
        solver=_solve_pure_tie_breaking,
        enumerator=_enumerate_pure_tie_breaking,
        aliases=("pure-tb", "pure"),
        default_grounding="full",
        grounding_locked=True,
        options=("policy", "backend"),
    )
)

register(
    SemanticsSpec(
        name="fitting",
        summary="Fitting / Kripke-Kleene three-valued least fixpoint",
        solver=_solve_fitting,
        aliases=("kripke-kleene",),
        default_grounding="full",
        grounding_locked=True,
    )
)

register(
    SemanticsSpec(
        name="perfect",
        summary="Przymusinski's perfect model of a locally stratified program",
        solver=_solve_perfect,
        default_grounding="full",
        grounding_locked=True,
    )
)

register(
    SemanticsSpec(
        name="stratified",
        summary="level-by-level standard model of a stratified program (no grounding)",
        solver=_solve_stratified,
        default_grounding=None,
        options=("max_branch",),
    )
)

register(
    SemanticsSpec(
        name="completion",
        summary="fixpoints (supported models) via Clark-completion SAT",
        solver=_solve_completion,
        enumerator=_enumerate_completion,
        aliases=("fixpoints", "supported"),
        default_grounding="full",
        grounding_locked=True,
    )
)

register(
    SemanticsSpec(
        name="stable",
        summary="stable models: completion fixpoints filtered by the GL reduct",
        solver=_solve_stable,
        enumerator=_enumerate_stable,
        default_grounding="full",
        grounding_locked=True,
    )
)

register(
    SemanticsSpec(
        name="alternating",
        summary="well-founded model via Van Gelder's alternating fixpoint of Γ²",
        solver=_solve_alternating,
        default_grounding="relevant",
    )
)

register(
    SemanticsSpec(
        name="modular",
        summary="well-founded model, one program-graph SCC at a time",
        solver=_solve_modular,
        default_grounding="relevant",
    )
)
