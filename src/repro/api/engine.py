"""The Engine facade: parse and ground once, serve every semantics.

One :class:`Engine` owns the full pipeline for one (program, database)
pair: parse → ground → compile the :class:`~repro.datalog.grounding.GroundIndex`
kernel view, each exactly once per grounding mode, then answer any number
of ``solve`` / ``enumerate`` / ``query_many`` / ``explain`` calls against
the shared compiled ground graph.  This is the production entry point: the
CLI, the examples, and the bench pipeline all ride it, and the legacy
per-semantics free functions are deprecated shims over it.

    >>> from repro.api import Engine
    >>> engine = Engine("win(X) :- move(X, Y), not win(Y).", "move(1, 2). move(2, 1).")
    >>> engine.solve("well_founded").total
    False
    >>> engine.solve("tie_breaking").total
    True
    >>> engine.ground_calls  # both solves shared one grounding
    1
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import Any, Iterable, Iterator, Mapping

from repro.analysis.classify import ProgramClassification, classify_program
from repro.analysis.structural import StructuralReport, structural_report
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, apply_facts_delta, ground
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import Program
from repro.datalog.terms import Constant
from repro.engine.plan import ConstantPool
from repro.errors import GroundingError, SemanticsError
from repro.ground.backend import BACKENDS
from repro.io.artifact import ArtifactCache, cache_key, load_artifact, save_ground_program
from repro.api.registry import SemanticsSpec, SolveRequest, _check_options, get_spec
from repro.api.solution import Solution

__all__ = ["Engine", "solve", "enumerate_solutions"]


class Engine:
    """Session-style evaluation engine over one (program, database) pair.

    ``program`` / ``database`` accept parsed objects or Datalog source
    text.  ``grounding`` fixes a default mode for every semantics (each
    spec carries its own default otherwise); ``ground_program`` seeds the
    cache with an existing compiled ground program (it is then used for
    every solve — the legacy ``ground_program=`` calling convention);
    ``policy`` is the default tie-orientation policy.

    ``artifact_cache`` (an :class:`~repro.io.artifact.ArtifactCache` or a
    directory path) enables the on-disk compile cache: before grounding a
    mode, the engine looks up the ``repro-ground/1`` artifact keyed by
    (program hash, mode, pool fingerprint) and warm-starts from it; after
    a fresh grounding, the artifact is written back for the next process.

    ``backend`` fixes the default evaluation kernel for the semantics
    that run on the ground graph: ``"python"`` (the portable pure-Python
    kernel, the default), ``"array"`` (the NumPy-vectorized kernel;
    raises :class:`~repro.errors.BackendUnavailableError` when numpy is
    not importable), or ``"auto"`` (array when numpy is available and
    the graph is large enough to amortize vectorization, python
    otherwise).  A per-call ``backend=`` option overrides it.
    """

    def __init__(
        self,
        program: Program | str,
        database: Database | str | None = None,
        *,
        grounding: GroundingMode | None = None,
        ground_program: GroundProgram | None = None,
        policy: Any | None = None,
        artifact_cache: ArtifactCache | str | Path | None = None,
        backend: str | None = None,
    ) -> None:
        t0 = perf_counter()
        if isinstance(program, str):
            program = parse_program(program)
        if isinstance(database, str):
            database = parse_database(database)
        parse_s = perf_counter() - t0
        self.program = program
        self.database = database if database is not None else Database()
        self.default_grounding = grounding
        self.default_policy = policy
        if backend is not None and backend not in BACKENDS:
            raise SemanticsError(
                f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}"
            )
        self.default_backend = backend
        self.ground_calls = 0
        self.index_builds = 0
        self.artifact_hits = 0
        self.update_calls = 0
        self.facts_inserted = 0
        self.facts_retracted = 0
        self.delta_applied = 0
        self.delta_rebuilds = 0
        if artifact_cache is not None and not isinstance(artifact_cache, ArtifactCache):
            artifact_cache = ArtifactCache(artifact_cache)
        self.artifact_cache = artifact_cache
        self._timings: dict[str, float] = {"parse_s": parse_s, "ground_s": 0.0, "compile_s": 0.0}
        # One interning session: every grounding mode of this engine shares
        # the same constant → dense-id mapping (and hence row encodings).
        self._pool = ConstantPool()
        self._ground_cache: dict[GroundingMode, GroundProgram] = {}
        self._solution_cache: dict[tuple, Solution] = {}
        self.solution_cache_hits = 0
        self._pinned = ground_program
        if ground_program is not None:
            self._ground_cache[ground_program.mode] = ground_program

    @classmethod
    def from_files(
        cls,
        program_path: str | Path,
        db_path: str | Path | None = None,
        **kwargs: Any,
    ) -> "Engine":
        """Build an engine from a program file and an optional facts file.

        ``program_path`` / ``db_path`` name Datalog¬ source files parsed
        with :mod:`repro.datalog.parser`; ``kwargs`` pass through to the
        constructor.  Raises ``OSError`` for unreadable paths and
        :class:`~repro.errors.ParseError` for invalid source.
        """
        program = Path(program_path).read_text()
        database = Path(db_path).read_text() if db_path else None
        return cls(program, database, **kwargs)

    # -- the one compile ---------------------------------------------------

    @property
    def timings(self) -> Mapping[str, float]:
        """Accumulated one-time pipeline costs (parse / ground / compile)."""
        return dict(self._timings)

    def ground_for(
        self, mode: GroundingMode | None = None, *, max_instances: int | None = None
    ) -> GroundProgram:
        """The compiled ground program for ``mode``, grounding at most once.

        A pinned ``ground_program`` (constructor argument) is always
        returned as-is; otherwise each mode is grounded and kernel-compiled
        on first use and served from the cache afterwards.  With an
        ``artifact_cache`` configured, a first use consults the on-disk
        artifact before grounding and writes one back after.

        Raises :class:`~repro.errors.GroundingError` when a cached
        grounding exceeds a newly requested ``max_instances`` cap.
        """
        if self._pinned is not None:
            return self._pinned
        resolved: GroundingMode = mode or self.default_grounding or "relevant"
        gp = self._ground_cache.get(resolved)
        if gp is None:
            key = None
            if self.artifact_cache is not None:
                key = cache_key(self.program, self.database, resolved, self._pool)
                gp = self._load_cached_artifact(key, max_instances)
            if gp is None:
                kwargs: dict[str, Any] = {}
                if max_instances is not None:
                    kwargs["max_instances"] = max_instances
                t0 = perf_counter()
                gp = ground(self.program, self.database, mode=resolved, pool=self._pool, **kwargs)
                self.ground_calls += 1
                self._timings["ground_s"] += perf_counter() - t0
                t0 = perf_counter()
                gp.index  # compile the CSR kernel arrays once, shared by every state
                self.index_builds += 1
                self._timings["compile_s"] += perf_counter() - t0
                if key is not None:
                    # Store after the timed compile: the artifact freezes
                    # the compiled index, so putting it first would smuggle
                    # the compile cost into an untimed serialization call.
                    assert self.artifact_cache is not None
                    t0 = perf_counter()
                    self.artifact_cache.put(key, gp)
                    self._timings["artifact_save_s"] = (
                        self._timings.get("artifact_save_s", 0.0) + perf_counter() - t0
                    )
            # Artifact-loaded ground programs arrive with their index
            # restored (GroundIndex.from_arrays), so there is nothing to
            # compile or count on that path.
            self._ground_cache[resolved] = gp
        elif max_instances is not None and gp.rule_count > max_instances:
            # The cache holds a grounding that violates the caller's cap;
            # serving it would silently ignore the explosion guard.
            raise GroundingError(
                f"cached {resolved!r} grounding has {gp.rule_count} instances, "
                f"exceeding the requested max_instances={max_instances}"
            )
        return gp

    def _load_cached_artifact(self, key: str, max_instances: int | None) -> GroundProgram | None:
        """One artifact-cache probe: a warm ground program, or ``None``.

        Misses (absent, corrupt, or version-mismatched entries), pool
        incompatibilities, and cached groundings that would violate the
        caller's ``max_instances`` cap all return ``None`` — the caller
        falls back to grounding from source.
        """
        assert self.artifact_cache is not None
        t0 = perf_counter()
        artifact = self.artifact_cache.get(key)
        if artifact is None:
            return None
        gp = artifact.ground_program
        if max_instances is not None and gp.rule_count > max_instances:
            return None
        if not self._adopt_pool(artifact.pool):
            return None
        self.artifact_hits += 1
        self._timings["artifact_load_s"] = (
            self._timings.get("artifact_load_s", 0.0) + perf_counter() - t0
        )
        return gp

    def _adopt_pool(self, pool: ConstantPool) -> bool:
        """Merge an artifact's interning session into the engine's.

        Pools are compatible iff one extends the other (same constant at
        every shared dense id); the longer session wins, so every row
        encoding — cached, loaded, or yet to be grounded — stays valid.
        Returns ``False`` (and leaves the engine untouched) otherwise.
        """
        mine = self._pool
        shorter, longer = (mine, pool) if len(mine) <= len(pool) else (pool, mine)
        for i in range(len(shorter)):
            if shorter.constant(i) != longer.constant(i):
                return False
        self._pool = longer
        return True

    def save_artifact(self, path: str | Path, mode: GroundingMode | None = None) -> Path:
        """Serialize one mode's compiled grounding as a binary artifact.

        Grounds (or reuses the cached grounding of) ``mode`` — resolved
        exactly like :meth:`ground_for` — and writes it atomically to
        ``path`` in the ``repro-ground/1`` format.  Returns the written
        path; the save is timed under ``timings["artifact_save_s"]``.
        """
        gp = self.ground_for(mode)
        t0 = perf_counter()
        target = save_ground_program(gp, path)
        self._timings["artifact_save_s"] = (
            self._timings.get("artifact_save_s", 0.0) + perf_counter() - t0
        )
        return target

    @classmethod
    def from_artifact(
        cls,
        source: str | Path | bytes,
        *,
        policy: Any | None = None,
        artifact_cache: ArtifactCache | str | Path | None = None,
        backend: str | None = None,
    ) -> "Engine":
        """Warm-start an engine from a ``repro-ground/1`` artifact.

        The returned engine never re-parses, re-grounds, or recompiles:
        program, database, constant pool, the compiled ground program,
        *and* the kernel index (restored array-for-array by
        :func:`~repro.io.artifact.load_artifact`) all come from the
        artifact, whose grounding mode becomes the engine's default — so
        the first ``solve`` pays only solve time, and ``index_builds``
        stays 0.  ``timings["artifact_load_s"]`` records the load.

        Raises :class:`~repro.errors.ArtifactError` if the artifact is
        corrupt or from an incompatible format version.
        """
        t0 = perf_counter()
        artifact = load_artifact(source)
        gp = artifact.ground_program
        engine = cls(
            gp.program,
            gp.database,
            grounding=gp.mode,
            policy=policy,
            artifact_cache=artifact_cache,
            backend=backend,
        )
        engine._pool = artifact.pool
        engine._ground_cache[gp.mode] = gp
        engine._timings["artifact_load_s"] = perf_counter() - t0
        return engine

    def _resolve_grounding(
        self, spec: SemanticsSpec, requested: GroundingMode | None
    ) -> GroundingMode | None:
        if spec.grounding_locked:
            return requested or spec.default_grounding
        return requested or self.default_grounding or spec.default_grounding

    def _request(
        self, spec: SemanticsSpec, options: dict[str, Any], *, enumerating: bool = False
    ) -> SolveRequest:
        requested = options.pop("grounding", None)
        max_instances = options.pop("max_instances", None)
        if "policy" in spec.options and options.get("policy") is None:
            options["policy"] = self.default_policy
        if "backend" in spec.options and options.get("backend") is None:
            options["backend"] = self.default_backend
        # ``limit`` is engine-managed and only meaningful when enumerating;
        # on solve() it is rejected like any other unknown option.
        checked = {k: v for k, v in options.items() if not (enumerating and k == "limit")}
        _check_options(spec, checked)
        grounding = self._resolve_grounding(spec, requested)
        return SolveRequest(
            program=self.program,
            database=self.database,
            grounding=grounding,
            gp=lambda: self.ground_for(grounding, max_instances=max_instances),
            options=options,
        )

    @staticmethod
    def _cache_key(spec: SemanticsSpec, options: Mapping[str, Any]) -> tuple | None:
        """A reuse key for one solve, or None when reuse would be unsafe.

        Option values are keyed by ``repr`` — every bundled policy is
        self-describing (``RandomChoice(seed=7)``), so equal reprs mean
        equal behaviour.  Values whose repr is identity-based (contains a
        memory address) are not cacheable: ids get recycled.
        """
        parts = []
        for key, value in sorted(options.items()):
            description = repr(value)
            if " at 0x" in description:
                return None
            parts.append((key, description))
        return (spec.name, tuple(parts))

    def _finalize(self, solution: Solution, solve_s: float) -> Solution:
        # Keep whatever the solver recorded (the kernel's per-phase solve
        # breakdown: close_s / unfounded_s / tie_select_s / tie_apply_s /
        # tie_analysis_s) and add the engine-level pipeline costs on top.
        # Any result_s the solver already accumulated (a lazy view touched
        # inside the solve window) is subtracted from solve_s, so the
        # result phase books non-overlapping — the same discipline as
        # tie_analysis_s inside tie_select_s.
        overlap = solution.timings.get("result_s", 0.0)
        if overlap:
            solve_s = max(0.0, solve_s - overlap)
        return solution.replace(
            timings={**solution.timings, **self._timings, "solve_s": solve_s},
        )

    # -- solving -----------------------------------------------------------

    def solve(self, semantics: str = "tie_breaking", **options: Any) -> Solution:
        """Evaluate under one semantics, returning the unified :class:`Solution`.

        ``semantics`` is any registry name or alias (``well_founded``,
        ``stable``, ``tie_breaking``, ``fitting``, ``perfect``,
        ``stratified``, ``completion``, ...); ``options`` may include
        ``grounding`` plus whatever the spec accepts (e.g. ``policy``).
        Raises :class:`~repro.errors.SemanticsError` for unknown names or
        options the spec rejects, and
        :class:`~repro.errors.GroundingError` if grounding exceeds a
        requested ``max_instances`` cap.

        Results are cached per (semantics, options): repeated solves — and
        the ``query``/``query_many``/``explain`` helpers built on them —
        reuse the first computation.  Pass a policy with a different seed
        for an independent nondeterministic run.
        """
        spec = get_spec(semantics)
        key = self._cache_key(spec, options)
        if key is not None:
            cached = self._solution_cache.get(key)
            if cached is not None:
                self.solution_cache_hits += 1
                return cached
        request = self._request(spec, dict(options))
        t0 = perf_counter()
        solution = spec.solver(request)
        solution = solution.replace(grounding=request.grounding)
        solution = self._finalize(solution, perf_counter() - t0)
        if key is not None:
            self._solution_cache[key] = solution
        return solution

    def enumerate(
        self, semantics: str = "tie_breaking", *, limit: int | None = None, **options: Any
    ) -> Iterator[Solution]:
        """Lazily yield every model of an enumerable semantics.

        ``limit`` caps the number of yielded solutions (``None`` means
        all); ``options`` are checked against the spec exactly as in
        :meth:`solve` (raising :class:`~repro.errors.SemanticsError`
        otherwise).  Deterministic semantics yield their single solution
        (zero when ``limit=0``), so callers can treat every semantics
        uniformly.
        """
        spec = get_spec(semantics)
        all_options = dict(options)
        all_options["limit"] = limit
        request = self._request(spec, all_options, enumerating=True)
        if spec.enumerator is None:
            if limit is not None and limit <= 0:
                return
            t0 = perf_counter()
            solution = spec.solver(request)
            solution = solution.replace(grounding=request.grounding)
            yield self._finalize(solution, perf_counter() - t0)
            return
        t0 = perf_counter()
        for solution in spec.enumerator(request):
            solve_s = perf_counter() - t0
            solution = solution.replace(grounding=request.grounding)
            yield self._finalize(solution, solve_s)
            t0 = perf_counter()

    # -- streaming updates -------------------------------------------------

    @staticmethod
    def _parse_facts(facts: Iterable[Atom | str | tuple]) -> list[Atom]:
        parsed: list[Atom] = []
        for f in facts:
            if isinstance(f, Atom):
                parsed.append(f)
            elif isinstance(f, str):
                parsed.append(parse_atom(f))
            elif isinstance(f, tuple) and f and isinstance(f[0], str):
                parsed.append(
                    Atom(
                        f[0],
                        tuple(v if isinstance(v, Constant) else Constant(v) for v in f[1:]),
                    )
                )
            else:
                raise SemanticsError(
                    f"facts must be Atoms, atom source text, or (predicate, values...) "
                    f"tuples, not {f!r}"
                )
        return parsed

    def insert_facts(self, *facts: Atom | str | tuple) -> list[Atom]:
        """Insert EDB facts into the live session.

        ``facts`` are ground atoms — parsed, source text (``"move(1, 2)"``)
        or ``("move", 1, 2)`` tuples.  The database is updated and every
        cached grounding is re-grounded *incrementally*: the semi-naive
        plans re-fire from the inserted rows only, new rule instances are
        appended to the shared kernel arrays, and the next solve runs on
        the updated graph.  Groundings outside the incremental envelope
        (e.g. the update changed the Herbrand universe) are transparently
        dropped and rebuilt on next use (counted in ``delta_rebuilds``).

        Returns the atoms that were actually new (already-present facts
        are no-ops).  Cached solutions are invalidated either way.
        """
        atoms = self._parse_facts(facts)
        applied = []
        seen: set[Atom] = set()
        for a in atoms:
            if a not in seen and not self.database.contains_atom(a):
                seen.add(a)
                applied.append(a)
        if not applied:
            return []
        self._apply_update(applied, [])
        return applied

    def retract_facts(self, *facts: Atom | str | tuple) -> list[Atom]:
        """Retract EDB facts from the live session.

        The mirror of :meth:`insert_facts`: rows leave the database, the
        delete-rederive pass retracts everything no longer derivable,
        dependent rule instances are disabled, and atoms that left the
        relevant universe become inert ghosts.  Returns the atoms that
        were actually present.
        """
        atoms = self._parse_facts(facts)
        applied = []
        seen: set[Atom] = set()
        for a in atoms:
            if a not in seen and self.database.contains_atom(a):
                seen.add(a)
                applied.append(a)
        if not applied:
            return []
        self._apply_update([], applied)
        return applied

    def _apply_update(self, inserted: list[Atom], retracted: list[Atom]) -> None:
        t0 = perf_counter()
        self.update_calls += 1
        self.facts_inserted += len(inserted)
        self.facts_retracted += len(retracted)
        synced: set[int] = {id(self.database)}
        for a in retracted:
            self.database.discard_atom(a)
        for a in inserted:
            self.database.add_atom(a)
        for mode, gp in list(self._ground_cache.items()):
            if id(gp.database) not in synced:
                # A pinned/loaded grounding may carry its own database
                # object; mirror the change so its view stays consistent.
                synced.add(id(gp.database))
                for a in retracted:
                    gp.database.discard_atom(a)
                for a in inserted:
                    gp.database.add_atom(a)
            if apply_facts_delta(gp, inserted, retracted):
                self.delta_applied += 1
            elif gp is self._pinned:
                raise SemanticsError(
                    "update falls outside the incremental envelope of the pinned "
                    "ground program (the universe changed or its mode cannot be "
                    "updated in place); rebuild the Engine from the mutated database"
                )
            else:
                del self._ground_cache[mode]
                self.delta_rebuilds += 1
        self._solution_cache.clear()
        self._timings["update_s"] = self._timings.get("update_s", 0.0) + perf_counter() - t0

    # -- batched queries ---------------------------------------------------

    def query(self, predicate: str, *, semantics: str = "well_founded", **options: Any):
        """Rows of one predicate under a semantics.

        Returns a :class:`~repro.semantics.queries.QueryResult` with the
        predicate's ``true_rows`` / ``undefined_rows`` constant tuples;
        raises :class:`~repro.errors.SemanticsError` when ``predicate``
        occurs in neither the program nor the database.  Unlike the
        deprecated :func:`repro.semantics.queries.query`, the engine
        evaluates the *whole* program once (shared with every other query
        on this engine) instead of re-grounding the predicate's support
        cone per call; ``total`` reports the totality of that full model.
        """
        from repro.semantics.queries import QueryResult

        if (
            predicate not in self.program.predicates
            and predicate not in self.database.predicates()
        ):
            raise SemanticsError(f"unknown predicate {predicate!r}")
        solution = self.solve(semantics, **options)
        if solution.model is not None:
            # Id-native path: walk the partition ids and decode only the
            # queried predicate's atoms — the full sets are never built.
            table = solution.model.ground_program.atoms
            true_rows = frozenset(
                tuple(c.value for c in a.args)
                for a in map(table.atom, solution.true_ids)
                if a.predicate == predicate
            )
            undefined_rows = frozenset(
                tuple(c.value for c in a.args)
                for a in map(table.atom, solution.undefined_ids)
                if a.predicate == predicate
            )
        else:
            true_rows = frozenset(
                tuple(c.value for c in a.args)
                for a in solution.true_atoms
                if a.predicate == predicate
            )
            undefined_rows = frozenset(
                tuple(c.value for c in a.args)
                for a in solution.undefined_atoms
                if a.predicate == predicate
            )
        if predicate in self.database.predicates():
            true_rows |= frozenset(
                tuple(c.value for c in row) for row in self.database[predicate]
            )
        return QueryResult(
            predicate=predicate,
            true_rows=true_rows,
            undefined_rows=undefined_rows,
            total=solution.total,
        )

    def query_many(
        self,
        atoms: Iterable[Atom | str],
        *,
        semantics: str = "well_founded",
        **options: Any,
    ) -> dict[Atom, bool | None]:
        """Truth values of many ground atoms from a single evaluation.

        The batched path for multi-atom workloads: one solve serves every
        atom in the batch (and future batches reuse the same compiled
        ground program).  Atoms may be given parsed or as source text;
        returns ``{Atom: True | False | None}`` (``None`` = undefined)
        under the solution's model convention.  Raises
        :class:`~repro.errors.ParseError` for unparsable atom text and
        whatever :meth:`solve` raises for the semantics itself.
        """
        parsed = [parse_atom(a) if isinstance(a, str) else a for a in atoms]
        solution = self.solve(semantics, **options)
        return {atom: solution.value(atom) for atom in parsed}

    # -- analysis and provenance ------------------------------------------

    def analyze(self) -> tuple[ProgramClassification, StructuralReport]:
        """Paper-taxonomy classification plus the structural totality report."""
        return classify_program(self.program), structural_report(self.program)

    def explain(self, atom: Atom | str, *, semantics: str = "tie_breaking", **options: Any):
        """Provenance tree for one atom's value under a state-carrying semantics.

        ``atom`` is a ground atom (parsed or source text); ``max_depth``
        (default 12) bounds the tree depth; remaining ``options`` go to
        :meth:`solve`.  Returns an
        :class:`~repro.ground.explain.Explanation`; raises
        :class:`~repro.errors.SemanticsError` when the chosen semantics
        retains no evaluation state to explain from.
        """
        from repro.ground.explain import explain as explain_state

        max_depth = options.pop("max_depth", 12)
        target = parse_atom(atom) if isinstance(atom, str) else atom
        solution = self.solve(semantics, **options)
        if solution.state is None:
            raise SemanticsError(
                f"semantics {semantics!r} records no evaluation state to explain from"
            )
        return explain_state(solution.state, target, max_depth=max_depth)

    def witness_search(self, *, max_constants: int = 1, nonuniform: bool = True) -> Database | None:
        """Bounded §5 search for a database admitting no fixpoint.

        ``max_constants`` bounds the fresh constants the searched
        databases may mention; ``nonuniform`` restricts candidates to
        EDB-only facts (the paper's nonuniform setting).  Returns a
        witness :class:`~repro.datalog.database.Database` or ``None``
        when none exists within the bound (evidence of totality, not
        proof — Theorem 6).
        """
        from repro.analysis.totality_search import search_nontotality_witness

        return search_nontotality_witness(
            self.program, max_constants=max_constants, nonuniform=nonuniform
        )

    def stats(self) -> dict[str, Any]:
        """Pipeline counters: how often the engine actually compiled."""
        return {
            "backend": self.default_backend or "python",
            "ground_calls": self.ground_calls,
            "index_builds": self.index_builds,
            "artifact_hits": self.artifact_hits,
            "update_calls": self.update_calls,
            "facts_inserted": self.facts_inserted,
            "facts_retracted": self.facts_retracted,
            "delta_applied": self.delta_applied,
            "delta_rebuilds": self.delta_rebuilds,
            "interned_constants": len(self._pool),
            "cached_modes": sorted(self._ground_cache),
            "cached_solutions": len(self._solution_cache),
            "solution_cache_hits": self.solution_cache_hits,
            **self.timings,
        }

    def __repr__(self) -> str:
        return (
            f"Engine(rules={len(self.program.rules)}, facts={len(self.database)}, "
            f"grounded_modes={sorted(self._ground_cache)})"
        )


def solve(
    semantics: str,
    program: Program | str,
    database: Database | str | None = None,
    *,
    ground_program: GroundProgram | None = None,
    **options: Any,
) -> Solution:
    """One-shot convenience: build an ephemeral :class:`Engine` and solve."""
    engine = Engine(program, database, ground_program=ground_program)
    return engine.solve(semantics, **options)


def enumerate_solutions(
    semantics: str,
    program: Program | str,
    database: Database | str | None = None,
    *,
    ground_program: GroundProgram | None = None,
    limit: int | None = None,
    **options: Any,
) -> Iterator[Solution]:
    """One-shot convenience: lazily enumerate every model of a semantics."""
    engine = Engine(program, database, ground_program=ground_program)
    return engine.enumerate(semantics, limit=limit, **options)
