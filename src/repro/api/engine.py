"""The Engine facade: parse and ground once, serve every semantics.

One :class:`Engine` owns the full pipeline for one (program, database)
pair: parse → ground → compile the :class:`~repro.datalog.grounding.GroundIndex`
kernel view, each exactly once per grounding mode, then answer any number
of ``solve`` / ``enumerate`` / ``query_many`` / ``explain`` calls against
the shared compiled ground graph.  This is the production entry point: the
CLI, the examples, and the bench pipeline all ride it, and the legacy
per-semantics free functions are deprecated shims over it.

    >>> from repro.api import Engine
    >>> engine = Engine("win(X) :- move(X, Y), not win(Y).", "move(1, 2). move(2, 1).")
    >>> engine.solve("well_founded").total
    False
    >>> engine.solve("tie_breaking").total
    True
    >>> engine.ground_calls  # both solves shared one grounding
    1
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from time import perf_counter
from typing import Any, Iterable, Iterator, Mapping

from repro.analysis.classify import ProgramClassification, classify_program
from repro.analysis.structural import StructuralReport, structural_report
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode, GroundProgram, ground
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import Program
from repro.engine.plan import ConstantPool
from repro.errors import GroundingError, SemanticsError
from repro.api.registry import SemanticsSpec, SolveRequest, _check_options, get_spec
from repro.api.solution import Solution

__all__ = ["Engine", "solve", "enumerate_solutions"]


class Engine:
    """Session-style evaluation engine over one (program, database) pair.

    ``program`` / ``database`` accept parsed objects or Datalog source
    text.  ``grounding`` fixes a default mode for every semantics (each
    spec carries its own default otherwise); ``ground_program`` seeds the
    cache with an existing compiled ground program (it is then used for
    every solve — the legacy ``ground_program=`` calling convention);
    ``policy`` is the default tie-orientation policy.
    """

    def __init__(
        self,
        program: Program | str,
        database: Database | str | None = None,
        *,
        grounding: GroundingMode | None = None,
        ground_program: GroundProgram | None = None,
        policy: Any | None = None,
    ) -> None:
        t0 = perf_counter()
        if isinstance(program, str):
            program = parse_program(program)
        if isinstance(database, str):
            database = parse_database(database)
        parse_s = perf_counter() - t0
        self.program = program
        self.database = database if database is not None else Database()
        self.default_grounding = grounding
        self.default_policy = policy
        self.ground_calls = 0
        self.index_builds = 0
        self._timings: dict[str, float] = {"parse_s": parse_s, "ground_s": 0.0, "compile_s": 0.0}
        # One interning session: every grounding mode of this engine shares
        # the same constant → dense-id mapping (and hence row encodings).
        self._pool = ConstantPool()
        self._ground_cache: dict[GroundingMode, GroundProgram] = {}
        self._solution_cache: dict[tuple, Solution] = {}
        self.solution_cache_hits = 0
        self._pinned = ground_program
        if ground_program is not None:
            self._ground_cache[ground_program.mode] = ground_program

    @classmethod
    def from_files(
        cls,
        program_path: str | Path,
        db_path: str | Path | None = None,
        **kwargs: Any,
    ) -> "Engine":
        """Build an engine from a program file and an optional facts file."""
        program = Path(program_path).read_text()
        database = Path(db_path).read_text() if db_path else None
        return cls(program, database, **kwargs)

    # -- the one compile ---------------------------------------------------

    @property
    def timings(self) -> Mapping[str, float]:
        """Accumulated one-time pipeline costs (parse / ground / compile)."""
        return dict(self._timings)

    def ground_for(
        self, mode: GroundingMode | None = None, *, max_instances: int | None = None
    ) -> GroundProgram:
        """The compiled ground program for ``mode``, grounding at most once.

        A pinned ``ground_program`` (constructor argument) is always
        returned as-is; otherwise each mode is grounded and kernel-compiled
        on first use and served from the cache afterwards.
        """
        if self._pinned is not None:
            return self._pinned
        resolved: GroundingMode = mode or self.default_grounding or "relevant"
        gp = self._ground_cache.get(resolved)
        if gp is None:
            kwargs: dict[str, Any] = {}
            if max_instances is not None:
                kwargs["max_instances"] = max_instances
            t0 = perf_counter()
            gp = ground(self.program, self.database, mode=resolved, pool=self._pool, **kwargs)
            self.ground_calls += 1
            self._timings["ground_s"] += perf_counter() - t0
            t0 = perf_counter()
            gp.index  # compile the CSR kernel arrays once, shared by every state
            self.index_builds += 1
            self._timings["compile_s"] += perf_counter() - t0
            self._ground_cache[resolved] = gp
        elif max_instances is not None and gp.rule_count > max_instances:
            # The cache holds a grounding that violates the caller's cap;
            # serving it would silently ignore the explosion guard.
            raise GroundingError(
                f"cached {resolved!r} grounding has {gp.rule_count} instances, "
                f"exceeding the requested max_instances={max_instances}"
            )
        return gp

    def _resolve_grounding(
        self, spec: SemanticsSpec, requested: GroundingMode | None
    ) -> GroundingMode | None:
        if spec.grounding_locked:
            return requested or spec.default_grounding
        return requested or self.default_grounding or spec.default_grounding

    def _request(
        self, spec: SemanticsSpec, options: dict[str, Any], *, enumerating: bool = False
    ) -> SolveRequest:
        requested = options.pop("grounding", None)
        max_instances = options.pop("max_instances", None)
        if "policy" in spec.options and options.get("policy") is None:
            options["policy"] = self.default_policy
        # ``limit`` is engine-managed and only meaningful when enumerating;
        # on solve() it is rejected like any other unknown option.
        checked = {k: v for k, v in options.items() if not (enumerating and k == "limit")}
        _check_options(spec, checked)
        grounding = self._resolve_grounding(spec, requested)
        return SolveRequest(
            program=self.program,
            database=self.database,
            grounding=grounding,
            gp=lambda: self.ground_for(grounding, max_instances=max_instances),
            options=options,
        )

    @staticmethod
    def _cache_key(spec: SemanticsSpec, options: Mapping[str, Any]) -> tuple | None:
        """A reuse key for one solve, or None when reuse would be unsafe.

        Option values are keyed by ``repr`` — every bundled policy is
        self-describing (``RandomChoice(seed=7)``), so equal reprs mean
        equal behaviour.  Values whose repr is identity-based (contains a
        memory address) are not cacheable: ids get recycled.
        """
        parts = []
        for key, value in sorted(options.items()):
            description = repr(value)
            if " at 0x" in description:
                return None
            parts.append((key, description))
        return (spec.name, tuple(parts))

    def _finalize(self, solution: Solution, solve_s: float) -> Solution:
        return replace(
            solution,
            timings={**self._timings, "solve_s": solve_s},
        )

    # -- solving -----------------------------------------------------------

    def solve(self, semantics: str = "tie_breaking", **options: Any) -> Solution:
        """Evaluate under one semantics, returning the unified :class:`Solution`.

        ``semantics`` is any registry name or alias (``well_founded``,
        ``stable``, ``tie_breaking``, ``fitting``, ``perfect``,
        ``stratified``, ``completion``, ...); ``options`` may include
        ``grounding`` plus whatever the spec accepts (e.g. ``policy``).

        Results are cached per (semantics, options): repeated solves — and
        the ``query``/``query_many``/``explain`` helpers built on them —
        reuse the first computation.  Pass a policy with a different seed
        for an independent nondeterministic run.
        """
        spec = get_spec(semantics)
        key = self._cache_key(spec, options)
        if key is not None:
            cached = self._solution_cache.get(key)
            if cached is not None:
                self.solution_cache_hits += 1
                return cached
        request = self._request(spec, dict(options))
        t0 = perf_counter()
        solution = spec.solver(request)
        solution = replace(solution, grounding=request.grounding)
        solution = self._finalize(solution, perf_counter() - t0)
        if key is not None:
            self._solution_cache[key] = solution
        return solution

    def enumerate(
        self, semantics: str = "tie_breaking", *, limit: int | None = None, **options: Any
    ) -> Iterator[Solution]:
        """Lazily yield every model of an enumerable semantics.

        Deterministic semantics yield their single solution (zero when
        ``limit=0``), so callers can treat every semantics uniformly.
        """
        spec = get_spec(semantics)
        all_options = dict(options)
        all_options["limit"] = limit
        request = self._request(spec, all_options, enumerating=True)
        if spec.enumerator is None:
            if limit is not None and limit <= 0:
                return
            t0 = perf_counter()
            solution = spec.solver(request)
            solution = replace(solution, grounding=request.grounding)
            yield self._finalize(solution, perf_counter() - t0)
            return
        t0 = perf_counter()
        for solution in spec.enumerator(request):
            solve_s = perf_counter() - t0
            solution = replace(solution, grounding=request.grounding)
            yield self._finalize(solution, solve_s)
            t0 = perf_counter()

    # -- batched queries ---------------------------------------------------

    def query(self, predicate: str, *, semantics: str = "well_founded", **options: Any):
        """Rows of one predicate under a semantics (see :class:`QueryResult`).

        Unlike the deprecated :func:`repro.semantics.queries.query`, the
        engine evaluates the *whole* program once (shared with every other
        query on this engine) instead of re-grounding the predicate's
        support cone per call; ``total`` reports the totality of that full
        model.
        """
        from repro.semantics.queries import QueryResult

        if (
            predicate not in self.program.predicates
            and predicate not in self.database.predicates()
        ):
            raise SemanticsError(f"unknown predicate {predicate!r}")
        solution = self.solve(semantics, **options)
        true_rows = frozenset(
            tuple(c.value for c in a.args) for a in solution.true_atoms if a.predicate == predicate
        )
        undefined_rows = frozenset(
            tuple(c.value for c in a.args)
            for a in solution.undefined_atoms
            if a.predicate == predicate
        )
        if predicate in self.database.predicates():
            true_rows |= frozenset(
                tuple(c.value for c in row) for row in self.database[predicate]
            )
        return QueryResult(
            predicate=predicate,
            true_rows=true_rows,
            undefined_rows=undefined_rows,
            total=solution.total,
        )

    def query_many(
        self,
        atoms: Iterable[Atom | str],
        *,
        semantics: str = "well_founded",
        **options: Any,
    ) -> dict[Atom, bool | None]:
        """Truth values of many ground atoms from a single evaluation.

        The batched path for multi-atom workloads: one solve serves every
        atom in the batch (and future batches reuse the same compiled
        ground program).  Atoms may be given parsed or as source text.
        """
        parsed = [parse_atom(a) if isinstance(a, str) else a for a in atoms]
        solution = self.solve(semantics, **options)
        return {atom: solution.value(atom) for atom in parsed}

    # -- analysis and provenance ------------------------------------------

    def analyze(self) -> tuple[ProgramClassification, StructuralReport]:
        """Paper-taxonomy classification plus the structural totality report."""
        return classify_program(self.program), structural_report(self.program)

    def explain(self, atom: Atom | str, *, semantics: str = "tie_breaking", **options: Any):
        """Provenance tree for one atom's value under a state-carrying semantics."""
        from repro.ground.explain import explain as explain_state

        max_depth = options.pop("max_depth", 12)
        target = parse_atom(atom) if isinstance(atom, str) else atom
        solution = self.solve(semantics, **options)
        if solution.state is None:
            raise SemanticsError(
                f"semantics {semantics!r} records no evaluation state to explain from"
            )
        return explain_state(solution.state, target, max_depth=max_depth)

    def witness_search(self, *, max_constants: int = 1, nonuniform: bool = True) -> Database | None:
        """Bounded §5 search for a database admitting no fixpoint."""
        from repro.analysis.totality_search import search_nontotality_witness

        return search_nontotality_witness(
            self.program, max_constants=max_constants, nonuniform=nonuniform
        )

    def stats(self) -> dict[str, Any]:
        """Pipeline counters: how often the engine actually compiled."""
        return {
            "ground_calls": self.ground_calls,
            "index_builds": self.index_builds,
            "interned_constants": len(self._pool),
            "cached_modes": sorted(self._ground_cache),
            "cached_solutions": len(self._solution_cache),
            "solution_cache_hits": self.solution_cache_hits,
            **self.timings,
        }

    def __repr__(self) -> str:
        return (
            f"Engine(rules={len(self.program.rules)}, facts={len(self.database)}, "
            f"grounded_modes={sorted(self._ground_cache)})"
        )


def solve(
    semantics: str,
    program: Program | str,
    database: Database | str | None = None,
    *,
    ground_program: GroundProgram | None = None,
    **options: Any,
) -> Solution:
    """One-shot convenience: build an ephemeral :class:`Engine` and solve."""
    engine = Engine(program, database, ground_program=ground_program)
    return engine.solve(semantics, **options)


def enumerate_solutions(
    semantics: str,
    program: Program | str,
    database: Database | str | None = None,
    *,
    ground_program: GroundProgram | None = None,
    limit: int | None = None,
    **options: Any,
) -> Iterator[Solution]:
    """One-shot convenience: lazily enumerate every model of a semantics."""
    engine = Engine(program, database, ground_program=ground_program)
    return engine.enumerate(semantics, limit=limit, **options)
