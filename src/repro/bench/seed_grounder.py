"""The pre-compilation grounding front-end, preserved verbatim as a baseline.

This is the original parse→ground pipeline from before the compiled
join-plan grounder landed: :class:`~repro.datalog.atoms.Atom`-object
joins over a ``{predicate: set[tuple[Constant, ...]]}`` fact store,
per-binding ``dict`` copies, a semi-naive loop that re-scans every rule
plan each round, and grounders that materialize an ``Atom`` per body
literal before the kernel compile.

It is kept for two purposes (mirroring :mod:`repro.bench.seed_kernel`):

* the ``repro bench`` pipeline times it against the production grounder
  so every recorded ``BENCH_*.json`` carries an honest apples-to-apples
  ``ground_speedup`` figure (same program, same database, same modes);
* the property suite (``tests/properties/test_grounder_properties.py``)
  compares its output — ground atoms, ground rule instances, and the
  upper-bound model U\\* — against the compiled grounder as a
  differential oracle, and replays kernel trajectories across the two
  groundings through an atom bijection.

Do not "improve" this module; its value is being frozen.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import product
from typing import Iterable, Iterator, Mapping, Sequence

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.grounding import (
    AtomTable,
    GroundingMode,
    GroundProgram,
    GroundRule,
    universe_of,
)
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import GroundingError

__all__ = ["SeedFactStore", "seed_ground", "seed_upper_bound_model"]

Row = tuple[Constant, ...]
Binding = dict[Variable, Constant]


class SeedFactStore:
    """The seed-era fact store: Constant-tuple rows with lazy hash indexes."""

    def __init__(self) -> None:
        self._rows: dict[str, set[Row]] = defaultdict(set)
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[tuple, list[Row]]] = {}

    @classmethod
    def from_database(cls, database: Database) -> "SeedFactStore":
        store = cls()
        for pred in database.predicates():
            for row in database[pred]:
                store.add(pred, row)
        return store

    def add(self, predicate: str, row: Row) -> bool:
        rows = self._rows[predicate]
        if row in rows:
            return False
        rows.add(row)
        for (pred, positions), index in self._indexes.items():
            if pred == predicate:
                key = tuple(row[i] for i in positions)
                index.setdefault(key, []).append(row)
        return True

    def contains(self, predicate: str, row: Row) -> bool:
        return row in self._rows.get(predicate, ())

    def rows(self, predicate: str) -> frozenset[Row]:
        return frozenset(self._rows.get(predicate, ()))

    def count(self, predicate: str) -> int:
        return len(self._rows.get(predicate, ()))

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def atoms(self) -> Iterator[Atom]:
        for pred, rows in self._rows.items():
            for row in rows:
                yield Atom(pred, row)

    def rows_matching(self, predicate: str, bound: Mapping[int, Constant]) -> Iterable[Row]:
        if not bound:
            return self._rows.get(predicate, ())
        positions = tuple(sorted(bound))
        index_key = (predicate, positions)
        index = self._indexes.get(index_key)
        if index is None:
            index = {}
            for row in self._rows.get(predicate, ()):
                key = tuple(row[i] for i in positions)
                index.setdefault(key, []).append(row)
            self._indexes[index_key] = index
        return index.get(tuple(bound[i] for i in positions), ())


def _match_atom_row(atom: Atom, row: Sequence[Constant], binding: Binding) -> Binding | None:
    new: Binding | None = None
    for term, value in zip(atom.args, row):
        if isinstance(term, Constant):
            if term != value:
                return None
            continue
        bound = (new or binding).get(term)
        if bound is None:
            if new is None:
                new = dict(binding)
            new[term] = value
        elif bound != value:
            return None
    return new if new is not None else dict(binding)


def _match_literal(literal: Literal, store: SeedFactStore, binding: Binding) -> Iterator[Binding]:
    atom = literal.atom
    bound_positions: dict[int, Constant] = {}
    for position, term in enumerate(atom.args):
        if isinstance(term, Constant):
            bound_positions[position] = term
        elif term in binding:
            bound_positions[position] = binding[term]
    for row in store.rows_matching(atom.predicate, bound_positions):
        extended = _match_atom_row(atom, row, binding)
        if extended is not None:
            yield extended


def _enumerate_bindings(
    literals: Sequence[Literal],
    store: SeedFactStore,
    initial: Binding | None = None,
) -> Iterator[Binding]:
    def recurse(depth: int, binding: Binding) -> Iterator[Binding]:
        if depth == len(literals):
            yield binding
            return
        for extended in _match_literal(literals[depth], store, binding):
            yield from recurse(depth + 1, extended)

    yield from recurse(0, dict(initial or {}))


def _order_body_for_join(literals: Sequence[Literal]) -> list[Literal]:
    remaining = list(literals)
    if not remaining:
        return []
    ordered: list[Literal] = []
    bound: set[Variable] = set()

    def constant_count(lit: Literal) -> int:
        return sum(1 for t in lit.atom.args if isinstance(t, Constant))

    def score(lit: Literal) -> tuple[int, int]:
        variables = set(lit.variables())
        return (len(variables & bound) + constant_count(lit), -len(variables - bound))

    remaining.sort(key=constant_count, reverse=True)
    while remaining:
        best = max(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def _head_rows(rule: Rule, binding: Binding, universe: Sequence[Constant]):
    unbound = [v for v in dict.fromkeys(rule.head.variables()) if v not in binding]
    if not unbound:
        yield tuple(binding[t] if isinstance(t, Variable) else t for t in rule.head.args)
        return
    for values in product(universe, repeat=len(unbound)):
        extended = dict(binding)
        extended.update(zip(unbound, values))
        yield tuple(extended[t] if isinstance(t, Variable) else t for t in rule.head.args)


def _seed_least_model(
    program: Program | Iterable[Rule],
    database: Database,
    *,
    universe: Sequence[Constant] = (),
    positivize: bool = False,
) -> SeedFactStore:
    rules = list(program.rules if isinstance(program, Program) else program)
    if positivize:
        rules = [Rule(r.head, r.positive_body()) for r in rules]
    elif any(not lit.positive for r in rules for lit in r.body):
        raise GroundingError("least_model requires a positive program (or positivize=True)")

    store = SeedFactStore.from_database(database)

    plans: list[tuple[Rule, list[list[Literal]]]] = []
    for r in rules:
        body = list(r.body)
        orders: list[list[Literal]] = []
        for i in range(len(body)):
            rest = body[:i] + body[i + 1 :]
            orders.append([body[i]] + _order_body_for_join(rest))
        plans.append((r, orders))

    def fire(rule: Rule, ordered: list[Literal], delta_store, sink: SeedFactStore) -> None:
        if not ordered:
            bindings: Iterable[Binding] = [dict()]
        elif delta_store is None:
            bindings = _enumerate_bindings(ordered, store)
        else:

            def chain() -> Iterable[Binding]:
                for first in _match_literal(ordered[0], delta_store, {}):
                    yield from _enumerate_bindings(ordered[1:], store, first)

            bindings = chain()
        for binding in bindings:
            for row in _head_rows(rule, binding, universe):
                if not store.contains(rule.head.predicate, row):
                    sink.add(rule.head.predicate, row)

    new = SeedFactStore()
    for r, _orders in plans:
        fire(r, _order_body_for_join(list(r.body)), None, new)
    while len(new):
        for atom_ in new.atoms():
            store.add(atom_.predicate, tuple(atom_.args))  # type: ignore[arg-type]
        delta = new
        new = SeedFactStore()
        for r, orders in plans:
            for ordered in orders:
                if delta.count(ordered[0].predicate) == 0:
                    continue
                fire(r, ordered, delta, new)
    return store


def seed_upper_bound_model(
    program: Program,
    database: Database,
    *,
    universe: Sequence[Constant] = (),
) -> SeedFactStore:
    """U\\* as the seed pipeline computed it (positivize, then least model)."""
    return _seed_least_model(program, database, universe=universe, positivize=True)


def _literal_atom_id(
    table: AtomTable, literal: Literal, binding: Mapping[Variable, Constant]
) -> int:
    return table.id_of(literal.atom.substitute(binding))


def _make_instance(
    table: AtomTable,
    rule: Rule,
    rule_index: int,
    variables: Sequence[Variable],
    binding: Mapping[Variable, Constant],
) -> GroundRule:
    head_id = table.id_of(rule.head.substitute(binding))
    pos: dict[int, None] = {}
    neg: dict[int, None] = {}
    for lit in rule.body:
        target = pos if lit.positive else neg
        target.setdefault(_literal_atom_id(table, lit, binding))
    return GroundRule(
        head=head_id,
        pos=tuple(pos),
        neg=tuple(neg),
        rule_index=rule_index,
        substitution=tuple(binding[v] for v in variables),
    )


def _ground_full(
    program: Program,
    database: Database,
    universe: tuple[Constant, ...],
    max_instances: int,
) -> GroundProgram:
    total = 0
    for r in program.rules:
        k = len(r.variables())
        count = len(universe) ** k if k else 1
        total += count
        if total > max_instances:
            raise GroundingError(
                f"full grounding needs more than {max_instances} instances "
                f"(rule {r} alone has |U|^{k} = {count}); use mode='relevant' "
                "or raise max_instances"
            )

    table = AtomTable()
    for pred in sorted(program.predicates | database.predicates()):
        arity = program.arities.get(pred)
        if arity is None:
            rows = database[pred]
            arity = len(next(iter(rows))) if rows else 0
        for args in product(universe, repeat=arity):
            table.id_of(Atom(pred, args))

    gp = GroundProgram(program, database, universe, "full", table)
    rules: list[GroundRule] = gp.rules  # type: ignore[assignment]
    for rule_index, r in enumerate(program.rules):
        variables = r.variables()
        if not variables:
            rules.append(_make_instance(table, r, rule_index, variables, {}))
            continue
        for values in product(universe, repeat=len(variables)):
            binding = dict(zip(variables, values))
            rules.append(_make_instance(table, r, rule_index, variables, binding))
    return gp


def _ground_joined(
    program: Program,
    database: Database,
    universe: tuple[Constant, ...],
    max_instances: int,
    prune_false_negative_edb: bool,
    mode: GroundingMode,
) -> GroundProgram:
    edb = program.edb_predicates
    if mode == "relevant":
        join_store = seed_upper_bound_model(program, database, universe=universe)
    else:
        join_store = SeedFactStore.from_database(database)
    table = AtomTable()
    for atom_ in sorted(join_store.atoms(), key=str):
        table.id_of(atom_)

    gp = GroundProgram(program, database, universe, mode, table)
    rules: list[GroundRule] = gp.rules  # type: ignore[assignment]

    for rule_index, r in enumerate(program.rules):
        variables = r.variables()
        joinable = [lit for lit in r.positive_body() if mode == "relevant" or lit.predicate in edb]
        positive = _order_body_for_join(joinable)
        for partial in _enumerate_bindings(positive, join_store):
            unbound = [v for v in variables if v not in partial]
            for values in product(universe, repeat=len(unbound)):
                binding = dict(partial)
                binding.update(zip(unbound, values))
                if prune_false_negative_edb and any(
                    not lit.positive
                    and lit.predicate in edb
                    and database.contains_atom(lit.atom.substitute(binding))
                    for lit in r.body
                ):
                    continue
                rules.append(_make_instance(table, r, rule_index, variables, binding))
                if len(rules) > max_instances:
                    raise GroundingError(f"{mode} grounding exceeded {max_instances} instances")
    return gp


def seed_ground(
    program: Program,
    database: Database,
    *,
    mode: GroundingMode = "full",
    extra_constants: Iterable[Constant] = (),
    max_instances: int = 2_000_000,
    prune_false_negative_edb: bool = True,
) -> GroundProgram:
    """Ground ``program`` exactly as the pre-join-plan pipeline did.

    Behaviourally equivalent to the production
    :func:`repro.datalog.grounding.ground` (same atoms, same rule
    instances, same U\\*-restriction in ``relevant`` mode) up to the
    order in which atoms receive their dense ids.
    """
    universe = universe_of(program, database, extra_constants)
    if mode == "full":
        return _ground_full(program, database, universe, max_instances)
    if mode in ("relevant", "edb"):
        return _ground_joined(
            program, database, universe, max_instances, prune_false_negative_edb, mode
        )
    raise ValueError(f"unknown grounding mode {mode!r}")
