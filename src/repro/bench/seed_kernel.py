"""The pre-compilation evaluation kernel, preserved verbatim as a baseline.

This is the original :class:`~repro.ground.state.GroundGraphState`
implementation from before the compiled CSR kernel landed: per-state
occurrence lists built with Python loops, an ``unfounded_atoms`` that
rebuilds an O(rules) counter array on every call, and a
``bottom_components_live`` that re-runs Tarjan over the whole live graph
on every query.

It is kept for two purposes:

* the ``repro bench`` pipeline times it against the production kernel so
  every recorded ``BENCH_*.json`` carries an honest apples-to-apples
  speedup figure (same ground program, same interpreters, same results);
* the property suite (``tests/properties/test_kernel_properties.py``)
  drives it in lockstep with the production kernel as a differential
  oracle for the incremental unfounded-set and cached bottom-SCC paths.

Do not "improve" this module; its value is being frozen.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.datalog.grounding import GroundProgram
from repro.errors import CloseConflictError, SemanticsError
from repro.graphs.condensation import bottom_components
from repro.graphs.scc import strongly_connected_components
from repro.graphs.ties import analyze_component
from repro.ground.model import FALSE, TRUE, UNDEF, Interpretation
from repro.ground.state import BottomComponent

__all__ = ["SeedGroundGraphState"]


class SeedGroundGraphState:
    """The seed-era evaluation state (see module docstring).

    API-compatible with :class:`~repro.ground.state.GroundGraphState` for
    everything the interpreters use: ``close``, ``assign``/``assign_many``,
    ``unfounded_atoms``, ``bottom_components_live``, ``live_atom_count``,
    ``clone``, ``interpretation``.
    """

    def __init__(self, ground_program: GroundProgram):
        gp = ground_program
        self.gp = gp
        n_atoms = gp.atom_count
        n_rules = gp.rule_count
        self.n_atoms = n_atoms
        self.n_rules = n_rules

        self.status = [UNDEF] * n_atoms
        self.atom_alive = [True] * n_atoms
        self.rule_alive = [True] * n_rules
        self.reason: list[tuple | None] = [None] * n_atoms
        self._assign_label: tuple | None = None
        # Occurrence lists: atom id -> rule indices where it occurs in body.
        self.pos_occ: list[list[int]] = [[] for _ in range(n_atoms)]
        self.neg_occ: list[list[int]] = [[] for _ in range(n_atoms)]
        self.rule_pending = [0] * n_rules
        self.atom_support = [0] * n_atoms
        self.head_of = [0] * n_rules

        for r_index, gr in enumerate(gp.rules):
            self.head_of[r_index] = gr.head
            self.atom_support[gr.head] += 1
            self.rule_pending[r_index] = len(gr.pos) + len(gr.neg)
            for a in gr.pos:
                self.pos_occ[a].append(r_index)
            for a in gr.neg:
                self.neg_occ[a].append(r_index)

        self._dirty: deque[int] = deque()

        edb = gp.program.edb_predicates
        table = gp.atoms
        for index in range(n_atoms):
            atom = table.atom(index)
            if gp.database.contains_atom(atom):
                self._set(index, TRUE, ("delta",))
            elif atom.predicate in edb:
                self._set(index, FALSE, ("edb-absent",))

        self._initial = True

    # -- assignment and closure --------------------------------------------

    def _set(self, index: int, value: int, reason: tuple | None = None) -> None:
        current = self.status[index]
        if current == value:
            return
        if current != UNDEF:
            raise CloseConflictError(index)
        self.status[index] = value
        self.reason[index] = reason
        self._dirty.append(index)

    def assign(self, index: int, value: int, label: tuple | None = None) -> None:
        if value not in (TRUE, FALSE):
            raise SemanticsError("assign() takes TRUE or FALSE")
        self._set(index, value, ("assigned", label))

    def assign_many(self, indices: Iterable[int], value: int, label: tuple | None = None) -> None:
        for index in indices:
            self.assign(index, value, label)

    def close(self) -> None:
        if self._initial:
            self._initial = False
            for r_index in range(self.n_rules):
                if self.rule_pending[r_index] == 0:
                    self._fire(r_index)
            for index in range(self.n_atoms):
                if (
                    self.atom_alive[index]
                    and self.status[index] == UNDEF
                    and self.atom_support[index] == 0
                ):
                    self._set(index, FALSE, ("no-support",))

        dirty = self._dirty
        while dirty:
            index = dirty.popleft()
            if not self.atom_alive[index]:
                continue
            self.atom_alive[index] = False
            value = self.status[index]
            if value == TRUE:
                satisfied, violated = self.pos_occ[index], self.neg_occ[index]
            else:
                satisfied, violated = self.neg_occ[index], self.pos_occ[index]
            for r_index in violated:
                if self.rule_alive[r_index]:
                    self._kill_rule(r_index)
            for r_index in satisfied:
                if self.rule_alive[r_index]:
                    self.rule_pending[r_index] -= 1
                    if self.rule_pending[r_index] == 0:
                        self._fire(r_index)

    def _fire(self, r_index: int) -> None:
        self.rule_alive[r_index] = False
        head = self.head_of[r_index]
        self.atom_support[head] -= 1
        if self.status[head] == FALSE:
            raise CloseConflictError(
                head,
                f"rule instance #{r_index} fired but its head atom "
                f"{self.gp.atoms.atom(head)} is already false",
            )
        self._set(head, TRUE, ("fired", r_index))

    def _kill_rule(self, r_index: int) -> None:
        self.rule_alive[r_index] = False
        head = self.head_of[r_index]
        self.atom_support[head] -= 1
        if self.atom_support[head] == 0 and self.atom_alive[head] and self.status[head] == UNDEF:
            self._set(head, FALSE, ("no-support",))

    # -- global queries on the live graph -----------------------------------

    def live_atom_ids(self) -> list[int]:
        return [i for i in range(self.n_atoms) if self.atom_alive[i]]

    @property
    def live_atom_count(self) -> int:
        return sum(self.atom_alive)

    def unfounded_atoms(self) -> list[int]:
        self._require_closed()
        pos_pending = [0] * self.n_rules
        queue: deque[int] = deque()
        for r_index, gr in enumerate(self.gp.rules):
            if not self.rule_alive[r_index]:
                continue
            count = sum(1 for a in gr.pos if self.atom_alive[a])
            pos_pending[r_index] = count
            if count == 0:
                queue.append(r_index)
        derived = [False] * self.n_atoms
        while queue:
            r_index = queue.popleft()
            head = self.head_of[r_index]
            if derived[head] or not self.atom_alive[head]:
                continue
            derived[head] = True
            for r2 in self.pos_occ[head]:
                if self.rule_alive[r2]:
                    pos_pending[r2] -= 1
                    if pos_pending[r2] == 0:
                        queue.append(r2)
        return [i for i in range(self.n_atoms) if self.atom_alive[i] and not derived[i]]

    def _require_closed(self) -> None:
        if self._dirty or self._initial:
            raise SemanticsError("graph queries require a closed state; call close() first")

    def _live_successors(self, node: int) -> Iterator[tuple[int, bool]]:
        n_atoms = self.n_atoms
        if node < n_atoms:
            for r_index in self.pos_occ[node]:
                if self.rule_alive[r_index]:
                    yield n_atoms + r_index, True
            for r_index in self.neg_occ[node]:
                if self.rule_alive[r_index]:
                    yield n_atoms + r_index, False
        else:
            head = self.head_of[node - n_atoms]
            if self.atom_alive[head]:
                yield head, True

    def bottom_components_live(self, *, full_recompute: bool = False) -> list[BottomComponent]:
        self._require_closed()
        n_atoms = self.n_atoms
        live_nodes = [i for i in range(n_atoms) if self.atom_alive[i]]
        live_nodes += [n_atoms + r for r in range(self.n_rules) if self.rule_alive[r]]

        def succ_ids(u: int) -> Iterator[int]:
            return (v for v, _ in self._live_successors(u))

        components = strongly_connected_components(
            n_atoms + self.n_rules, succ_ids, nodes=live_nodes
        )
        bottoms = bottom_components(components, succ_ids, n_atoms + self.n_rules)
        result: list[BottomComponent] = []
        for comp_id in bottoms:
            component = components[comp_id]
            if len(component) == 1:
                raise AssertionError(
                    "singleton bottom component survived close(); graph state corrupt"
                )
            analysis = analyze_component(component, self._live_successors)
            atom_ids = [n for n in component if n < n_atoms]
            rule_ids = [n - n_atoms for n in component if n >= n_atoms]
            result.append(BottomComponent(atom_ids, rule_ids, analysis, n_atoms))
        return result

    # -- cloning ------------------------------------------------------------

    def clone(self) -> "SeedGroundGraphState":
        other = object.__new__(SeedGroundGraphState)
        other.gp = self.gp
        other.n_atoms = self.n_atoms
        other.n_rules = self.n_rules
        other.status = list(self.status)
        other.atom_alive = list(self.atom_alive)
        other.rule_alive = list(self.rule_alive)
        other.pos_occ = self.pos_occ
        other.neg_occ = self.neg_occ
        other.rule_pending = list(self.rule_pending)
        other.atom_support = list(self.atom_support)
        other.head_of = self.head_of
        other.reason = list(self.reason)
        other._assign_label = self._assign_label
        other._dirty = deque(self._dirty)
        other._initial = self._initial
        return other

    # -- results -------------------------------------------------------------

    def interpretation(self) -> Interpretation:
        return Interpretation(self.gp, tuple(self.status))

    def __repr__(self) -> str:
        return (
            f"SeedGroundGraphState(atoms={self.n_atoms}, rules={self.n_rules}, "
            f"live_atoms={self.live_atom_count})"
        )
