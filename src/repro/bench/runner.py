"""The ``repro bench`` pipeline: reproducible per-phase kernel timings.

Runs the :mod:`repro.workloads.families` generators at a configurable
scale, drives the well-founded / well-founded tie-breaking interpreters
over both the production compiled kernel
(:class:`~repro.ground.state.GroundGraphState`) and the frozen seed
kernel (:class:`~repro.bench.seed_kernel.SeedGroundGraphState`), timing
the grounding / close / unfounded-set / tie-query phases separately, and
writes a ``BENCH_<rev>.json`` record — the repo's perf trajectory, one
file per revision.

The interpreter loop is re-implemented here (rather than calling
:func:`repro.semantics.well_founded.well_founded_state`) only so each
phase can be timed from the outside; decisions are identical: unfounded
sets first, then the smallest-atom-id bottom tie oriented by
:class:`~repro.semantics.choices.FirstSideTrue`, whose choice depends
only on atom ids — so both kernels walk the same trajectory and their
final models are asserted equal before any number is recorded.

Grounding and kernel compilation run through the production
:class:`repro.api.Engine`, and each family additionally cross-checks the
engine's ``solve()`` against the timed drive loop (identical model, no
re-grounding) — the bench pipeline exercises the same facade users do.

Alongside the kernel baseline, each family times the frozen seed
*grounder* (:mod:`repro.bench.seed_grounder`) on the same inputs and
records the resulting ``ground_speedup``.  The two groundings are
cross-checked for identical content (atoms and rule instances, compared
through an atom bijection since dense ids may be assigned in different
orders) and for identical *models*: the compiled kernel's decision trail
is replayed on the seed grounding through the bijection and must land on
the same true set.

The **throughput** mode measures the serving story on top: per family it
times the *cold* per-request pipeline (parse → ground → kernel-compile
from source text, the cost every process pays without artifacts) against
the *warm* path (:meth:`repro.api.Engine.from_artifact` over a
``repro-ground/1`` artifact saved once), cross-checks that every
warm-started model is identical to the cold one, and drives a
:class:`repro.service.BatchSolver` batch over the artifact to record
end-to-end requests/sec.  ``warm_speedup`` (cold start over warm start)
is the compile-once dividend; its per-record summary is the number the
serving layer is accountable for.

The **update** mode measures the streaming story: per family it streams
a deterministic, universe-stable retract/reinsert trace into one warm
:class:`~repro.api.Engine` (``insert_facts`` / ``retract_facts``, the
delta re-ground path) and records updates/sec against the full-rebuild
comparator — a fresh engine grounding and kernel-compiling the mutated
database per step.  Every rebuild step's model is cross-checked against
the streamed engine before any number is recorded; ``update_speedup``
(rebuild step time over update step time) is the streaming dividend.

The **load** mode measures the concurrent tier end to end: per family it
boots a real :class:`repro.service.ReproServer` on an artifact, drives
hundreds of in-flight requests over TCP connections from an asyncio
client fleet (a global semaphore pins the in-flight count at the
configured concurrency), and records req/s plus p50/p99 latency for the
``workers=0`` (serialized inline engine) and ``workers=N`` (process
pool) configurations.  Every response's values are cross-checked against
an inline oracle engine before any number is recorded.  Note the
single-core caveat: process sharding can only beat the inline path when
the host actually has spare cores — the record carries ``cpus`` so a
reader can interpret ``load_speedup`` honestly.

The **enumerate** mode records models/sec of the exhaustive tie-breaking
explorer per tie-breaking family, both for the production trail-undo DFS
and the clone-based reference explorer (identical (model, choice-trail)
sequences cross-checked), so the undo-log dividend has its own tracked
number.  Alongside, every family records ``solve_phases`` — the kernel's
``close_s`` / ``unfounded_s`` / ``tie_select_s`` / ``tie_apply_s``
breakdown of the engine solve (plus ``result_s``, the lazy result
decode/encode phase — 0.0 at solve time by construction).

The **results** mode measures the id-native result tier on top of one
solved model per family: ``query_many`` answers/sec straight from the
kernel's status ids against the eager comparator that materializes all
three atom frozensets before answering (answers cross-checked
identical), and the streaming ``repro-solution/1`` encoder's MB/s
against the buffered ``json.dumps`` oracle (byte equality asserted).
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Callable, Mapping, Sequence

from repro.api.engine import Engine
from repro.api.registry import get_spec
from repro.api.solution import Solution
from repro.datalog.atoms import Atom
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode
from repro.datalog.printer import format_database, format_program
from repro.datalog.program import Program
from repro.errors import ReproError
from repro.ground.model import FALSE, TRUE
from repro.ground.state import GroundGraphState
from repro.bench.seed_grounder import seed_ground
from repro.bench.seed_kernel import SeedGroundGraphState
from repro.semantics.choices import FirstSideTrue, forced_orientation
from repro.semantics.tie_breaking import (
    _enumerate_reference,
    _enumerate_tie_breaking_models,
)
from repro.workloads import families

__all__ = [
    "SCALES",
    "FAMILIES",
    "run_bench",
    "write_bench",
    "format_table",
    "default_output_path",
    "current_revision",
]

SCHEMA = "repro-bench/1"


@dataclass(frozen=True)
class FamilySpec:
    """One benchmarkable workload family.

    ``scale_factor`` rescales the base ``n`` of the chosen scale: the
    quadratic-in-``n`` seed-kernel families (many interpreter iterations,
    each a global query) are run at a fraction of the base size so the
    baseline column stays affordable.
    """

    generator: Callable[[int], tuple[Program, Database]]
    semantics: str  # "wf" or "wf-tb"
    grounding: GroundingMode
    scale_factor: float = 1.0

    def size(self, base_n: int) -> int:
        return max(2, int(base_n * self.scale_factor))


SCALES: dict[str, int] = {
    "smoke": 60,
    "small": 250,
    "medium": 1000,
    "large": 2000,
}

FAMILIES: dict[str, FamilySpec] = {
    "win_move_line": FamilySpec(families.win_move_line, "wf", "relevant"),
    "win_move_cycle": FamilySpec(
        lambda n: families.win_move_cycle(n - (n % 2)), "wf-tb", "relevant"
    ),
    "unfounded_tower": FamilySpec(families.unfounded_tower, "wf", "relevant", scale_factor=0.25),
    "tie_chain": FamilySpec(families.tie_chain, "wf-tb", "relevant", scale_factor=0.25),
    "committee": FamilySpec(families.committee, "wf-tb", "relevant", scale_factor=0.5),
    "grounded_argumentation": FamilySpec(
        families.grounded_argumentation, "wf-tb", "relevant", scale_factor=0.5
    ),
    "adversarial_scc": FamilySpec(
        families.adversarial_scc, "wf-tb", "relevant", scale_factor=0.25
    ),
}

_KERNELS: dict[str, Callable] = {
    "kernel": GroundGraphState,
    "seed": SeedGroundGraphState,
}


def _drive(state, semantics: str, *, batched: bool = False) -> dict:
    """Run one interpreter to completion, timing each phase separately.

    The production kernel is driven through its v2 hot path (the fused
    ``falsify_unfounded`` cascade and the ``select_tie`` schedule); the
    frozen seed kernel, which predates both, runs the equivalent
    query/assign/close loop.  The property suite pins the two paths to
    identical trajectories, so the recorded models and decision trails
    stay comparable.  For the fused path the internal re-closes are
    accounted under ``unfounded_s``.

    ``batched`` drives the round-based schedule (``select_ties``: every
    independent bottom tie per round) instead of one tie per round — the
    array backend's production path.  Bottom ties are disjoint with no
    incoming edges, so the final model is identical; only the round
    count (and the *order* of the decision trail) changes.
    """
    policy = FirstSideTrue()
    fused = hasattr(state, "falsify_unfounded")
    close_s = unfounded_s = tie_s = 0.0
    unfounded_iterations = 0
    tie_choices = 0
    tie_rounds = 0
    decisions: list[tuple[tuple[int, ...], tuple[int, ...]]] = []

    t0 = perf_counter()
    state.close()
    close_s += perf_counter() - t0
    while True:
        if fused:
            t0 = perf_counter()
            unfounded_iterations += state.falsify_unfounded(numbered=False)
            unfounded_s += perf_counter() - t0
        else:
            t0 = perf_counter()
            unfounded = state.unfounded_atoms()
            unfounded_s += perf_counter() - t0
            if unfounded:
                unfounded_iterations += 1
                state.assign_many(unfounded, FALSE, ("unfounded", unfounded_iterations))
                t0 = perf_counter()
                state.close()
                close_s += perf_counter() - t0
                continue
        if semantics != "wf-tb":
            break
        if fused and batched:
            t0 = perf_counter()
            ties = state.select_ties()
            tie_s += perf_counter() - t0
        elif fused:
            t0 = perf_counter()
            tie = state.select_tie()
            tie_s += perf_counter() - t0
            ties = [tie] if tie is not None else []
        else:
            t0 = perf_counter()
            bottoms = state.bottom_components_live()
            tie_s += perf_counter() - t0
            tie = None
            tie_key = None
            for component in bottoms:
                if not component.is_tie:
                    continue
                key = min(component.atom_ids)
                if tie_key is None or key < tie_key:
                    tie, tie_key = component, key
            ties = [tie] if tie is not None else []
        if not ties:
            break
        tie_rounds += 1
        for tie in ties:
            sides = tie.side_of_atom()
            side_atoms: tuple[list[int], list[int]] = ([], [])
            for atom_id, side in sides.items():
                side_atoms[side].append(atom_id)
            side_nodes = [0, 0]
            assert tie.analysis.sides is not None
            for side in tie.analysis.sides.values():
                side_nodes[side] += 1
            true_side = forced_orientation(side_nodes[0], side_nodes[1])
            if true_side is None:
                true_side = policy.choose_true_side(side_atoms[0], side_atoms[1])
            tie_choices += 1
            # Sorted assignment order: identical trajectories whether the
            # sides came from a fresh BFS or the incremental cache.
            made_true = sorted(side_atoms[true_side])
            made_false = sorted(side_atoms[1 - true_side])
            decisions.append((tuple(made_true), tuple(made_false)))
            state.assign_many(made_true, TRUE, ("tie", true_side))
            state.assign_many(made_false, FALSE, ("tie", 1 - true_side))
        t0 = perf_counter()
        state.close()
        close_s += perf_counter() - t0

    interp = state.interpretation()
    return {
        "close_s": close_s,
        "unfounded_s": unfounded_s,
        "tie_s": tie_s,
        "unfounded_iterations": unfounded_iterations,
        "tie_choices": tie_choices,
        "tie_rounds": tie_rounds,
        "is_total": interp.is_total,
        "true_count": sum(1 for s in interp.status if s == TRUE),
        "_true_set": frozenset(i for i, s in enumerate(interp.status) if s == TRUE),
        "_decisions": decisions,
    }


def _normalized_sides(sides: Mapping[int, int]) -> dict[int, int]:
    """Sides flipped so the smallest node sits on side 0.

    The K/L naming is root-dependent (a global flip yields the same
    partition), so differential comparisons go through this canonical
    relabelling.
    """
    flip = sides[min(sides)]
    return {node: side ^ flip for node, side in sides.items()}


def _verify_tie_sides(name: str, gp, state_cls) -> int:
    """Lockstep differential of the incremental (K, L) sides cache.

    Drives one untimed well-founded tie-breaking run on ``state_cls``;
    before every tie round, each bottom component served by the
    incremental path (cached condensation + sides cache) is compared
    against a ``full_recompute=True`` pass on a clone — the fresh-Tarjan,
    fresh-``analyze_component`` oracle.  Components are matched by node
    set and sides are compared through the canonical relabelling.
    Returns the number of (component, round) pairs verified; raises
    :class:`ReproError` on any divergence.
    """
    policy = FirstSideTrue()
    state = state_cls(gp)
    state.close()
    checked = 0
    while True:
        state.falsify_unfounded(numbered=False)
        incremental = {
            frozenset(c.atom_ids): c for c in state.bottom_components_live()
        }
        oracle = state.clone().bottom_components_live(full_recompute=True)
        if len(oracle) != len(incremental):
            raise ReproError(
                f"bench family {name!r}: incremental tie sides report "
                f"{len(incremental)} bottom components, oracle {len(oracle)}"
            )
        for ref in oracle:
            inc = incremental.get(frozenset(ref.atom_ids))
            if inc is None or inc.is_tie != ref.is_tie:
                raise ReproError(
                    f"bench family {name!r}: incremental tie sides diverge "
                    f"from the full_recompute oracle (component membership)"
                )
            if ref.is_tie:
                assert inc.analysis.sides is not None
                assert ref.analysis.sides is not None
                if _normalized_sides(inc.analysis.sides) != _normalized_sides(
                    ref.analysis.sides
                ):
                    raise ReproError(
                        f"bench family {name!r}: incremental (K, L) sides "
                        f"diverge from the full_recompute oracle"
                    )
            checked += 1
        ties = state.select_ties()
        if not ties:
            return checked
        for tie in ties:
            sides = tie.side_of_atom()
            side_atoms: tuple[list[int], list[int]] = ([], [])
            for atom_id, side in sides.items():
                side_atoms[side].append(atom_id)
            true_side = forced_orientation(len(side_atoms[0]), len(side_atoms[1]))
            if true_side is None:
                true_side = policy.choose_true_side(side_atoms[0], side_atoms[1])
            state.assign_many(sorted(side_atoms[true_side]), TRUE, ("tie", true_side))
            state.assign_many(
                sorted(side_atoms[1 - true_side]), FALSE, ("tie", 1 - true_side)
            )
        state.close()


def _measure_kernel(gp, kernel: str, semantics: str, repeat: int) -> dict:
    """Best-of-``repeat`` timing of one kernel on one ground program."""
    state_cls = _KERNELS[kernel]
    best: dict | None = None
    for _ in range(max(1, repeat)):
        t0 = perf_counter()
        state = state_cls(gp)
        init_s = perf_counter() - t0
        phases = _drive(state, semantics)
        phases["init_s"] = init_s
        phases["run_s"] = init_s + phases["close_s"] + phases["unfounded_s"] + phases["tie_s"]
        if best is None or phases["run_s"] < best["run_s"]:
            best = phases
    assert best is not None
    return best


def _measure_array_backend(gp, semantics: str, repeat: int) -> dict:
    """Best-of-``repeat`` timing of the array kernel on one ground program.

    Driven through its production path: the batched ``select_ties``
    round schedule (every independent bottom tie per round).
    """
    from repro.ground.array_state import ArrayGroundGraphState

    best: dict | None = None
    for _ in range(max(1, repeat)):
        t0 = perf_counter()
        state = ArrayGroundGraphState(gp)
        init_s = perf_counter() - t0
        phases = _drive(state, semantics, batched=True)
        phases["init_s"] = init_s
        phases["run_s"] = init_s + phases["close_s"] + phases["unfounded_s"] + phases["tie_s"]
        if best is None or phases["run_s"] < best["run_s"]:
            best = phases
    assert best is not None
    return best


def _backend_section(name: str, gp, semantics: str, repeat: int, python: dict) -> dict:
    """The python-vs-array backend comparison of one family.

    ``python`` is the already-measured production-kernel entry (the
    ``kernels["kernel"]`` drive).  The array kernel is cross-checked
    against it: identical model, and identical tie decisions *as a set*
    (the batched round schedule may reorder independent ties within a
    round, but must make exactly the same orientation choices).
    """
    from repro.ground.array_state import numpy_available

    if not numpy_available():
        return {"available": False, "reason": "numpy not importable"}
    array = _measure_array_backend(gp, semantics, repeat)
    if array["_true_set"] != python["_true_set"]:
        raise ReproError(f"bench family {name!r}: python and array backends disagree on model")
    if set(array["_decisions"]) != set(python["_decisions"]):
        raise ReproError(
            f"bench family {name!r}: python and array backends disagree on tie decisions"
        )
    del array["_true_set"]
    del array["_decisions"]
    return {
        "available": True,
        "array": array,
        "python_run_s": python["run_s"],
        "tie_rounds": {"python": python["tie_rounds"], "array": array["tie_rounds"]},
        "backend_speedup": python["run_s"] / max(array["run_s"], 1e-12),
    }


_ENGINE_SEMANTICS = {"wf": "well_founded", "wf-tb": "tie_breaking"}


def _grounding_bijection(name: str, gp, gp_seed) -> dict[int, int]:
    """Map production atom ids to seed-grounder atom ids.

    The two pipelines must materialize the same ground atoms and the same
    rule instances; dense ids may differ (the compiled grounder orders its
    atom table by interned rows, the seed by string rendering).
    """
    if gp.rule_count != gp_seed.rule_count:
        raise ReproError(f"bench family {name!r}: grounders emit different instance counts")
    new_atoms = {gp.atoms.atom(i): i for i in range(gp.atom_count)}
    seed_atoms = {gp_seed.atoms.atom(i): i for i in range(gp_seed.atom_count)}
    if set(new_atoms) != set(seed_atoms):
        raise ReproError(f"bench family {name!r}: grounders materialize different atoms")
    to_seed = {i: seed_atoms[a] for a, i in new_atoms.items()}

    def canonical(ground_program):
        atom = ground_program.atoms.atom
        return frozenset(
            (
                atom(gr.head),
                frozenset(atom(a) for a in gr.pos),
                frozenset(atom(a) for a in gr.neg),
                gr.rule_index,
                gr.substitution,
            )
            for gr in ground_program.rules
        )

    if canonical(gp) != canonical(gp_seed):
        raise ReproError(f"bench family {name!r}: grounders emit different rule instances")
    return to_seed


def _replay_on_seed_grounding(
    name: str,
    gp_seed,
    decisions: Sequence[tuple[tuple[int, ...], tuple[int, ...]]],
    to_seed: Mapping[int, int],
) -> frozenset[int]:
    """Drive the kernel on the seed grounding, replaying the mapped trail."""
    state = GroundGraphState(gp_seed)
    state.close()
    queue = list(decisions)
    for _ in range(gp_seed.atom_count + len(queue) + 1):
        unfounded = state.unfounded_atoms()
        if unfounded:
            state.assign_many(unfounded, FALSE, ("unfounded", 0))
            state.close()
            continue
        if not queue:
            break
        true_ids, false_ids = queue.pop(0)
        state.assign_many(sorted(to_seed[a] for a in true_ids), TRUE, ("tie", 0))
        state.assign_many(sorted(to_seed[a] for a in false_ids), FALSE, ("tie", 0))
        state.close()
    else:
        raise ReproError(f"bench family {name!r}: seed-grounding replay did not converge")
    interp = state.interpretation()
    return frozenset(i for i, s in enumerate(interp.status) if s == TRUE)


def _bench_family(
    name: str, spec: FamilySpec, base_n: int, repeat: int, baseline: bool, backends: bool = True
) -> dict:
    n = spec.size(base_n)
    program, database = spec.generator(n)
    # The production pipeline: one Engine grounds and kernel-compiles once;
    # both kernels (and the engine cross-check below) share that compile.
    engine = Engine(program, database, grounding=spec.grounding)
    gp = engine.ground_for(spec.grounding)
    ground_s = engine.timings["ground_s"]
    compile_s = engine.timings["compile_s"]

    seed_ground_s = None
    ground_speedup = None
    gp_seed = None
    if baseline:
        # Time the frozen pre-compilation grounder on the same inputs (the
        # seed's ground phase never included kernel compilation either, so
        # the comparison is like for like).
        for _ in range(max(1, repeat)):
            t0 = perf_counter()
            gp_seed = seed_ground(program, database, mode=spec.grounding)
            elapsed = perf_counter() - t0
            if seed_ground_s is None or elapsed < seed_ground_s:
                seed_ground_s = elapsed
        ground_speedup = seed_ground_s / max(ground_s, 1e-12)
        # Materialize the lazy rule view outside the timed sections: the
        # seed kernel's constructor iterates rule objects, and charging
        # their one-time decode to its init would flatter the speedup.
        list(gp.rules)

    kernels = {"kernel": _measure_kernel(gp, "kernel", spec.semantics, repeat)}
    speedup = None
    if baseline:
        kernels["seed"] = _measure_kernel(gp, "seed", spec.semantics, repeat)
        if kernels["seed"]["_true_set"] != kernels["kernel"]["_true_set"]:
            raise ReproError(f"bench family {name!r}: seed and compiled kernels disagree")
        speedup = kernels["seed"]["run_s"] / max(kernels["kernel"]["run_s"], 1e-12)
        # Differential grounder cross-check: identical ground programs, and
        # the identical model when the kernel's decision trail is replayed
        # on the seed grounding through the atom bijection.
        to_seed = _grounding_bijection(name, gp, gp_seed)
        replay_true = _replay_on_seed_grounding(
            name, gp_seed, kernels["kernel"]["_decisions"], to_seed
        )
        mapped_true = {to_seed[a] for a in kernels["kernel"]["_true_set"]}
        if mapped_true != replay_true:
            raise ReproError(f"bench family {name!r}: seed and compiled groundings disagree")

    backend_section = None
    if backends:
        backend_section = _backend_section(
            name, gp, spec.semantics, repeat, kernels["kernel"]
        )

    # Cross-check the public Engine path against the timed drive loop: the
    # registry runner must reproduce the exact model (same FirstSideTrue
    # trajectory), and must do so without grounding again.  Warm the lazy
    # atom-table decode first: result materialization touches every atom
    # once, and (like the rule view above) charging that one-time decode
    # to the solve would distort the interpreter timing.
    atom_table = gp.atoms
    for i in range(gp.atom_count):
        atom_table.atom(i)
    solution = engine.solve(_ENGINE_SEMANTICS[spec.semantics])
    engine_true = frozenset(i for i, s in enumerate(solution.model.status) if s == TRUE)
    if engine_true != kernels["kernel"]["_true_set"]:
        raise ReproError(f"bench family {name!r}: Engine and drive loop disagree")
    if engine.ground_calls != 1:
        raise ReproError(f"bench family {name!r}: Engine reground ({engine.ground_calls}x)")
    for phases in kernels.values():
        del phases["_true_set"]
        del phases["_decisions"]

    # Differential guard on the incremental (K, L) sides cache: every
    # bench run re-verifies it per tie round against the full_recompute
    # oracle, on every backend the run exercises.
    tie_sides_checked = 0
    if spec.semantics == "wf-tb":
        tie_sides_checked = _verify_tie_sides(name, gp, GroundGraphState)
        if backends:
            from repro.ground.array_state import ArrayGroundGraphState, numpy_available

            if numpy_available():
                tie_sides_checked += _verify_tie_sides(name, gp, ArrayGroundGraphState)

    return {
        "n": n,
        "semantics": spec.semantics,
        "grounding": spec.grounding,
        "atoms": gp.atom_count,
        "rules": gp.rule_count,
        "ground_s": ground_s,
        "seed_ground_s": seed_ground_s,
        "ground_speedup": ground_speedup,
        # CSR compilation happens once per ground program (a grounding-time
        # cost shared by every state and clone), so it is reported beside
        # ground_s rather than inside either kernel's interpreter time.
        "compile_s": compile_s,
        "kernels": kernels,
        "engine_solve_s": solution.timings["solve_s"],
        # The kernel's per-phase breakdown of that solve (fused unfounded
        # cascade, schedule-driven tie selection).  result_s is the lazy
        # decode/encode phase: 0.0 at solve time by construction — the
        # solution is id-native and nothing here touched an atom view —
        # and booked non-overlapping when views are read later.
        "solve_phases": {
            key: solution.timings.get(key, 0.0)
            for key in (
                "close_s",
                "unfounded_s",
                "tie_select_s",
                "tie_apply_s",
                "tie_analysis_s",
                "result_s",
            )
        },
        # (component, round) pairs of the incremental sides cache verified
        # against the full_recompute oracle in this run (0 for families
        # whose semantics never queries ties).
        "tie_sides_checked": tie_sides_checked,
        "speedup": speedup,
        "backends": backend_section,
    }


# Model cap of the enumerate mode: enough leaves that steady-state
# models/sec dominates the first descent, small enough that the
# clone-based reference column stays affordable at large scale.
_ENUM_LIMIT = 64


def _enum_key(run) -> tuple:
    """Comparable view of one enumerated run: (true set, id-based trail)."""
    return (
        frozenset(run.model.true_set()),
        tuple((c.true_ids, c.false_ids, c.forced) for c in run.choices),
    )


def _enumerate_family(name: str, spec: FamilySpec, base_n: int, repeat: int) -> dict:
    """Enumeration throughput (models/sec) for one tie-breaking family.

    Runs the exhaustive explorer twice over the same compiled grounding —
    the production trail-undo DFS and the clone-based reference — capped
    at ``_ENUM_LIMIT`` models, best-of-``repeat``.  The two (model,
    choice-trail) sequences must be identical before any number is
    recorded; ``enumerate_speedup`` (clone time over trail time) is the
    dividend of undoing work instead of copying state per branch.
    """
    n = spec.size(base_n)
    program, database = spec.generator(n)
    engine = Engine(program, database, grounding=spec.grounding)
    gp = engine.ground_for(spec.grounding)

    trail_s: float | None = None
    clone_s: float | None = None
    trail_keys: list[tuple] = []
    clone_keys: list[tuple] = []
    for _ in range(max(1, repeat)):
        t0 = perf_counter()
        trail_keys = [
            _enum_key(run)
            for run in _enumerate_tie_breaking_models(
                program, database, ground_program=gp, limit=_ENUM_LIMIT
            )
        ]
        elapsed = perf_counter() - t0
        if trail_s is None or elapsed < trail_s:
            trail_s = elapsed
        t0 = perf_counter()
        clone_keys = [
            _enum_key(run) for run in _enumerate_reference(gp, limit=_ENUM_LIMIT)
        ]
        elapsed = perf_counter() - t0
        if clone_s is None or elapsed < clone_s:
            clone_s = elapsed
    if trail_keys != clone_keys:
        raise ReproError(
            f"bench family {name!r}: trail-undo and clone-based enumeration disagree"
        )
    assert trail_s is not None and clone_s is not None
    models = len(trail_keys)
    return {
        "n": n,
        "limit": _ENUM_LIMIT,
        "models": models,
        "trail_s": trail_s,
        "clone_s": clone_s,
        "trail_models_per_s": models / max(trail_s, 1e-12),
        "clone_models_per_s": models / max(clone_s, 1e-12),
        "enumerate_speedup": clone_s / max(trail_s, 1e-12),
    }


# Probe-batch size of the results mode: small enough that the id-native
# path's O(batch) cost is visible against the eager comparator's O(model)
# materialization, large enough for stable per-answer timing.
_RESULTS_BATCH = 64


def _results_family(name: str, spec: FamilySpec, base_n: int, repeat: int) -> dict:
    """Result-tier throughput for one family: answers/sec and encode MB/s.

    Two measurements over one solved model, both differentially checked:

    * **query** — :meth:`repro.api.Engine.query_many` over a
      deterministic probe batch of ground atoms, answered straight from
      the kernel's status ids (O(1) membership per atom, no set ever
      built), against the *eager comparator*: the pre-lazy behaviour of
      materializing all three atom frozensets and answering by set
      membership.  Answer dicts must be identical before any number is
      recorded; ``query_speedup`` is the id-native dividend.
    * **encode** — the streaming ``repro-solution/1`` encoder
      (:func:`repro.io.json_io.solution_to_jsonl_chunks`, ids → wire
      text with no whole-document buffer) against the buffered
      ``solution_to_obj`` + ``json.dumps`` oracle, byte equality
      asserted.  Both run warm (caches populated, ``result_s`` booking
      settled) so the comparison is encode work, not first-touch decode.
    """
    from repro.io.json_io import solution_to_jsonl_chunks, solution_to_obj

    n = spec.size(base_n)
    program, database = spec.generator(n)
    engine = Engine(program, database, grounding=spec.grounding)
    gp = engine.ground_for(spec.grounding)
    atom_table = gp.atoms
    all_atoms = [atom_table.atom(i) for i in range(gp.atom_count)]
    semantics = _ENGINE_SEMANTICS[spec.semantics]
    solution = engine.solve(semantics)
    stride = max(1, gp.atom_count // _RESULTS_BATCH)
    batch = all_atoms[::stride]

    # -- query: id-native vs eager materialization ------------------------
    ids_s: float | None = None
    id_answers: dict = {}
    for _ in range(max(1, repeat)):
        t0 = perf_counter()
        id_answers = engine.query_many(batch, semantics=semantics)
        elapsed = perf_counter() - t0
        if ids_s is None or elapsed < ids_s:
            ids_s = elapsed

    true_ids, _false_ids, undef_ids = (
        solution.true_ids,
        solution.false_ids,
        solution.undefined_ids,
    )

    def _eager_query_many() -> dict:
        # The pre-lazy path: decode the full partition into atom sets,
        # then answer the batch by membership — O(model) per call.
        true_set = frozenset(map(atom_table.atom, true_ids))
        undef_set = frozenset(map(atom_table.atom, undef_ids))
        frozenset(map(atom_table.atom, _false_ids))  # the full materialization cost
        return {
            a: True if a in true_set else (None if a in undef_set else False)
            for a in batch
        }

    eager_s: float | None = None
    eager_answers: dict = {}
    for _ in range(max(1, repeat)):
        t0 = perf_counter()
        eager_answers = _eager_query_many()
        elapsed = perf_counter() - t0
        if eager_s is None or elapsed < eager_s:
            eager_s = elapsed
    if eager_answers != id_answers:
        raise ReproError(
            f"bench family {name!r}: id-native and eager query answers disagree"
        )
    assert ids_s is not None and eager_s is not None

    # -- encode: streaming vs buffered, byte-checked ----------------------
    # Byte-equality differential on the shared solution first.  The warm
    # second pair is compared: the first encodes book the one-time decode
    # into result_s, mutating the live timings mid-flight.
    "".join(solution_to_jsonl_chunks(solution, sort_keys=True))
    json.dumps(solution_to_obj(solution), sort_keys=True)
    streamed = "".join(solution_to_jsonl_chunks(solution, sort_keys=True))
    buffered = json.dumps(solution_to_obj(solution), sort_keys=True)
    if streamed != buffered:
        raise ReproError(
            f"bench family {name!r}: streaming and buffered encodes disagree"
        )
    doc_bytes = len(streamed.encode("utf-8"))

    def _fresh_view() -> Solution:
        # What one serving response pays: a fresh lazy view over the
        # solved model with empty per-instance caches, so first-touch
        # decode is part of the measured cost.  (The atom table's decode
        # cache is process-wide, exactly as in a warm server.)
        return Solution.from_interpretation(
            solution.semantics,
            solution.model,
            choices=solution.choices,
            policy=solution.policy,
            iterations=solution.iterations,
            grounding=solution.grounding,
            timings={},
        )

    stream_s: float | None = None
    buffered_s: float | None = None
    for _ in range(max(1, repeat)):
        fresh = _fresh_view()
        t0 = perf_counter()
        # Consume without joining: the streaming path never holds the
        # whole document.
        for _chunk in solution_to_jsonl_chunks(fresh, sort_keys=True):
            pass
        elapsed = perf_counter() - t0
        if stream_s is None or elapsed < stream_s:
            stream_s = elapsed
        fresh = _fresh_view()
        t0 = perf_counter()
        json.dumps(solution_to_obj(fresh), sort_keys=True)
        elapsed = perf_counter() - t0
        if buffered_s is None or elapsed < buffered_s:
            buffered_s = elapsed
    assert stream_s is not None and buffered_s is not None

    mb = doc_bytes / (1024 * 1024)
    return {
        "n": n,
        "atoms": gp.atom_count,
        "queried": len(batch),
        "ids_s": ids_s,
        "eager_s": eager_s,
        "ids_answers_per_s": len(batch) / max(ids_s, 1e-12),
        "eager_answers_per_s": len(batch) / max(eager_s, 1e-12),
        "query_speedup": eager_s / max(ids_s, 1e-12),
        "doc_bytes": doc_bytes,
        "stream_s": stream_s,
        "buffered_s": buffered_s,
        "stream_mb_s": mb / max(stream_s, 1e-12),
        "buffered_mb_s": mb / max(buffered_s, 1e-12),
        "encode_speedup": buffered_s / max(stream_s, 1e-12),
    }


# Request counts of the throughput mode: enough cold starts for a stable
# best-of, more warm starts (they are cheap), and a batch big enough that
# per-request overhead dominates pool bookkeeping.
_COLD_REQUESTS = 3
_WARM_REQUESTS = 5
_BATCH_REQUESTS = 16


#: Chunk sizes the sharding segment sweeps; the recorded numbers back
#: the BatchSolver default (chunksize=1 — see docs/serving.md).
_POOL_CHUNKSIZES = (1, 2, 4)


def _default_workers() -> int:
    """Worker-pool width for the sharding/load segments: 2–4, CPU-capped."""
    return max(2, min(4, os.cpu_count() or 1))


def _throughput_family(
    name: str, spec: FamilySpec, base_n: int, *, pool_workers: int = 0
) -> dict:
    """Cold-vs-warm serving latency and batch throughput for one family.

    *Cold* requests replay what a process without artifacts pays per
    request: parse the source text, ground, kernel-compile, then solve.
    *Warm* requests load the ``repro-ground/1`` artifact (saved once) via
    :meth:`Engine.from_artifact` and solve.  Every warm model must equal
    the cold model — the artifact path is cross-checked before any number
    is recorded.  The batch segment serves ``_BATCH_REQUESTS`` one-atom
    queries through :class:`repro.service.BatchSolver` on the warm
    engine; policy-accepting semantics vary the seed per request so each
    request is a genuine solve, deterministic semantics are served from
    the engine's solution cache (exactly as a real service would).

    With ``pool_workers >= 1`` the sharding segment re-serves the same
    batch through a ``workers=N`` process pool at each chunk size in
    ``_POOL_CHUNKSIZES`` — a fresh pool per chunk size so every run pays
    real solves (a shared pool would answer later sweeps from worker
    solution caches and flatter coarse chunks).  Pool fork + per-worker
    artifact load happen before the clock (``warm_pool``); results are
    cross-checked against the inline batch.
    """
    from repro.service.batch import BatchSolver

    n = spec.size(base_n)
    program, database = spec.generator(n)
    program_text = format_program(program)
    database_text = format_database(database)
    semantics = _ENGINE_SEMANTICS[spec.semantics]

    cold_start: list[float] = []
    cold_solve: list[float] = []
    cold_true: frozenset[str] = frozenset()
    engine = None
    for _ in range(_COLD_REQUESTS):
        t0 = perf_counter()
        engine = Engine(program_text, database_text, grounding=spec.grounding)
        engine.ground_for(spec.grounding)
        cold_start.append(perf_counter() - t0)
        t0 = perf_counter()
        solution = engine.solve(semantics)
        cold_solve.append(perf_counter() - t0)
        cold_true = frozenset(str(a) for a in solution.true_atoms)
    assert engine is not None

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        artifact_path = Path(tmp) / f"{name}.repro-ground"
        t0 = perf_counter()
        engine.save_artifact(artifact_path, spec.grounding)
        artifact_save_s = perf_counter() - t0
        artifact_bytes = artifact_path.stat().st_size

        warm_start: list[float] = []
        warm_solve: list[float] = []
        for _ in range(_WARM_REQUESTS):
            t0 = perf_counter()
            warm = Engine.from_artifact(artifact_path)
            warm_start.append(perf_counter() - t0)
            t0 = perf_counter()
            solution = warm.solve(semantics)
            warm_solve.append(perf_counter() - t0)
            warm_true = frozenset(str(a) for a in solution.true_atoms)
            if warm_true != cold_true:
                raise ReproError(
                    f"bench family {name!r}: warm-started model differs from the cold one"
                )

        probe_atom = min(cold_true) if cold_true else None
        takes_seed = "policy" in get_spec(semantics).options
        requests = []
        for i in range(_BATCH_REQUESTS):
            obj: dict = {"semantics": semantics}
            if takes_seed:
                obj["seed"] = i
            if probe_atom is not None:
                obj["atoms"] = [probe_atom]
            requests.append(obj)
        with BatchSolver(artifact=artifact_path) as solver:
            t0 = perf_counter()
            results = solver.solve_many(requests)
            batch_s = perf_counter() - t0
        failed = [r for r in results if not r.get("ok")]
        if failed:
            raise ReproError(f"bench family {name!r}: batch request failed: {failed[0]}")

        pool = None
        if pool_workers:
            inline_stripped = [dict(r) for r in results]
            for stripped in inline_stripped:
                stripped.pop("timings", None)
            chunk_req_s: dict[str, float] = {}
            for chunk in _POOL_CHUNKSIZES:
                with BatchSolver(
                    artifact=artifact_path, workers=pool_workers, chunksize=chunk
                ) as pool_solver:
                    pool_solver.warm_pool()
                    t0 = perf_counter()
                    pool_results = pool_solver.solve_many(requests)
                    pool_s = perf_counter() - t0
                sharded = [dict(r) for r in pool_results]
                for stripped in sharded:
                    stripped.pop("timings", None)
                if sharded != inline_stripped:
                    raise ReproError(
                        f"bench family {name!r}: workers={pool_workers} "
                        f"chunksize={chunk} results differ from the inline batch"
                    )
                chunk_req_s[str(chunk)] = len(requests) / max(pool_s, 1e-12)
            best_chunk = max(chunk_req_s, key=lambda c: chunk_req_s[c])
            pool = {
                "workers": pool_workers,
                "requests": len(requests),
                "chunk_req_s": chunk_req_s,
                "best_chunksize": int(best_chunk),
                "requests_per_s": chunk_req_s["1"],
                "shard_speedup": chunk_req_s["1"] / (_BATCH_REQUESTS / max(batch_s, 1e-12)),
            }

    return {
        "n": n,
        "semantics": spec.semantics,
        "grounding": spec.grounding,
        "requests": {"cold": _COLD_REQUESTS, "warm": _WARM_REQUESTS, "batch": _BATCH_REQUESTS},
        "cold_start_s": min(cold_start),
        "cold_solve_s": min(cold_solve),
        "warm_start_s": min(warm_start),
        "warm_solve_s": min(warm_solve),
        "artifact_save_s": artifact_save_s,
        "artifact_bytes": artifact_bytes,
        "warm_speedup": min(cold_start) / max(min(warm_start), 1e-12),
        "batch_s": batch_s,
        "requests_per_s": _BATCH_REQUESTS / max(batch_s, 1e-12),
        "pool": pool,
    }


# Step counts of the update mode: enough streamed updates that per-step
# overhead averages out, and few (expensive) full rebuilds — each one is
# a complete parse-free ground + kernel-compile of the mutated database.
_UPDATE_STEPS = 60
_REBUILD_STEPS = 5


def _update_trace(program: Program, database: Database, steps: int) -> list:
    """A deterministic, universe-stable retract/reinsert trace.

    Streams only *safe* EDB facts — ones whose every constant is anchored
    by the program or by a second fact — and always reinserts a fact
    before touching the next, so the Herbrand universe never changes and
    every step stays inside the incremental envelope of
    :func:`~repro.datalog.grounding.apply_facts_delta` (no silent
    re-grounds inflating the measured throughput).  Families whose facts
    all carry unique constants (retracting any would shrink the universe)
    stream *novel* facts instead: rows built from already-present
    constants are inserted then retracted, which exercises the
    instance-addition path under the same universe-stability guarantee.
    Returns ``[]`` when the family has no streamable facts at all.
    """
    from collections import Counter

    occurrences: Counter = Counter()
    for atom in database.atoms():
        occurrences.update(atom.args)
    anchored = program.constants
    safe = [
        atom
        for atom in database.atoms()
        if all(c in anchored or occurrences[c] >= 2 for c in atom.args)
    ]
    if safe:
        ops: list = []
        index = 0
        while len(ops) < steps:
            fact = safe[index % len(safe)]
            ops.append(("retract", fact))
            ops.append(("insert", fact))
            index += 1
        return ops[:steps]
    constants = sorted(occurrences, key=str)
    novel: list = []
    for atom in database.atoms():
        if not atom.args or not constants:
            continue
        row = tuple(
            constants[(constants.index(c) + 1) % len(constants)] for c in atom.args
        )
        candidate = Atom(atom.predicate, row)
        if not database.contains_atom(candidate) and candidate not in novel:
            novel.append(candidate)
        if len(novel) >= 8:
            break
    if not novel:
        return []
    ops = []
    index = 0
    while len(ops) < steps:
        fact = novel[index % len(novel)]
        ops.append(("insert", fact))
        ops.append(("retract", fact))
        index += 1
    return ops[:steps]


def _update_family(name: str, spec: FamilySpec, base_n: int) -> dict | None:
    """Streaming-update throughput vs full rebuild for one family.

    The *live* segment streams ``_UPDATE_STEPS`` single-fact updates into
    one warm :class:`Engine` (``insert_facts`` / ``retract_facts``) and
    times pure update absorption — delta re-ground plus index publish;
    the solve phase is identical on both sides and timed elsewhere.  The
    *rebuild* segment replays the first ``_REBUILD_STEPS`` steps the way
    a process without the update engine must: a fresh engine grounding
    and kernel-compiling the mutated database from scratch.  Each rebuild
    step's model is cross-checked against a second live engine driven
    through the same prefix before any number is recorded; the final live
    model is cross-checked against a fresh grounding of the end state.
    Returns ``None`` for families with nothing safely streamable.
    """
    n = spec.size(base_n)
    program, database = spec.generator(n)
    semantics = _ENGINE_SEMANTICS[spec.semantics]
    ops = _update_trace(program, database, _UPDATE_STEPS)
    if not ops:
        return None

    engine = Engine(program, database.copy(), grounding=spec.grounding)
    gp = engine.ground_for(spec.grounding)
    engine.solve(semantics)  # warm the pipeline before the timed segment

    t0 = perf_counter()
    for op, fact in ops:
        if op == "insert":
            engine.insert_facts(fact)
        else:
            engine.retract_facts(fact)
    update_s = perf_counter() - t0

    live_true = frozenset(str(a) for a in engine.solve(semantics).true_atoms)
    final_engine = Engine(program, engine.database.copy(), grounding=spec.grounding)
    final_true = frozenset(str(a) for a in final_engine.solve(semantics).true_atoms)
    if live_true != final_true:
        raise ReproError(
            f"bench family {name!r}: live update engine and fresh grounding disagree"
        )

    rebuild_db = database.copy()
    verify = Engine(program, database.copy(), grounding=spec.grounding)
    rebuild_s = 0.0
    for op, fact in ops[:_REBUILD_STEPS]:
        if op == "insert":
            rebuild_db.add_atom(fact)
            verify.insert_facts(fact)
        else:
            rebuild_db.discard_atom(fact)
            verify.retract_facts(fact)
        t0 = perf_counter()
        rebuilt = Engine(program, rebuild_db.copy(), grounding=spec.grounding)
        rebuilt.ground_for(spec.grounding)
        rebuild_s += perf_counter() - t0
        rebuilt_true = frozenset(str(a) for a in rebuilt.solve(semantics).true_atoms)
        stream_true = frozenset(str(a) for a in verify.solve(semantics).true_atoms)
        if rebuilt_true != stream_true:
            raise ReproError(
                f"bench family {name!r}: streamed update and full rebuild disagree"
            )

    steps = len(ops)
    update_step_s = update_s / steps
    rebuild_step_s = rebuild_s / _REBUILD_STEPS
    return {
        "n": n,
        "semantics": spec.semantics,
        "grounding": spec.grounding,
        "atoms": gp.atom_count,
        "rules": gp.rule_count,
        "steps": steps,
        "rebuild_steps": _REBUILD_STEPS,
        "update_s": update_s,
        "updates_per_s": steps / max(update_s, 1e-12),
        "rebuild_s": rebuild_s,
        "rebuilds_per_s": _REBUILD_STEPS / max(rebuild_s, 1e-12),
        "update_speedup": rebuild_step_s / max(update_step_s, 1e-12),
        "delta_applied": engine.delta_applied,
        "delta_rebuilds": engine.delta_rebuilds,
    }


# Load-mode shape per scale: the in-flight cap (a global client-side
# semaphore), with 2x that many total requests so the server spends most
# of the run at full depth.  The committed large-scale record must hold
# >= 256 requests in flight (the acceptance bar for the concurrent tier);
# smoke stays small so CI finishes quickly.
_LOAD_CONCURRENCY: dict[str, int] = {"smoke": 64, "small": 128, "medium": 256, "large": 256}
_LOAD_CONNECTIONS = 16
_LOAD_SEEDS = 8


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[index]


async def _drive_load(
    artifact_path: Path, request_objs: Sequence[dict], concurrency: int, workers: int
) -> dict:
    """Fire one request fleet at a live server; returns the measured stats.

    Boots a :class:`~repro.service.ReproServer` on an ephemeral port,
    opens ``_LOAD_CONNECTIONS`` client connections, and pipelines the
    requests with a *global* semaphore capping unanswered requests at
    ``concurrency`` — so the server really holds that many in flight
    (its own ``queue_depth`` decorations are folded back into
    ``max_depth`` as evidence).  Latency is measured per request from
    write to response; ``max_pending`` leaves headroom above the client
    cap so the integrity runs never shed (``shed`` is recorded and must
    stay 0).
    """
    from repro.service.server import ReproServer

    server = ReproServer(
        artifact_path,
        workers=workers,
        max_pending=concurrency + 8,
        host="127.0.0.1",
        port=0,
    )
    async with server:
        assert server.address is not None
        host, port = server.address
        connections = min(_LOAD_CONNECTIONS, len(request_objs)) or 1
        chunks = [list(request_objs[i::connections]) for i in range(connections)]
        semaphore = asyncio.Semaphore(concurrency)
        latencies: dict[int, float] = {}
        values: dict[int, object] = {}
        depths: list[int] = [0]

        async def client(chunk: list[dict]) -> None:
            reader, writer = await asyncio.open_connection(host, port)
            sent: dict[int, float] = {}

            async def read_responses() -> None:
                for _ in range(len(chunk)):
                    line = await reader.readline()
                    result = json.loads(line)
                    rid = result.get("id")
                    latencies[rid] = perf_counter() - sent.pop(rid)
                    if not result.get("ok"):
                        raise ReproError(
                            f"load request {rid} failed: {result.get('error')}"
                        )
                    depth = result.get("timings", {}).get("queue_depth", 0)
                    if depth > depths[0]:
                        depths[0] = depth
                    values[rid] = result.get("values")
                    semaphore.release()

            reading = asyncio.create_task(read_responses())
            try:
                for obj in chunk:
                    await semaphore.acquire()
                    sent[obj["id"]] = perf_counter()
                    writer.write((json.dumps(obj) + "\n").encode("utf-8"))
                await writer.drain()
                await reading
            finally:
                if not reading.done():
                    reading.cancel()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, OSError):
                    pass

        t0 = perf_counter()
        await asyncio.gather(*(client(chunk) for chunk in chunks))
        elapsed = perf_counter() - t0
        shed = server.shed
    ordered = sorted(latencies.values())
    return {
        "workers": workers,
        "elapsed_s": elapsed,
        "req_s": len(request_objs) / max(elapsed, 1e-12),
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "max_depth": depths[0],
        "shed": shed,
        "_values": values,
    }


def _load_family(
    name: str, spec: FamilySpec, base_n: int, *, concurrency: int, workers: int
) -> dict:
    """Concurrent-server load benchmark for one family.

    Serves ``2 * concurrency`` atom-probe requests (policy-accepting
    semantics cycle ``_LOAD_SEEDS`` seeds, so the engine solution caches
    see the steady-state hit pattern a real service would) through two
    server configurations — ``workers=0`` (solves serialized on the warm
    inline engine) and ``workers=N`` (fanned out to the process pool) —
    and records req/s and p50/p99 latency for each.  Every response's
    values are compared against an inline oracle engine answering the
    same request shapes; any mismatch fails the bench.
    """
    from repro.service.batch import BatchRequest, solve_one

    n = spec.size(base_n)
    program, database = spec.generator(n)
    engine = Engine(program, database, grounding=spec.grounding)
    semantics = _ENGINE_SEMANTICS[spec.semantics]
    solution = engine.solve(semantics)
    probe_atoms = sorted(str(a) for a in solution.true_atoms)[:3]
    takes_seed = "policy" in get_spec(semantics).options

    total = 2 * concurrency
    request_objs: list[dict] = []
    for i in range(total):
        obj: dict = {"id": i, "semantics": semantics}
        if takes_seed:
            obj["seed"] = i % _LOAD_SEEDS
        if probe_atoms:
            obj["atoms"] = probe_atoms
        request_objs.append(obj)

    with tempfile.TemporaryDirectory(prefix="repro-load-") as tmp:
        artifact_path = Path(tmp) / f"{name}.repro-ground"
        engine.save_artifact(artifact_path, spec.grounding)

        # The inline-path oracle: a fresh warm engine answers one request
        # per distinct shape exactly as the serving path would.
        oracle = Engine.from_artifact(artifact_path)
        expected: dict = {}
        for obj in request_objs:
            key = obj.get("seed")
            if key not in expected:
                oracle_result = solve_one(oracle, BatchRequest.from_obj(dict(obj)))
                if not oracle_result.get("ok"):
                    raise ReproError(
                        f"bench family {name!r}: load oracle failed: {oracle_result}"
                    )
                expected[key] = oracle_result.get("values")

        configs: dict[str, dict] = {}
        for label, config_workers in (("inline", 0), ("workers", workers)):
            stats = asyncio.run(
                _drive_load(artifact_path, request_objs, concurrency, config_workers)
            )
            answered = stats.pop("_values")
            for obj in request_objs:
                if answered[obj["id"]] != expected[obj.get("seed")]:
                    raise ReproError(
                        f"bench family {name!r}: load config {label!r} answered "
                        f"request {obj['id']} differently from the inline path"
                    )
            configs[label] = stats

    return {
        "n": n,
        "semantics": spec.semantics,
        "grounding": spec.grounding,
        "requests": total,
        "concurrency": concurrency,
        "connections": min(_LOAD_CONNECTIONS, total),
        "seeds": _LOAD_SEEDS if takes_seed else 0,
        "inline": configs["inline"],
        "workers": configs["workers"],
        "load_speedup": configs["workers"]["req_s"] / max(configs["inline"]["req_s"], 1e-12),
    }


def current_revision() -> str:
    """Short git revision of the working tree, or ``"unknown"``.

    A ``-dirty`` suffix marks records produced from uncommitted code, so
    the per-revision perf trajectory (``BENCH_<rev>.json``) never
    attributes numbers to a commit that cannot reproduce them.
    """
    cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    if out.returncode != 0 or not rev:
        return "unknown"
    try:
        # Tracked modifications only, matching `git describe --dirty`:
        # untracked files cannot be what produced the measured code.
        status = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd,
        )
        if status.returncode == 0 and status.stdout.strip():
            rev += "-dirty"
    except (OSError, subprocess.SubprocessError):
        pass
    return rev


def run_bench(
    *,
    scale: str = "small",
    family_names: Sequence[str] | None = None,
    repeat: int = 1,
    baseline: bool = True,
    throughput: bool = True,
    enumerate_mode: bool = True,
    updates: bool = True,
    load: bool = True,
    load_concurrency: int | None = None,
    workers: int | None = None,
    backends: bool = True,
    results_mode: bool = True,
) -> dict:
    """Run the benchmark suite and return the JSON-ready record.

    ``baseline`` times the frozen seed kernel and grounder alongside the
    production pipeline (and cross-checks them); ``throughput`` runs the
    cold-vs-warm serving mode (:func:`_throughput_family`) per family;
    ``enumerate_mode`` runs the trail-vs-clone enumeration throughput
    mode (:func:`_enumerate_family`) for the tie-breaking families;
    ``updates`` runs the streaming-update mode (:func:`_update_family`)
    for every family with streamable EDB facts; ``load`` runs the
    concurrent-server mode (:func:`_load_family`) per family at
    ``load_concurrency`` in-flight requests (default per scale).
    ``workers`` sets the process-pool width for the sharding and load
    segments (default :func:`_default_workers`; ``0`` skips the
    throughput sharding segment, and the load mode then falls back to
    the default width for its ``workers`` configuration);
    ``backends`` records the python-vs-array kernel backend comparison
    per family (``backend_speedup``, models and tie decisions
    cross-checked identical; recorded as unavailable when numpy is not
    importable); ``results_mode`` records the id-native result tier per
    family (:func:`_results_family`: query answers/sec vs the eager
    comparator, streaming encode MB/s vs the buffered oracle, both
    differentially checked).  Raises
    :class:`~repro.errors.ReproError` for unknown scales or families,
    and whenever any cross-check fails.
    """
    if scale not in SCALES:
        raise ReproError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    base_n = SCALES[scale]
    names = list(family_names) if family_names else list(FAMILIES)
    unknown = [f for f in names if f not in FAMILIES]
    if unknown:
        raise ReproError(f"unknown families {unknown}; choose from {sorted(FAMILIES)}")
    results = {
        name: _bench_family(name, FAMILIES[name], base_n, repeat, baseline, backends)
        for name in names
    }
    pool_workers = _default_workers() if workers is None else workers
    throughput_results = (
        {
            name: _throughput_family(
                name, FAMILIES[name], base_n, pool_workers=pool_workers
            )
            for name in names
        }
        if throughput
        else None
    )
    enumerate_results = (
        {
            name: _enumerate_family(name, FAMILIES[name], base_n, repeat)
            for name in names
            if FAMILIES[name].semantics == "wf-tb"
        }
        if enumerate_mode
        else None
    )
    update_results = None
    if updates:
        update_results = {}
        for name in names:
            family_updates = _update_family(name, FAMILIES[name], base_n)
            if family_updates is not None:
                update_results[name] = family_updates
    tier_results = (
        {name: _results_family(name, FAMILIES[name], base_n, repeat) for name in names}
        if results_mode
        else None
    )
    load_results = None
    if load:
        concurrency = load_concurrency or _LOAD_CONCURRENCY[scale]
        load_workers = pool_workers or _default_workers()
        load_results = {
            name: _load_family(
                name, FAMILIES[name], base_n, concurrency=concurrency, workers=load_workers
            )
            for name in names
        }
    def _stats(values: list[float], prefix: str) -> dict:
        if not values:
            return {}
        geomean = 1.0
        for v in values:
            geomean *= v
        geomean **= 1.0 / len(values)
        return {
            f"min_{prefix}": min(values),
            f"max_{prefix}": max(values),
            f"geomean_{prefix}": geomean,
        }

    speedups = [r["speedup"] for r in results.values() if r["speedup"]]
    ground_speedups = [r["ground_speedup"] for r in results.values() if r["ground_speedup"]]
    summary: dict = {**_stats(speedups, "speedup"), **_stats(ground_speedups, "ground_speedup")}
    backend_speedups = [
        r["backends"]["backend_speedup"]
        for r in results.values()
        if r.get("backends") and r["backends"].get("available")
    ]
    summary.update(_stats(backend_speedups, "backend_speedup"))
    if throughput_results:
        warm_speedups = [t["warm_speedup"] for t in throughput_results.values()]
        summary.update(_stats(warm_speedups, "warm_speedup"))
        shard_speedups = [
            t["pool"]["shard_speedup"] for t in throughput_results.values() if t.get("pool")
        ]
        summary.update(_stats(shard_speedups, "shard_speedup"))
    if enumerate_results:
        enum_speedups = [e["enumerate_speedup"] for e in enumerate_results.values()]
        summary.update(_stats(enum_speedups, "enumerate_speedup"))
    if update_results:
        update_speedups = [u["update_speedup"] for u in update_results.values()]
        summary.update(_stats(update_speedups, "update_speedup"))
    if load_results:
        load_speedups = [f["load_speedup"] for f in load_results.values()]
        summary.update(_stats(load_speedups, "load_speedup"))
    if tier_results:
        query_speedups = [r["query_speedup"] for r in tier_results.values()]
        summary.update(_stats(query_speedups, "query_speedup"))
        encode_speedups = [r["encode_speedup"] for r in tier_results.values()]
        summary.update(_stats(encode_speedups, "encode_speedup"))
    record = {
        "schema": SCHEMA,
        "revision": current_revision(),
        "generated_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "scale": scale,
        "base_n": base_n,
        "repeat": max(1, repeat),
        "families": results,
        "summary": summary,
    }
    if throughput_results is not None:
        record["throughput"] = throughput_results
    if enumerate_results is not None:
        record["enumerate"] = enumerate_results
    if update_results is not None:
        record["updates"] = update_results
    if load_results is not None:
        record["load"] = load_results
    if tier_results is not None:
        record["results"] = tier_results
    return record


def default_output_path(record: Mapping) -> Path:
    return Path(f"BENCH_{record['revision']}.json")


def write_bench(record: Mapping, path: Path | None = None) -> Path:
    """Write the bench record to ``BENCH_<rev>.json`` (or ``path``)."""
    target = Path(path) if path is not None else default_output_path(record)
    target.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return target


def format_table(record: Mapping) -> str:
    """Human-readable per-family summary of a bench record."""
    lines = [
        f"repro bench — scale={record['scale']} (base n={record['base_n']}), "
        f"rev={record['revision']}, python={record['python']}",
        f"{'family':<18} {'n':>6} {'atoms':>8} {'rules':>8} "
        f"{'ground':>9} {'g-seed':>9} {'g-spdup':>8} "
        f"{'kernel':>9} {'seed':>9} {'speedup':>8}",
    ]
    for name, fam in record["families"].items():
        kernel = fam["kernels"]["kernel"]["run_s"]
        seed = fam["kernels"].get("seed", {}).get("run_s")
        seed_ground = fam.get("seed_ground_s")
        ground_speedup = fam.get("ground_speedup")
        speedup = fam["speedup"]
        lines.append(
            f"{name:<18} {fam['n']:>6} {fam['atoms']:>8} {fam['rules']:>8} "
            f"{fam['ground_s']:>8.3f}s "
            f"{(f'{seed_ground:>8.3f}s' if seed_ground is not None else '       —')} "
            f"{(f'{ground_speedup:>7.2f}x' if ground_speedup else '       —')} "
            f"{kernel:>8.3f}s "
            f"{(f'{seed:>8.3f}s' if seed is not None else '       —')} "
            f"{(f'{speedup:>7.2f}x' if speedup else '       —')}"
        )
    summary = record.get("summary") or {}
    if "geomean_speedup" in summary:
        lines.append(
            f"kernel speedup: min {summary['min_speedup']:.2f}x / "
            f"geomean {summary['geomean_speedup']:.2f}x / "
            f"max {summary['max_speedup']:.2f}x"
        )
        if "geomean_ground_speedup" in summary:
            lines.append(
                f"ground speedup: min {summary['min_ground_speedup']:.2f}x / "
                f"geomean {summary['geomean_ground_speedup']:.2f}x / "
                f"max {summary['max_ground_speedup']:.2f}x"
            )
    backend_rows = {
        name: fam["backends"]
        for name, fam in record["families"].items()
        if fam.get("backends")
    }
    if backend_rows:
        lines.append("")
        if any(not b.get("available") for b in backend_rows.values()):
            reason = next(
                b.get("reason", "unavailable")
                for b in backend_rows.values()
                if not b.get("available")
            )
            lines.append(f"backends (python vs array): unavailable — {reason}")
        else:
            lines.append(
                f"backends (python vs array kernel): "
                f"{'family':<18} {'python':>9} {'array':>9} {'speedup':>8} "
                f"{'rounds py/arr':>14}"
            )
            for name, b in backend_rows.items():
                rounds = b["tie_rounds"]
                lines.append(
                    f"{'':<35}{name:<18} "
                    f"{b['python_run_s']:>8.3f}s "
                    f"{b['array']['run_s']:>8.3f}s "
                    f"{b['backend_speedup']:>7.2f}x "
                    f"{rounds['python']:>6}/{rounds['array']:<7}"
                )
            if "geomean_backend_speedup" in summary:
                lines.append(
                    f"backend speedup: min {summary['min_backend_speedup']:.2f}x / "
                    f"geomean {summary['geomean_backend_speedup']:.2f}x / "
                    f"max {summary['max_backend_speedup']:.2f}x"
                )
    throughput = record.get("throughput")
    if throughput:
        lines.append("")
        lines.append(
            f"throughput (compile-once serving): "
            f"{'family':<18} {'cold-start':>11} {'warm-start':>11} "
            f"{'speedup':>8} {'req/s':>9} {'artifact':>10}"
        )
        for name, fam in throughput.items():
            lines.append(
                f"{'':<35}{name:<18} "
                f"{fam['cold_start_s'] * 1e3:>9.2f}ms "
                f"{fam['warm_start_s'] * 1e3:>9.2f}ms "
                f"{fam['warm_speedup']:>7.1f}x "
                f"{fam['requests_per_s']:>9.1f} "
                f"{fam['artifact_bytes'] / 1024:>8.1f}kB"
            )
        if "geomean_warm_speedup" in summary:
            lines.append(
                f"warm-start speedup: min {summary['min_warm_speedup']:.2f}x / "
                f"geomean {summary['geomean_warm_speedup']:.2f}x / "
                f"max {summary['max_warm_speedup']:.2f}x"
            )
        sharded = {n: f["pool"] for n, f in throughput.items() if f.get("pool")}
        if sharded:
            chunk_labels = sorted(next(iter(sharded.values()))["chunk_req_s"], key=int)
            lines.append(
                f"sharded batches (workers=N): "
                f"{'family':<18} {'workers':>8} "
                + " ".join(f"{'chunk=' + c:>11}" for c in chunk_labels)
            )
            for name, pool in sharded.items():
                lines.append(
                    f"{'':<29}{name:<18} {pool['workers']:>8} "
                    + " ".join(
                        f"{pool['chunk_req_s'][c]:>9.1f}/s" for c in chunk_labels
                    )
                )
    enumerate_results = record.get("enumerate")
    if enumerate_results:
        lines.append("")
        lines.append(
            f"enumerate (trail-undo DFS vs clone-based): "
            f"{'family':<18} {'models':>7} {'trail/s':>9} {'clone/s':>9} {'speedup':>8}"
        )
        for name, fam in enumerate_results.items():
            lines.append(
                f"{'':<43}{name:<18} "
                f"{fam['models']:>7} "
                f"{fam['trail_models_per_s']:>9.1f} "
                f"{fam['clone_models_per_s']:>9.1f} "
                f"{fam['enumerate_speedup']:>7.2f}x"
            )
        if "geomean_enumerate_speedup" in summary:
            lines.append(
                f"enumerate speedup: min {summary['min_enumerate_speedup']:.2f}x / "
                f"geomean {summary['geomean_enumerate_speedup']:.2f}x / "
                f"max {summary['max_enumerate_speedup']:.2f}x"
            )
    load_results = record.get("load")
    if load_results:
        lines.append("")
        lines.append(
            f"load (concurrent server, {record.get('cpus', '?')} cpu): "
            f"{'family':<18} {'conc':>5} {'inline rps':>11} {'pool rps':>9} "
            f"{'inline p50/p99':>15} {'pool p50/p99':>14}"
        )
        for name, fam in load_results.items():
            inline_cfg = fam["inline"]
            pool_cfg = fam["workers"]
            lines.append(
                f"{'':<37}{name:<18} {fam['concurrency']:>5} "
                f"{inline_cfg['req_s']:>11.1f} {pool_cfg['req_s']:>9.1f} "
                f"{inline_cfg['p50_ms']:>6.1f}/{inline_cfg['p99_ms']:>6.1f}ms "
                f"{pool_cfg['p50_ms']:>6.1f}/{pool_cfg['p99_ms']:>5.1f}ms"
            )
        if "geomean_load_speedup" in summary:
            lines.append(
                f"load speedup (workers/inline): min {summary['min_load_speedup']:.2f}x / "
                f"geomean {summary['geomean_load_speedup']:.2f}x / "
                f"max {summary['max_load_speedup']:.2f}x"
            )
    update_results = record.get("updates")
    if update_results:
        lines.append("")
        lines.append(
            f"updates (streaming vs full rebuild): "
            f"{'family':<18} {'steps':>6} {'upd/s':>10} {'rebuild/s':>10} {'speedup':>9}"
        )
        for name, fam in update_results.items():
            lines.append(
                f"{'':<37}{name:<18} "
                f"{fam['steps']:>6} "
                f"{fam['updates_per_s']:>10.1f} "
                f"{fam['rebuilds_per_s']:>10.1f} "
                f"{fam['update_speedup']:>8.1f}x"
            )
        if "geomean_update_speedup" in summary:
            lines.append(
                f"update speedup: min {summary['min_update_speedup']:.2f}x / "
                f"geomean {summary['geomean_update_speedup']:.2f}x / "
                f"max {summary['max_update_speedup']:.2f}x"
            )
    return "\n".join(lines)
