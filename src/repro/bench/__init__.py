"""Benchmark pipeline: ``repro bench`` and the frozen seed kernel.

* :mod:`repro.bench.runner` — the timing harness behind the ``bench``
  CLI subcommand; writes per-phase timings to ``BENCH_<rev>.json``;
* :mod:`repro.bench.seed_kernel` — the pre-compilation evaluation kernel,
  preserved as the speedup baseline and differential-test oracle.
"""

from repro.bench.runner import (
    FAMILIES,
    SCALES,
    default_output_path,
    format_table,
    run_bench,
    write_bench,
)
from repro.bench.seed_kernel import SeedGroundGraphState

__all__ = [
    "FAMILIES",
    "SCALES",
    "SeedGroundGraphState",
    "default_output_path",
    "format_table",
    "run_bench",
    "write_bench",
]
