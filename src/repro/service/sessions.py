"""Stateful session management for the concurrent serving tier.

PR 6 gave :class:`~repro.api.engine.Engine` streaming updates
(``insert_facts`` / ``retract_facts``), but those mutate a single live
engine — they have no concurrency story.  This module provides one: a
:class:`SessionManager` maps client-chosen session names to private
warm-started engines and runs every operation on a session through a
**serialized apply-loop** (an ``asyncio.Lock`` per session, FIFO), so
interleaved inserts, retracts, and solves from many connections apply in
a single total order per session while *independent* sessions proceed in
parallel.

Sessions are bounded in two dimensions:

* **count** — at most ``max_sessions`` live engines; a request naming a
  new session past the bound raises
  :class:`~repro.errors.SessionLimitError` (the server answers it with a
  structured ``session_limit`` error).
* **time** — a session idle for ``ttl_s`` seconds is expired by
  :meth:`SessionManager.expire_idle` (the server runs it periodically).

On expiry — and on graceful server drain — a session that absorbed
updates **snapshots back to the artifact cache**: its mutated grounding
is frozen under ``cache_key(program, database, mode, None)``, exactly
the key a fresh ``Engine(program, mutated_database, artifact_cache=...)``
would probe, so the compiled state of a long-lived session outlives the
server process.

The manager is an asyncio-native object: all bookkeeping runs on the
event loop thread, so its dict/counter mutations need no locks of their
own.  Only the caller-supplied ``work`` coroutine may block (it
typically hops to an executor for the actual solve).
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from time import monotonic
from typing import Any, Awaitable, Callable, TypeVar

from repro.api.engine import Engine
from repro.errors import ReproError, SessionLimitError
from repro.io.artifact import ArtifactCache, cache_key

__all__ = ["Session", "SessionManager"]

T = TypeVar("T")


class Session:
    """One live stateful session: a private engine plus its apply lock.

    All requests naming this session run under :attr:`lock` — acquired
    FIFO by ``asyncio.Lock`` — so the engine only ever sees one
    operation at a time, in admission order.
    """

    __slots__ = (
        "name",
        "engine",
        "lock",
        "seq",
        "pending",
        "requests",
        "created_s",
        "last_active_s",
        "closed",
    )

    def __init__(self, name: str, engine: Engine, now: float):
        self.name = name
        self.engine = engine
        self.lock = asyncio.Lock()
        #: monotone per-session sequence number: the position of the
        #: *currently applying* operation in the session's total order.
        self.seq = 0
        #: operations admitted but not yet finished (queued + running);
        #: a session with pending work is never expired.
        self.pending = 0
        self.requests = 0
        self.created_s = now
        self.last_active_s = now
        self.closed = False

    @property
    def idle_s(self) -> float:
        return monotonic() - self.last_active_s

    def stats(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "pending": self.pending,
            "requests": self.requests,
            "updates": self.engine.update_calls,
        }


class SessionManager:
    """Bounded table of live sessions with serialized per-session apply.

    Parameters
    ----------
    factory:
        Zero-argument callable producing a fresh warm engine for a new
        session (typically ``lambda: Engine.from_artifact(path)``).
    ttl_s:
        Idle seconds after which :meth:`expire_idle` closes a session.
    max_sessions:
        Bound on simultaneously live sessions.
    cache:
        Optional :class:`~repro.io.artifact.ArtifactCache` that closed
        sessions snapshot their mutated groundings into.
    clock:
        Injectable monotonic clock (tests freeze it to drive expiry).
    """

    def __init__(
        self,
        factory: Callable[[], Engine],
        *,
        ttl_s: float = 600.0,
        max_sessions: int = 256,
        cache: ArtifactCache | None = None,
        clock: Callable[[], float] = monotonic,
    ):
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s!r}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions!r}")
        self.factory = factory
        self.ttl_s = ttl_s
        self.max_sessions = max_sessions
        self.cache = cache
        self.clock = clock
        self._sessions: dict[str, Session] = {}
        self.created = 0
        self.expired = 0
        self.snapshots = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._sessions

    @property
    def names(self) -> list[str]:
        return sorted(self._sessions)

    def get(self, name: str) -> Session | None:
        return self._sessions.get(name)

    def _get_or_create(self, name: str) -> Session:
        session = self._sessions.get(name)
        if session is not None and not session.closed:
            return session
        if len(self._sessions) >= self.max_sessions:
            raise SessionLimitError(
                f"session table full ({self.max_sessions} live sessions); "
                f"cannot open session {name!r}"
            )
        session = Session(name, self.factory(), self.clock())
        self._sessions[name] = session
        self.created += 1
        return session

    async def run(self, name: str, work: Callable[[Session], Awaitable[T]]) -> T:
        """Run ``work`` on session ``name``, serialized with its peers.

        Creates the session on first use.  Operations queue FIFO on the
        session lock, so concurrent callers apply in admission order —
        the serialization guarantee the wire protocol documents.  The
        (lookup, ``pending`` increment) pair is a single synchronous
        block on the event loop, so the expiry reaper can never retire a
        session between admission and lock acquisition.
        """
        while True:
            session = self._get_or_create(name)
            session.pending += 1
            try:
                async with session.lock:
                    if session.closed:
                        # Expired between queueing and acquisition (only
                        # possible if expiry raced a long queue); retry
                        # against a fresh session.
                        continue
                    session.seq += 1
                    session.requests += 1
                    try:
                        return await work(session)
                    finally:
                        session.last_active_s = self.clock()
            finally:
                session.pending -= 1

    def expire_idle(self, now: float | None = None) -> list[str]:
        """Close (and snapshot) every session idle for ``ttl_s`` seconds.

        Sessions with queued or running operations are never expired.
        Returns the names closed, for logging.
        """
        now = self.clock() if now is None else now
        closed: list[str] = []
        for name, session in list(self._sessions.items()):
            if session.pending or session.lock.locked():
                continue
            if now - session.last_active_s >= self.ttl_s:
                self._close(session)
                self.expired += 1
                closed.append(name)
        return closed

    def close_all(self, *, snapshot: bool = True) -> list[str]:
        """Close every session (server drain).  Returns the names closed."""
        closed = []
        for session in list(self._sessions.values()):
            self._close(session, snapshot=snapshot)
            closed.append(session.name)
        return closed

    def _close(self, session: Session, *, snapshot: bool = True) -> None:
        session.closed = True
        self._sessions.pop(session.name, None)
        if snapshot:
            self.snapshot(session)

    def snapshot(self, session: Session) -> Path | None:
        """Freeze a session's compiled state into the artifact cache.

        Only sessions that actually absorbed updates are written — a
        read-only session's grounding is identical to the serving
        artifact, so storing it would be pure duplication.  The key uses
        the *empty* pool fingerprint (``pool=None``), which is exactly
        what a fresh ``Engine(program, mutated_database,
        artifact_cache=cache)`` computes before grounding, so the next
        process to ask for this (program, database) pair warm-starts
        from the session's final state instead of re-grounding.
        """
        if self.cache is None or not session.engine.update_calls:
            return None
        engine = session.engine
        mode = engine.default_grounding or "full"
        try:
            ground = engine.ground_for(mode)
            key = cache_key(engine.program, engine.database, ground.mode, None)
            path = self.cache.put(key, ground)
        except ReproError:
            return None
        self.snapshots += 1
        return path

    def stats(self) -> dict[str, Any]:
        return {
            "live": len(self._sessions),
            "created": self.created,
            "expired": self.expired,
            "snapshots": self.snapshots,
            "max_sessions": self.max_sessions,
            "ttl_s": self.ttl_s,
        }
