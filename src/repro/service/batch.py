"""The warm-start batch solver: one artifact, many requests, many workers.

The serving model is *compile once, serve many*: the expensive pipeline
(parse → ground → kernel-compile) runs exactly once, is frozen into a
``repro-ground/1`` artifact (:mod:`repro.io.artifact`), and every request
afterwards is answered by an engine warm-started from that artifact.
:class:`BatchSolver` runs a whole batch:

* ``workers=0`` (the default) answers inline on one warm engine — the
  deterministic mode used by tests and the bench pipeline;
* ``workers=N`` shards the batch across ``N`` worker processes; each
  worker loads the artifact once (process-pool initializer), so the
  per-request cost is pure solve time, never grounding.

Each request carries its own semantics, grounding mode, tie policy, and
seed (``repro-batchreq/1``), and may stream EDB updates into the serving
engine (``insert`` / ``retract`` — batches with updates are answered
inline, in order); each result line is ``repro-batch/1``.  A request
that fails — unknown semantics, bad policy, grounding explosion —
produces an ``"ok": false`` result for *that* line; the batch never dies
half-way.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing.pool import AsyncResult, Pool
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.api.engine import Engine
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import Program
from repro.errors import ReproError, SessionLimitError, SolveTimeoutError, ValidationError
from repro.ground.backend import BACKENDS
from repro.io.artifact import program_fingerprint, read_artifact_header
from repro.io.json_io import solution_to_obj
from repro.semantics.choices import (
    FewestTrue,
    FirstSideTrue,
    MostTrue,
    RandomChoice,
    SecondSideTrue,
)

__all__ = [
    "REQUEST_SCHEMA",
    "BATCH_SCHEMA",
    "BatchRequest",
    "BatchSolver",
    "error_kind_of",
    "failure_result",
    "read_requests",
    "solve_one",
]

REQUEST_SCHEMA = "repro-batchreq/1"
BATCH_SCHEMA = "repro-batch/1"

_REQUEST_FIELDS = frozenset(
    {
        "schema",
        "id",
        "semantics",
        "grounding",
        "backend",
        "policy",
        "seed",
        "atoms",
        "insert",
        "retract",
        "session",
    }
)

_POLICIES = {
    "first_side_true": FirstSideTrue,
    "second_side_true": SecondSideTrue,
    "fewest_true": FewestTrue,
    "most_true": MostTrue,
    "random": RandomChoice,
}


@dataclass(frozen=True)
class BatchRequest:
    """One solve request of a batch (wire schema ``repro-batchreq/1``).

    * ``id`` — caller-chosen correlation value, echoed on the result
      (defaults to the request's position in the batch);
    * ``semantics`` — any registry name or alias (default
      ``tie_breaking``);
    * ``grounding`` — per-request grounding mode override, if any;
    * ``backend`` — per-request kernel backend override (``python``,
      ``array``, or ``auto``); the serving engine's default otherwise;
    * ``policy`` / ``seed`` — tie-orientation policy by name
      (``first_side_true``, ``second_side_true``, ``fewest_true``,
      ``most_true``, ``random``) and the seed for ``random``; a bare
      ``seed`` implies ``random``;
    * ``atoms`` — optional ground atoms to evaluate; when given, the
      result carries their three truth values instead of the full model;
    * ``insert`` / ``retract`` — optional ground EDB facts to stream into
      the serving engine *before* this request's solve (retractions apply
      first).  Updates are stateful: they mutate the engine's database,
      so later requests in the same batch see them.  A batch containing
      updates is always answered inline in request order, never sharded
      across workers;
    * ``session`` — optional session name scoping the request's state.
      On the concurrent server (:mod:`repro.service.server`) every
      sessioned request runs serialized on that session's private engine;
      in the offline batch path a sessioned request is simply answered
      inline (the batch's one engine *is* the session).
    """

    id: Any = None
    semantics: str = "tie_breaking"
    grounding: GroundingMode | None = None
    backend: str | None = None
    policy: str | None = None
    seed: int | None = None
    atoms: tuple[str, ...] = ()
    insert: tuple[str, ...] = ()
    retract: tuple[str, ...] = ()
    session: str | None = None

    @classmethod
    def from_obj(cls, obj: Any, default_id: Any = None) -> "BatchRequest":
        """Validate one decoded JSON request line into a request.

        Raises :class:`~repro.errors.ValidationError` on non-object
        lines, unknown fields, or malformed field types, so a typo in a
        request file fails that request loudly instead of being ignored.
        """
        if not isinstance(obj, dict):
            raise ValidationError(f"batch request must be a JSON object, got {type(obj).__name__}")
        unknown = sorted(set(obj) - _REQUEST_FIELDS)
        if unknown:
            raise ValidationError(
                f"unknown batch request field(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(_REQUEST_FIELDS))}"
            )
        schema = obj.get("schema")
        if schema is not None and schema != REQUEST_SCHEMA:
            raise ValidationError(f"request schema {schema!r} is not {REQUEST_SCHEMA!r}")
        def atom_list(field: str) -> tuple[str, ...]:
            value = obj.get(field, ())
            if isinstance(value, str) or not isinstance(value, (list, tuple)):
                raise ValidationError(f"{field!r} must be a list of ground atom strings")
            return tuple(str(a) for a in value)

        atoms = atom_list("atoms")
        seed = obj.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ValidationError("'seed' must be an integer")
        session = obj.get("session")
        if session is not None and (not isinstance(session, str) or not session):
            raise ValidationError("'session' must be a non-empty string")
        backend = obj.get("backend")
        if backend is not None and backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {backend!r}; allowed: {', '.join(BACKENDS)}"
            )
        return cls(
            id=obj.get("id", default_id),
            semantics=obj.get("semantics", "tie_breaking"),
            grounding=obj.get("grounding"),
            backend=backend,
            policy=obj.get("policy"),
            seed=seed,
            atoms=atoms,
            insert=atom_list("insert"),
            retract=atom_list("retract"),
            session=session,
        )

    def to_obj(self) -> dict[str, Any]:
        """The JSON-ready ``repro-batchreq/1`` object of this request."""
        obj: dict[str, Any] = {"id": self.id, "semantics": self.semantics}
        if self.grounding is not None:
            obj["grounding"] = self.grounding
        if self.backend is not None:
            obj["backend"] = self.backend
        if self.policy is not None:
            obj["policy"] = self.policy
        if self.seed is not None:
            obj["seed"] = self.seed
        if self.atoms:
            obj["atoms"] = list(self.atoms)
        if self.insert:
            obj["insert"] = list(self.insert)
        if self.retract:
            obj["retract"] = list(self.retract)
        if self.session is not None:
            obj["session"] = self.session
        return obj

    @property
    def has_updates(self) -> bool:
        """True iff this request streams facts into the engine."""
        return bool(self.insert or self.retract)

    def resolve_policy(self) -> Any | None:
        """The tie policy object this request asks for, or ``None``.

        Raises :class:`~repro.errors.ValidationError` for unknown policy
        names or a ``seed`` on a non-random policy.
        """
        if self.policy is None:
            return RandomChoice(self.seed) if self.seed is not None else None
        factory = _POLICIES.get(self.policy)
        if factory is None:
            raise ValidationError(
                f"unknown policy {self.policy!r}; available: {', '.join(sorted(_POLICIES))}"
            )
        if factory is RandomChoice:
            return RandomChoice(self.seed)
        if self.seed is not None:
            raise ValidationError(f"policy {self.policy!r} does not take a seed")
        return factory()


def read_requests(source: str | Path | Iterable[str]) -> list[BatchRequest | ValidationError]:
    """Parse a JSONL request stream, one entry per non-blank line.

    ``source`` is a path or an iterable of lines.  Malformed lines are
    returned *in place* as :class:`~repro.errors.ValidationError` values
    (tagged with their 1-based line number, and carrying the line's
    ``id`` on ``request_id`` when one could be read) rather than raised,
    so one bad line fails one request, not the batch.
    """

    def failure(message: str, request_id: Any = None) -> ValidationError:
        error = ValidationError(message)
        error.request_id = request_id
        return error

    lines = Path(source).read_text().splitlines() if isinstance(source, (str, Path)) else source
    out: list[BatchRequest | ValidationError] = []
    index = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            out.append(failure(f"line {lineno}: invalid JSON: {error}"))
            index += 1
            continue
        try:
            out.append(BatchRequest.from_obj(obj, default_id=index))
        except ValidationError as error:
            rid = obj.get("id") if isinstance(obj, dict) else None
            out.append(failure(f"line {lineno}: {error}", rid))
        index += 1
    return out


def error_kind_of(error: ReproError) -> str:
    """The ``error_kind`` wire tag of one request failure.

    ``validation`` (malformed request), ``timeout`` (deadline exceeded),
    ``session_limit`` (the server's session table is full), or ``error``
    (every other library failure — unknown semantics, grounding
    explosion, ...).  The server adds ``overloaded`` and ``draining``
    (admission control sheds) on top.
    """
    if isinstance(error, SolveTimeoutError):
        return "timeout"
    if isinstance(error, SessionLimitError):
        return "session_limit"
    if isinstance(error, ValidationError):
        return "validation"
    return "error"


def failure_result(request_id: Any, error: ReproError) -> dict[str, Any]:
    """The ``"ok": false`` result line of one failed request."""
    result = {
        "schema": BATCH_SCHEMA,
        "id": request_id,
        "ok": False,
        "error": str(error),
        "error_kind": error_kind_of(error),
    }
    if isinstance(error, SolveTimeoutError):
        result["timeout_s"] = error.timeout_s
    return result


@contextmanager
def _solve_deadline(timeout_s: float | None) -> Iterator[bool]:
    """Arm a wall-clock deadline around a solve, where the platform allows.

    Enforcement uses ``SIGALRM`` (via ``signal.setitimer``), so it is only
    *hard* on the main thread of a POSIX process — exactly where batch
    solves run: inline in the CLI process, or in the main thread of a
    worker process.  Anywhere else (executor threads, platforms without
    ``setitimer``) the deadline degrades to unenforced and the caller's
    own supervision (e.g. the server's soft ``asyncio`` timeout) applies.
    Yields whether enforcement is armed.
    """
    if (
        not timeout_s
        or timeout_s <= 0
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield False
        return

    def _expired(signum: int, frame: Any) -> None:
        raise SolveTimeoutError(timeout_s)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def solve_one(
    engine: Engine,
    request: BatchRequest,
    *,
    timeout_s: float | None = None,
    materialize: bool = True,
) -> dict[str, Any]:
    """Answer one request on a warm engine (wire schema ``repro-batch/1``).

    Returns the JSON-ready result object: ``{"ok": true, ...}`` with
    either per-atom ``values`` (when the request listed atoms) or the
    full ``repro-solution/1`` object; or ``{"ok": false, "error": ...,
    "error_kind": ...}`` when the request fails.  Library errors never
    propagate — a batch is fault-isolated per request.

    With ``materialize=False`` the ``solution`` value stays the live
    :class:`~repro.api.Solution` instead of a decoded dict — the
    streaming path for same-process writers that encode at write time via
    :func:`repro.io.json_io.result_to_json_chunks` (the atom sets are
    then decoded straight from kernel ids into wire bytes).  Pool workers
    must materialize: result dicts cross a process boundary.

    ``timeout_s`` arms a per-request deadline around the *solve* (never
    around the stateful ``insert``/``retract`` section, which must not be
    torn): a solve that exceeds it yields a structured
    ``"error_kind": "timeout"`` result instead of wedging the worker.
    See :func:`_solve_deadline` for where enforcement is hard.
    """
    try:
        options: dict[str, Any] = {}
        if request.grounding is not None:
            options["grounding"] = request.grounding
        if request.backend is not None:
            options["backend"] = request.backend
        policy = request.resolve_policy()
        if policy is not None:
            options["policy"] = policy
        # Parse query atoms first: a malformed atom must fail the request
        # before the (potentially expensive) solve, not after it.
        parsed = [parse_atom(a) for a in request.atoms]
        updates: dict[str, Any] | None = None
        if request.has_updates:
            # Parse both fact lists before applying either: a malformed
            # insert must not leave the retractions half-applied.
            to_retract = [parse_atom(a) for a in request.retract]
            to_insert = [parse_atom(a) for a in request.insert]
            retracted = engine.retract_facts(*to_retract)
            inserted = engine.insert_facts(*to_insert)
            updates = {
                "inserted": [str(a) for a in inserted],
                "retracted": [str(a) for a in retracted],
            }
        with _solve_deadline(timeout_s):
            solution = engine.solve(request.semantics, **options)
        result: dict[str, Any] = {
            "schema": BATCH_SCHEMA,
            "id": request.id,
            "ok": True,
            "semantics": solution.semantics,
            "found": solution.found,
            "total": solution.total,
        }
        # Solve-phase accounting for batch summaries: total solve time
        # plus the kernel's per-phase breakdown when the semantics
        # records one.  (A request served from the engine's solution
        # cache reports the timings of the solve that populated it.)
        timings = {
            key: solution.timings[key]
            for key in (
                "solve_s",
                "close_s",
                "unfounded_s",
                "tie_select_s",
                "tie_apply_s",
                "tie_analysis_s",
                "result_s",
            )
            if key in solution.timings
        }
        if timings:
            result["timings"] = timings
        if updates is not None:
            result["updates"] = updates
        if parsed:
            # Answered per atom from the interned ids — no set decode.
            result["values"] = {str(a): solution.value(a) for a in parsed}
        else:
            result["solution"] = solution if not materialize else solution_to_obj(solution)
        return result
    except ReproError as error:
        return failure_result(request.id, error)


# ---------------------------------------------------------------------------
# Worker-process plumbing.  One engine per worker process, loaded once by
# the pool initializer; requests travel as plain JSON-ready dicts.
# ---------------------------------------------------------------------------

_WORKER_ENGINE: Engine | None = None
_WORKER_TIMEOUT_S: float | None = None


def _worker_init(
    artifact_path: str, timeout_s: float | None = None, backend: str | None = None
) -> None:
    global _WORKER_ENGINE, _WORKER_TIMEOUT_S
    _WORKER_ENGINE = Engine.from_artifact(artifact_path, backend=backend)
    _WORKER_TIMEOUT_S = timeout_s


def _worker_solve(obj: dict[str, Any]) -> dict[str, Any]:
    assert _WORKER_ENGINE is not None, "worker used before its initializer ran"
    t0 = perf_counter()
    try:
        request = BatchRequest.from_obj(obj)
    except ValidationError as error:
        return failure_result(obj.get("id"), error)
    result = solve_one(_WORKER_ENGINE, request, timeout_s=_WORKER_TIMEOUT_S)
    # The worker's own wall clock: the dispatcher (another process, whose
    # perf_counter is not comparable) subtracts it from the request's
    # server-side wall time to expose queue + IPC overhead.
    result.setdefault("timings", {})["worker_s"] = perf_counter() - t0
    return result


class BatchSolver:
    """Shard batches of requests over one compiled ground artifact.

    Construction fixes the (program, database, grounding) triple — either
    from an existing ``artifact`` path or by compiling ``program`` /
    ``database`` once — and the worker count:

    * ``artifact`` — path of a ``repro-ground/1`` artifact; if it exists
      it is the source of truth (``program`` may be omitted; when given,
      its fingerprint must match the artifact's — serving a stale
      artifact for an edited program fails loudly instead of answering
      for the wrong program), and if it does not exist but ``program``
      is given, the compiled grounding is saved there for the next
      process;
    * ``workers=0`` — answer inline on one warm engine in this process;
    * ``workers=N`` — fork ``N`` workers, each warm-starting from the
      artifact once; requests are sharded across them (no engine is
      loaded in the parent);
    * ``timeout_s`` — per-request solve deadline (see :func:`solve_one`):
      a request whose solve exceeds it is answered with a structured
      ``"error_kind": "timeout"`` result, enforced by ``SIGALRM`` inline
      and inside every worker process;
    * ``backend`` — default kernel backend for every serving engine
      (inline and in each worker); per-request ``backend`` overrides it;
    * ``chunksize`` — requests handed to a worker per dispatch.  The
      default 1 maximizes load balancing: per-task IPC is microseconds
      while solves are typically milliseconds, so at every measured batch
      shape chunk 1 beats coarser shards (see ``docs/serving.md``); raise
      it only for huge batches of sub-millisecond requests.

    Use as a context manager (or call :meth:`close`) to reclaim the
    worker pool and any temporary artifact.
    """

    def __init__(
        self,
        artifact: str | Path | None = None,
        *,
        program: Program | str | None = None,
        database: Database | str | None = None,
        grounding: GroundingMode | None = None,
        workers: int = 0,
        timeout_s: float | None = None,
        chunksize: int = 1,
        backend: str | None = None,
    ) -> None:
        if workers < 0:
            raise ValidationError(f"workers must be >= 0, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValidationError(f"timeout_s must be positive, got {timeout_s}")
        if chunksize < 1:
            raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
        if backend is not None and backend not in BACKENDS:
            raise ValidationError(f"unknown backend {backend!r}; allowed: {', '.join(BACKENDS)}")
        self.workers = workers
        self.timeout_s = timeout_s
        self.chunksize = chunksize
        self.backend = backend
        self._pool: Pool | None = None
        self._engine: Engine | None = None
        self._owns_artifact = False
        path = Path(artifact) if artifact is not None else None
        if path is not None and path.exists():
            # Verify the container up front: a corrupt artifact must fail
            # here, not inside a pool initializer (a raising initializer
            # puts multiprocessing into an endless worker-respawn loop).
            read_artifact_header(path)
            if program is not None:
                self._check_artifact_matches(path, program, database)
            self._artifact_path = path  # inline engine loads lazily (see .engine)
        elif program is not None:
            engine = Engine(program, database, grounding=grounding, backend=backend)
            if path is None:
                fd, tmp = tempfile.mkstemp(prefix="repro-ground-", suffix=".repro-ground")
                os.close(fd)
                path = Path(tmp)
                self._owns_artifact = True
            engine.save_artifact(path, grounding)
            self._artifact_path = path
            self._engine = engine
        else:
            raise ValidationError("BatchSolver needs an existing artifact or a program")

    @staticmethod
    def _check_artifact_matches(
        path: Path, program: Program | str, database: Database | str | None
    ) -> None:
        """Refuse to serve an artifact compiled from different inputs."""
        if isinstance(program, str):
            program = parse_program(program)
        if isinstance(database, str):
            database = parse_database(database)
        expected = program_fingerprint(program, database if database is not None else Database())
        stored = read_artifact_header(path).get("program_fingerprint")
        if stored != expected:
            raise ValidationError(
                f"artifact {path} was compiled from a different (program, database) "
                "pair; delete it to recompile, or serve from the artifact alone"
            )

    @property
    def artifact_path(self) -> Path:
        """The artifact every worker (and the inline engine) serves from."""
        return self._artifact_path

    @property
    def engine(self) -> Engine:
        """The warm inline engine (the ``workers=0`` serving path).

        Loaded from the artifact on first use, so a pool-only solver
        (``workers=N``) never materializes a ground program in the
        parent process.
        """
        if self._engine is None:
            self._engine = Engine.from_artifact(self._artifact_path, backend=self.backend)
        return self._engine

    def _ensure_pool(self) -> Pool:
        if self._pool is None:
            # Late import keeps multiprocessing out of the common inline path.
            from multiprocessing import get_context

            self._pool = get_context().Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(str(self._artifact_path), self.timeout_s, self.backend),
            )
        return self._pool

    def warm_pool(self) -> None:
        """Fork the worker pool now instead of on first use.

        Long-lived dispatchers (the asyncio server) call this at startup:
        forking early keeps worker processes free of whatever threads the
        dispatcher spins up later, and moves the artifact-load cost out of
        the first request's latency.  A no-op for ``workers=0``.
        """
        if self.workers:
            self._ensure_pool()

    def apply_async(
        self,
        request: BatchRequest | dict[str, Any],
        *,
        callback: Callable[[dict[str, Any]], None] | None = None,
        error_callback: Callable[[BaseException], None] | None = None,
    ) -> AsyncResult:
        """Dispatch one request to the worker pool without blocking.

        The concurrent server's fan-out path: each stateless request is
        handed to the pool as it arrives (no batch barrier), and the
        result comes back through ``callback`` on the pool's result
        thread.  Requires ``workers >= 1``; stateful requests (updates or
        a session) must not be sharded and are rejected here.
        """
        if not self.workers:
            raise ValidationError("apply_async needs workers >= 1; solve inline instead")
        if isinstance(request, BatchRequest):
            if request.has_updates or request.session is not None:
                raise ValidationError("stateful requests cannot be sharded across workers")
            request = request.to_obj()
        return self._ensure_pool().apply_async(
            _worker_solve, (request,), callback=callback, error_callback=error_callback
        )

    def solve_many(
        self,
        requests: Iterable[BatchRequest | dict[str, Any] | ValidationError],
        *,
        materialize: bool = True,
    ) -> list[dict[str, Any]]:
        """Answer a batch, preserving request order.

        ``requests`` may mix :class:`BatchRequest` objects, raw JSON-ready
        dicts, and the :class:`~repro.errors.ValidationError` placeholders
        produced by :func:`read_requests` (which become ``"ok": false``
        results, echoing the request ``id`` whenever one was readable).
        With workers configured, valid requests are sharded across the
        process pool; errors are answered locally.  A batch carrying
        ``insert``/``retract`` updates (or naming a ``session``) is
        answered inline in request order instead — worker engines live in
        separate processes and would neither share nor order the streamed
        state.

        ``materialize=False`` applies only to inline-answered requests
        (see :func:`solve_one`): their ``solution`` values stay live for
        streaming encode.  Pool answers crossed a process boundary and
        are always plain dicts.
        """
        results: list[dict[str, Any] | None] = []
        solvable: list[tuple[int, BatchRequest]] = []
        for i, req in enumerate(requests):
            if isinstance(req, BatchRequest):
                solvable.append((i, req))
                results.append(None)
                continue
            if isinstance(req, ValidationError):
                rid = getattr(req, "request_id", None)
                error = req
            else:
                rid = req.get("id") if isinstance(req, dict) else None
                try:
                    solvable.append((i, BatchRequest.from_obj(req, default_id=i)))
                    results.append(None)
                    continue
                except ValidationError as exc:
                    error = exc
            results.append({"schema": BATCH_SCHEMA, "id": rid, "ok": False, "error": str(error)})

        stateful = any(r.has_updates or r.session is not None for _, r in solvable)
        if self.workers and solvable and not stateful:
            pool = self._ensure_pool()
            answers = pool.map(
                _worker_solve, [r.to_obj() for _, r in solvable], self.chunksize
            )
            for (i, _), answer in zip(solvable, answers):
                results[i] = answer
        else:
            for i, req in solvable:
                results[i] = solve_one(
                    self.engine, req, timeout_s=self.timeout_s, materialize=materialize
                )
        return [r for r in results if r is not None]

    def solve_file(
        self, source: str | Path | Iterable[str], *, materialize: bool = True
    ) -> list[dict[str, Any]]:
        """Answer a JSONL request stream (see :func:`read_requests`)."""
        return self.solve_many(read_requests(source), materialize=materialize)

    def close(self) -> None:
        """Terminate the worker pool and delete a temporary artifact."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._owns_artifact:
            try:
                self._artifact_path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
            self._owns_artifact = False

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"BatchSolver(artifact={str(self._artifact_path)!r}, workers={self.workers})"
