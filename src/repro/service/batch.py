"""The warm-start batch solver: one artifact, many requests, many workers.

The serving model is *compile once, serve many*: the expensive pipeline
(parse → ground → kernel-compile) runs exactly once, is frozen into a
``repro-ground/1`` artifact (:mod:`repro.io.artifact`), and every request
afterwards is answered by an engine warm-started from that artifact.
:class:`BatchSolver` runs a whole batch:

* ``workers=0`` (the default) answers inline on one warm engine — the
  deterministic mode used by tests and the bench pipeline;
* ``workers=N`` shards the batch across ``N`` worker processes; each
  worker loads the artifact once (process-pool initializer), so the
  per-request cost is pure solve time, never grounding.

Each request carries its own semantics, grounding mode, tie policy, and
seed (``repro-batchreq/1``), and may stream EDB updates into the serving
engine (``insert`` / ``retract`` — batches with updates are answered
inline, in order); each result line is ``repro-batch/1``.  A request
that fails — unknown semantics, bad policy, grounding explosion —
produces an ``"ok": false`` result for *that* line; the batch never dies
half-way.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from multiprocessing.pool import Pool
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.api.engine import Engine
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode
from repro.datalog.parser import parse_atom, parse_database, parse_program
from repro.datalog.program import Program
from repro.errors import ReproError, ValidationError
from repro.io.artifact import program_fingerprint, read_artifact_header
from repro.io.json_io import solution_to_obj
from repro.semantics.choices import (
    FewestTrue,
    FirstSideTrue,
    MostTrue,
    RandomChoice,
    SecondSideTrue,
)

__all__ = [
    "REQUEST_SCHEMA",
    "BATCH_SCHEMA",
    "BatchRequest",
    "BatchSolver",
    "read_requests",
    "solve_one",
]

REQUEST_SCHEMA = "repro-batchreq/1"
BATCH_SCHEMA = "repro-batch/1"

_REQUEST_FIELDS = frozenset(
    {"schema", "id", "semantics", "grounding", "policy", "seed", "atoms", "insert", "retract"}
)

_POLICIES = {
    "first_side_true": FirstSideTrue,
    "second_side_true": SecondSideTrue,
    "fewest_true": FewestTrue,
    "most_true": MostTrue,
    "random": RandomChoice,
}


@dataclass(frozen=True)
class BatchRequest:
    """One solve request of a batch (wire schema ``repro-batchreq/1``).

    * ``id`` — caller-chosen correlation value, echoed on the result
      (defaults to the request's position in the batch);
    * ``semantics`` — any registry name or alias (default
      ``tie_breaking``);
    * ``grounding`` — per-request grounding mode override, if any;
    * ``policy`` / ``seed`` — tie-orientation policy by name
      (``first_side_true``, ``second_side_true``, ``fewest_true``,
      ``most_true``, ``random``) and the seed for ``random``; a bare
      ``seed`` implies ``random``;
    * ``atoms`` — optional ground atoms to evaluate; when given, the
      result carries their three truth values instead of the full model;
    * ``insert`` / ``retract`` — optional ground EDB facts to stream into
      the serving engine *before* this request's solve (retractions apply
      first).  Updates are stateful: they mutate the engine's database,
      so later requests in the same batch see them.  A batch containing
      updates is always answered inline in request order, never sharded
      across workers.
    """

    id: Any = None
    semantics: str = "tie_breaking"
    grounding: GroundingMode | None = None
    policy: str | None = None
    seed: int | None = None
    atoms: tuple[str, ...] = ()
    insert: tuple[str, ...] = ()
    retract: tuple[str, ...] = ()

    @classmethod
    def from_obj(cls, obj: Any, default_id: Any = None) -> "BatchRequest":
        """Validate one decoded JSON request line into a request.

        Raises :class:`~repro.errors.ValidationError` on non-object
        lines, unknown fields, or malformed field types, so a typo in a
        request file fails that request loudly instead of being ignored.
        """
        if not isinstance(obj, dict):
            raise ValidationError(f"batch request must be a JSON object, got {type(obj).__name__}")
        unknown = sorted(set(obj) - _REQUEST_FIELDS)
        if unknown:
            raise ValidationError(
                f"unknown batch request field(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(_REQUEST_FIELDS))}"
            )
        schema = obj.get("schema")
        if schema is not None and schema != REQUEST_SCHEMA:
            raise ValidationError(f"request schema {schema!r} is not {REQUEST_SCHEMA!r}")
        def atom_list(field: str) -> tuple[str, ...]:
            value = obj.get(field, ())
            if isinstance(value, str) or not isinstance(value, (list, tuple)):
                raise ValidationError(f"{field!r} must be a list of ground atom strings")
            return tuple(str(a) for a in value)

        atoms = atom_list("atoms")
        seed = obj.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ValidationError("'seed' must be an integer")
        return cls(
            id=obj.get("id", default_id),
            semantics=obj.get("semantics", "tie_breaking"),
            grounding=obj.get("grounding"),
            policy=obj.get("policy"),
            seed=seed,
            atoms=atoms,
            insert=atom_list("insert"),
            retract=atom_list("retract"),
        )

    def to_obj(self) -> dict[str, Any]:
        """The JSON-ready ``repro-batchreq/1`` object of this request."""
        obj: dict[str, Any] = {"id": self.id, "semantics": self.semantics}
        if self.grounding is not None:
            obj["grounding"] = self.grounding
        if self.policy is not None:
            obj["policy"] = self.policy
        if self.seed is not None:
            obj["seed"] = self.seed
        if self.atoms:
            obj["atoms"] = list(self.atoms)
        if self.insert:
            obj["insert"] = list(self.insert)
        if self.retract:
            obj["retract"] = list(self.retract)
        return obj

    @property
    def has_updates(self) -> bool:
        """True iff this request streams facts into the engine."""
        return bool(self.insert or self.retract)

    def resolve_policy(self) -> Any | None:
        """The tie policy object this request asks for, or ``None``.

        Raises :class:`~repro.errors.ValidationError` for unknown policy
        names or a ``seed`` on a non-random policy.
        """
        if self.policy is None:
            return RandomChoice(self.seed) if self.seed is not None else None
        factory = _POLICIES.get(self.policy)
        if factory is None:
            raise ValidationError(
                f"unknown policy {self.policy!r}; available: {', '.join(sorted(_POLICIES))}"
            )
        if factory is RandomChoice:
            return RandomChoice(self.seed)
        if self.seed is not None:
            raise ValidationError(f"policy {self.policy!r} does not take a seed")
        return factory()


def read_requests(source: str | Path | Iterable[str]) -> list[BatchRequest | ValidationError]:
    """Parse a JSONL request stream, one entry per non-blank line.

    ``source`` is a path or an iterable of lines.  Malformed lines are
    returned *in place* as :class:`~repro.errors.ValidationError` values
    (tagged with their 1-based line number, and carrying the line's
    ``id`` on ``request_id`` when one could be read) rather than raised,
    so one bad line fails one request, not the batch.
    """

    def failure(message: str, request_id: Any = None) -> ValidationError:
        error = ValidationError(message)
        error.request_id = request_id
        return error

    lines = Path(source).read_text().splitlines() if isinstance(source, (str, Path)) else source
    out: list[BatchRequest | ValidationError] = []
    index = 0
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            out.append(failure(f"line {lineno}: invalid JSON: {error}"))
            index += 1
            continue
        try:
            out.append(BatchRequest.from_obj(obj, default_id=index))
        except ValidationError as error:
            rid = obj.get("id") if isinstance(obj, dict) else None
            out.append(failure(f"line {lineno}: {error}", rid))
        index += 1
    return out


def solve_one(engine: Engine, request: BatchRequest) -> dict[str, Any]:
    """Answer one request on a warm engine (wire schema ``repro-batch/1``).

    Returns the JSON-ready result object: ``{"ok": true, ...}`` with
    either per-atom ``values`` (when the request listed atoms) or the
    full ``repro-solution/1`` object; or ``{"ok": false, "error": ...}``
    when the request fails.  Library errors never propagate — a batch is
    fault-isolated per request.
    """
    try:
        options: dict[str, Any] = {}
        if request.grounding is not None:
            options["grounding"] = request.grounding
        policy = request.resolve_policy()
        if policy is not None:
            options["policy"] = policy
        # Parse query atoms first: a malformed atom must fail the request
        # before the (potentially expensive) solve, not after it.
        parsed = [parse_atom(a) for a in request.atoms]
        updates: dict[str, Any] | None = None
        if request.has_updates:
            # Parse both fact lists before applying either: a malformed
            # insert must not leave the retractions half-applied.
            to_retract = [parse_atom(a) for a in request.retract]
            to_insert = [parse_atom(a) for a in request.insert]
            retracted = engine.retract_facts(*to_retract)
            inserted = engine.insert_facts(*to_insert)
            updates = {
                "inserted": [str(a) for a in inserted],
                "retracted": [str(a) for a in retracted],
            }
        solution = engine.solve(request.semantics, **options)
        result: dict[str, Any] = {
            "schema": BATCH_SCHEMA,
            "id": request.id,
            "ok": True,
            "semantics": solution.semantics,
            "found": solution.found,
            "total": solution.total,
        }
        # Solve-phase accounting for batch summaries: total solve time
        # plus the kernel's per-phase breakdown when the semantics
        # records one.  (A request served from the engine's solution
        # cache reports the timings of the solve that populated it.)
        timings = {
            key: solution.timings[key]
            for key in ("solve_s", "close_s", "unfounded_s", "tie_select_s", "tie_apply_s")
            if key in solution.timings
        }
        if timings:
            result["timings"] = timings
        if updates is not None:
            result["updates"] = updates
        if parsed:
            result["values"] = {str(a): solution.value(a) for a in parsed}
        else:
            result["solution"] = solution_to_obj(solution)
        return result
    except ReproError as error:
        return {"schema": BATCH_SCHEMA, "id": request.id, "ok": False, "error": str(error)}


# ---------------------------------------------------------------------------
# Worker-process plumbing.  One engine per worker process, loaded once by
# the pool initializer; requests travel as plain JSON-ready dicts.
# ---------------------------------------------------------------------------

_WORKER_ENGINE: Engine | None = None


def _worker_init(artifact_path: str) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = Engine.from_artifact(artifact_path)


def _worker_solve(obj: dict[str, Any]) -> dict[str, Any]:
    assert _WORKER_ENGINE is not None, "worker used before its initializer ran"
    try:
        request = BatchRequest.from_obj(obj)
    except ValidationError as error:
        return {"schema": BATCH_SCHEMA, "id": obj.get("id"), "ok": False, "error": str(error)}
    return solve_one(_WORKER_ENGINE, request)


class BatchSolver:
    """Shard batches of requests over one compiled ground artifact.

    Construction fixes the (program, database, grounding) triple — either
    from an existing ``artifact`` path or by compiling ``program`` /
    ``database`` once — and the worker count:

    * ``artifact`` — path of a ``repro-ground/1`` artifact; if it exists
      it is the source of truth (``program`` may be omitted; when given,
      its fingerprint must match the artifact's — serving a stale
      artifact for an edited program fails loudly instead of answering
      for the wrong program), and if it does not exist but ``program``
      is given, the compiled grounding is saved there for the next
      process;
    * ``workers=0`` — answer inline on one warm engine in this process;
    * ``workers=N`` — fork ``N`` workers, each warm-starting from the
      artifact once; requests are sharded across them (no engine is
      loaded in the parent).

    Use as a context manager (or call :meth:`close`) to reclaim the
    worker pool and any temporary artifact.
    """

    def __init__(
        self,
        artifact: str | Path | None = None,
        *,
        program: Program | str | None = None,
        database: Database | str | None = None,
        grounding: GroundingMode | None = None,
        workers: int = 0,
    ) -> None:
        if workers < 0:
            raise ValidationError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self._pool: Pool | None = None
        self._engine: Engine | None = None
        self._owns_artifact = False
        path = Path(artifact) if artifact is not None else None
        if path is not None and path.exists():
            # Verify the container up front: a corrupt artifact must fail
            # here, not inside a pool initializer (a raising initializer
            # puts multiprocessing into an endless worker-respawn loop).
            read_artifact_header(path)
            if program is not None:
                self._check_artifact_matches(path, program, database)
            self._artifact_path = path  # inline engine loads lazily (see .engine)
        elif program is not None:
            engine = Engine(program, database, grounding=grounding)
            if path is None:
                fd, tmp = tempfile.mkstemp(prefix="repro-ground-", suffix=".repro-ground")
                os.close(fd)
                path = Path(tmp)
                self._owns_artifact = True
            engine.save_artifact(path, grounding)
            self._artifact_path = path
            self._engine = engine
        else:
            raise ValidationError("BatchSolver needs an existing artifact or a program")

    @staticmethod
    def _check_artifact_matches(
        path: Path, program: Program | str, database: Database | str | None
    ) -> None:
        """Refuse to serve an artifact compiled from different inputs."""
        if isinstance(program, str):
            program = parse_program(program)
        if isinstance(database, str):
            database = parse_database(database)
        expected = program_fingerprint(program, database if database is not None else Database())
        stored = read_artifact_header(path).get("program_fingerprint")
        if stored != expected:
            raise ValidationError(
                f"artifact {path} was compiled from a different (program, database) "
                "pair; delete it to recompile, or serve from the artifact alone"
            )

    @property
    def artifact_path(self) -> Path:
        """The artifact every worker (and the inline engine) serves from."""
        return self._artifact_path

    @property
    def engine(self) -> Engine:
        """The warm inline engine (the ``workers=0`` serving path).

        Loaded from the artifact on first use, so a pool-only solver
        (``workers=N``) never materializes a ground program in the
        parent process.
        """
        if self._engine is None:
            self._engine = Engine.from_artifact(self._artifact_path)
        return self._engine

    def _ensure_pool(self) -> Pool:
        if self._pool is None:
            # Late import keeps multiprocessing out of the common inline path.
            from multiprocessing import get_context

            self._pool = get_context().Pool(
                processes=self.workers,
                initializer=_worker_init,
                initargs=(str(self._artifact_path),),
            )
        return self._pool

    def solve_many(
        self, requests: Iterable[BatchRequest | dict[str, Any] | ValidationError]
    ) -> list[dict[str, Any]]:
        """Answer a batch, preserving request order.

        ``requests`` may mix :class:`BatchRequest` objects, raw JSON-ready
        dicts, and the :class:`~repro.errors.ValidationError` placeholders
        produced by :func:`read_requests` (which become ``"ok": false``
        results, echoing the request ``id`` whenever one was readable).
        With workers configured, valid requests are sharded across the
        process pool; errors are answered locally.  A batch carrying
        ``insert``/``retract`` updates is answered inline in request
        order instead — worker engines live in separate processes and
        would neither share nor order the streamed state.
        """
        results: list[dict[str, Any] | None] = []
        solvable: list[tuple[int, BatchRequest]] = []
        for i, req in enumerate(requests):
            if isinstance(req, BatchRequest):
                solvable.append((i, req))
                results.append(None)
                continue
            if isinstance(req, ValidationError):
                rid = getattr(req, "request_id", None)
                error = req
            else:
                rid = req.get("id") if isinstance(req, dict) else None
                try:
                    solvable.append((i, BatchRequest.from_obj(req, default_id=i)))
                    results.append(None)
                    continue
                except ValidationError as exc:
                    error = exc
            results.append({"schema": BATCH_SCHEMA, "id": rid, "ok": False, "error": str(error)})

        stateful = any(r.has_updates for _, r in solvable)
        if self.workers and solvable and not stateful:
            pool = self._ensure_pool()
            chunksize = max(1, len(solvable) // (self.workers * 4))
            answers = pool.map(_worker_solve, [r.to_obj() for _, r in solvable], chunksize)
            for (i, _), answer in zip(solvable, answers):
                results[i] = answer
        else:
            for i, req in solvable:
                results[i] = solve_one(self.engine, req)
        return [r for r in results if r is not None]

    def solve_file(self, source: str | Path | Iterable[str]) -> list[dict[str, Any]]:
        """Answer a JSONL request stream (see :func:`read_requests`)."""
        return self.solve_many(read_requests(source))

    def close(self) -> None:
        """Terminate the worker pool and delete a temporary artifact."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._owns_artifact:
            try:
                self._artifact_path.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
            self._owns_artifact = False

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"BatchSolver(artifact={str(self._artifact_path)!r}, workers={self.workers})"
