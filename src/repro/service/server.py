"""The concurrent serving tier: an asyncio TCP/JSONL server.

`repro serve` answers one batch and exits; this module is the long-lived
front-end over the same warm-start machinery.  One
:class:`~repro.service.batch.BatchSolver` (and its worker pool, with
``workers=N``) is shared by every connection; requests and results use
the exact ``repro-batchreq/1`` / ``repro-batch/1`` line schemas the
offline batch path uses, so a client can replay a batch file against a
live server unchanged.

Three concerns live here, layered over :mod:`repro.service.batch` and
:mod:`repro.service.sessions`:

* **Connection handling** — newline-delimited JSON over TCP.  Requests
  on one connection run concurrently (pipelining); responses carry the
  request ``id`` and may arrive out of order.
* **Admission control** — at most ``max_pending`` requests may be
  in flight server-wide.  Excess requests are not queued without bound:
  they are **shed** immediately with a structured
  ``"error_kind": "overloaded"`` result (the JSONL analogue of HTTP
  429), and every admitted result's ``timings`` records the queue depth
  at admission plus the wait before its solve started, so clients can
  see pressure building *before* sheds begin.
* **Sessions** — a request carrying ``"session": name`` runs on that
  session's private engine under the
  :class:`~repro.service.sessions.SessionManager` serialized apply-loop;
  this is the only way to use ``insert`` / ``retract`` on the server
  (the shared serving engines are read-only).  Idle sessions expire and
  snapshot their compiled state back to the artifact cache.

Dispatch by request shape:

===================  ==================================================
request              execution
===================  ==================================================
stateless, workers=0 serialized on the warm inline engine (one solve
                     thread — the engine is not thread-safe)
stateless, workers=N fanned out to the worker pool via ``apply_async``
with ``session``     serialized per session, parallel across sessions
updates, no session  rejected (``validation`` error)
===================  ==================================================

Timeouts are layered: pool workers arm a hard ``SIGALRM`` deadline
around each solve (see :func:`repro.service.batch.solve_one`), while the
inline and session paths — whose solves run on executor threads, where
signals cannot be delivered — get a soft deadline: the dispatcher stops
waiting and answers with a structured ``timeout`` result.  A soft-timed-
out session operation still runs to completion under its session lock,
so a session's engine is never torn mid-update.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from time import perf_counter
from typing import Any, TextIO

from repro.api.engine import Engine
from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode
from repro.datalog.program import Program
from repro.errors import ReproError, SolveTimeoutError, ValidationError
from repro.io.artifact import ArtifactCache
from repro.io.json_io import result_to_json_chunks
from repro.service.batch import (
    BATCH_SCHEMA,
    BatchRequest,
    BatchSolver,
    failure_result,
    solve_one,
)
from repro.service.sessions import Session, SessionManager

__all__ = ["ReproServer", "run_server"]

#: Stream-reader line cap: a request inserting many facts is one long
#: JSON line, so the default 64 KiB limit is far too small.
_READER_LIMIT = 8 * 2**20


class ReproServer:
    """Asyncio TCP/JSONL server over one warm :class:`BatchSolver`.

    Parameters mirror :class:`~repro.service.batch.BatchSolver` (an
    existing ``artifact`` *or* ``program`` + ``database`` text to
    compile), plus the serving knobs:

    ``host`` / ``port``
        Bind address; port ``0`` binds an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    ``workers``
        ``0`` answers stateless requests serialized on one warm inline
        engine; ``N >= 1`` fans them out to a pool of ``N`` warm worker
        processes.
    ``max_pending``
        Admission bound: requests admitted but unfinished, server-wide.
        Above it, requests are shed with ``error_kind: "overloaded"``.
    ``timeout_s``
        Per-request solve deadline (hard in pool workers, soft on the
        inline/session paths).
    ``session_ttl_s`` / ``max_sessions`` / ``session_cache``
        Session expiry, table bound, and the artifact cache expired
        sessions snapshot into (see :mod:`repro.service.sessions`).

    Use :meth:`start` / :meth:`drain` directly, or as an async context
    manager::

        async with ReproServer("game.repro-ground") as server:
            host, port = server.address
            ...
    """

    def __init__(
        self,
        artifact: str | Path | None = None,
        *,
        program: Program | str | None = None,
        database: Database | str | None = None,
        grounding: GroundingMode | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        max_pending: int = 256,
        timeout_s: float | None = None,
        session_ttl_s: float = 600.0,
        max_sessions: int = 64,
        session_cache: ArtifactCache | str | Path | None = None,
        session_threads: int = 4,
        drain_timeout_s: float = 30.0,
        backend: str | None = None,
    ) -> None:
        if max_pending < 1:
            raise ValidationError(f"max_pending must be >= 1, got {max_pending}")
        self.solver = BatchSolver(
            artifact,
            program=program,
            database=database,
            grounding=grounding,
            workers=workers,
            timeout_s=timeout_s,
            backend=backend,
        )
        self.host = host
        self.port = port
        self.workers = workers
        self.max_pending = max_pending
        self.timeout_s = timeout_s
        self.drain_timeout_s = drain_timeout_s
        if session_cache is not None and not isinstance(session_cache, ArtifactCache):
            session_cache = ArtifactCache(session_cache)
        self.sessions = SessionManager(
            lambda: Engine.from_artifact(self.solver.artifact_path, backend=backend),
            ttl_s=session_ttl_s,
            max_sessions=max_sessions,
            cache=session_cache,
        )
        # One solve thread for the shared inline engine (it is not
        # thread-safe); a small pool for session engines, which are
        # private per session and already serialized by the session lock.
        self._inline_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-inline"
        )
        self._session_executor = ThreadPoolExecutor(
            max_workers=max(1, session_threads), thread_name_prefix="repro-session"
        )
        self._server: asyncio.AbstractServer | None = None
        self._reaper: asyncio.Task[None] | None = None
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._draining = False
        self.address: tuple[str, int] | None = None
        self.connections = 0
        self.served = 0
        self.failed = 0
        self.shed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        With ``workers=N`` the pool is forked *before* the listener (and
        its executor threads) exists — fork-before-threads hygiene — so
        startup, not the first request, pays the workers' artifact loads.
        """
        if self.workers:
            self.solver.warm_pool()
        else:
            self.solver.engine  # warm the inline engine before traffic
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_READER_LIMIT
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._reaper = asyncio.create_task(self._reap_idle_sessions())
        return self.address

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish in-flight, snapshot.

        New requests (and new connections) are shed with
        ``error_kind: "draining"``; requests already admitted get up to
        ``drain_timeout_s`` seconds to finish; live sessions snapshot to
        the artifact cache on the way down.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = perf_counter() + self.drain_timeout_s
        while self._inflight and perf_counter() < deadline:
            await asyncio.sleep(0.02)
        # Hang up the remaining connections (readline sees EOF) and wait
        # for their handler tasks, so nothing is mid-write when the
        # executors and pool go away — and no task outlives the loop.
        for writer in list(self._conn_writers):
            try:
                writer.close()
            except (ConnectionResetError, OSError):  # pragma: no cover - racing peer
                pass
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        self.sessions.close_all(snapshot=True)
        self._inline_executor.shutdown(wait=False)
        self._session_executor.shutdown(wait=False)
        self.solver.close()

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.drain()

    async def _reap_idle_sessions(self) -> None:
        interval = max(0.05, min(self.sessions.ttl_s / 4.0, 30.0))
        while True:
            await asyncio.sleep(interval)
            self.sessions.expire_idle()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task[None]] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(
                        writer,
                        write_lock,
                        failure_result(
                            None,
                            ValidationError(f"request line exceeds {_READER_LIMIT} bytes"),
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Pipelining: each line is served on its own task, so a
                # slow solve does not head-of-line block the connection.
                task = asyncio.create_task(self._serve_line(line, writer, write_lock))
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self._conn_writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            if task is not None:
                self._conn_tasks.discard(task)
            self.connections -= 1

    async def _serve_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        result = await self.handle_line(line)
        await self._write(writer, write_lock, result)

    @staticmethod
    async def _write(
        writer: asyncio.StreamWriter, write_lock: asyncio.Lock, result: dict[str, Any]
    ) -> None:
        # Inline- and session-served results carry the live Solution;
        # result_to_json_chunks decodes it from kernel ids to wire bytes
        # here, at write time (byte-identical to json.dumps of the
        # materialized dict).  Pool results are already plain dicts.
        data = "".join(result_to_json_chunks(result, sort_keys=True)).encode("utf-8") + b"\n"
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def handle_line(self, line: bytes | str) -> dict[str, Any]:
        """Serve one request line; always returns a ``repro-batch/1`` dict.

        Public so tests and in-process clients can exercise the full
        admission + dispatch path without a socket.
        """
        t_recv = perf_counter()
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            self.failed += 1
            return failure_result(None, ValidationError(f"invalid JSON: {error}"))
        if isinstance(obj, dict) and "op" in obj:
            return self._control(obj)

        request_id = obj.get("id") if isinstance(obj, dict) else None
        if self._draining:
            return self._shed(request_id, "draining", "server is draining; reconnect later")
        if self._inflight >= self.max_pending:
            return self._shed(
                request_id,
                "overloaded",
                f"admission queue full ({self._inflight}/{self.max_pending} in flight); "
                "retry with backoff",
            )

        self._inflight += 1
        depth = self._inflight
        try:
            result, started = await self._dispatch(obj, request_id)
        finally:
            self._inflight -= 1

        now = perf_counter()
        timings = result.setdefault("timings", {})
        if started is not None:
            timings["queue_wait_s"] = max(0.0, started - t_recv)
        elif "worker_s" in timings:
            # Pool path: worker clocks are not comparable across
            # processes, so the wait is everything the worker did not do.
            timings["queue_wait_s"] = max(0.0, (now - t_recv) - timings["worker_s"])
        else:
            timings.setdefault("queue_wait_s", now - t_recv)
        timings["queue_depth"] = depth
        timings["server_s"] = now - t_recv
        result["server"] = {
            "queue_depth": depth,
            "max_pending": self.max_pending,
            "workers": self.workers,
        }
        if result.get("ok"):
            self.served += 1
        else:
            self.failed += 1
        return result

    def _shed(self, request_id: Any, kind: str, message: str) -> dict[str, Any]:
        """A 429-style structured shed result (never raises)."""
        self.shed += 1
        return {
            "schema": BATCH_SCHEMA,
            "id": request_id,
            "ok": False,
            "error": message,
            "error_kind": kind,
            "timings": {"queue_wait_s": 0.0, "queue_depth": self._inflight},
            "server": {
                "queue_depth": self._inflight,
                "max_pending": self.max_pending,
                "workers": self.workers,
            },
        }

    async def _dispatch(
        self, obj: Any, request_id: Any
    ) -> tuple[dict[str, Any], float | None]:
        """Route one admitted request; returns ``(result, solve_start)``.

        ``solve_start`` is the ``perf_counter`` instant the solve left
        the queue (``None`` when the path cannot observe it, e.g. a
        timed-out wait or the worker pool, which reports ``worker_s``
        instead).
        """
        try:
            request = BatchRequest.from_obj(obj)
        except ValidationError as error:
            return failure_result(request_id, error), None
        try:
            if request.session is not None:
                return await self._solve_session(request)
            if request.has_updates:
                raise ValidationError(
                    "stateful insert/retract requires a 'session' field on the "
                    "server — the shared serving engines are read-only"
                )
            if self.workers:
                return await self._solve_pooled(request), None
            return await self._solve_inline(request)
        except ReproError as error:
            return failure_result(request.id, error), None

    # -- stateless, workers=0 ------------------------------------------

    async def _solve_inline(self, request: BatchRequest) -> tuple[dict[str, Any], float | None]:
        loop = asyncio.get_running_loop()
        started: list[float] = []

        def job() -> dict[str, Any]:
            started.append(perf_counter())
            return solve_one(self.solver.engine, request, materialize=False)

        future = loop.run_in_executor(self._inline_executor, job)
        result = await self._supervised(future, request.id)
        return result, (started[0] if started else None)

    # -- stateless, workers=N ------------------------------------------

    async def _solve_pooled(self, request: BatchRequest) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        future: asyncio.Future[dict[str, Any]] = loop.create_future()

        def done(result: dict[str, Any]) -> None:
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(result)
            )

        def failed(error: BaseException) -> None:
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_exception(error)
            )

        self.solver.apply_async(request, callback=done, error_callback=failed)
        try:
            return await future
        except ReproError:
            raise
        except BaseException as error:  # worker crash / pool teardown
            raise ReproError(f"worker dispatch failed: {error}") from error

    # -- sessions -------------------------------------------------------

    async def _solve_session(self, request: BatchRequest) -> tuple[dict[str, Any], float | None]:
        loop = asyncio.get_running_loop()
        started: list[float] = []
        name = request.session
        assert name is not None

        async def work(session: Session) -> dict[str, Any]:
            seq = session.seq

            def job() -> dict[str, Any]:
                started.append(perf_counter())
                # No hard deadline here: the apply section must never be
                # torn.  The dispatcher's soft deadline answers the
                # client; the operation itself runs to completion.
                return solve_one(session.engine, request, materialize=False)

            result = await loop.run_in_executor(self._session_executor, job)
            result["session"] = {
                "name": session.name,
                "seq": seq,
                "updates": session.engine.update_calls,
            }
            return result

        future = asyncio.ensure_future(self.sessions.run(name, work))
        result = await self._supervised(future, request.id)
        return result, (started[0] if started else None)

    async def _supervised(
        self, future: "asyncio.Future[dict[str, Any]]", request_id: Any
    ) -> dict[str, Any]:
        """Await a solve under the soft per-request deadline.

        On timeout the underlying work is *not* cancelled (a session
        apply must finish; the inline engine thread cannot be
        interrupted anyway) — the client just gets its structured
        ``timeout`` answer now instead of never.
        """
        if self.timeout_s is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), self.timeout_s)
        except asyncio.TimeoutError:
            # Swallow the orphaned result/exception when it eventually lands.
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            return failure_result(request_id, SolveTimeoutError(self.timeout_s))

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def _control(self, obj: dict[str, Any]) -> dict[str, Any]:
        op = obj.get("op")
        if op == "ping":
            return {"schema": BATCH_SCHEMA, "op": "ping", "ok": True, "id": obj.get("id")}
        if op == "stats":
            return {
                "schema": BATCH_SCHEMA,
                "op": "stats",
                "ok": True,
                "id": obj.get("id"),
                "stats": self.stats(),
            }
        return failure_result(
            obj.get("id"), ValidationError(f"unknown control op {op!r} (try ping, stats)")
        )

    def stats(self) -> dict[str, Any]:
        return {
            "served": self.served,
            "failed": self.failed,
            "shed": self.shed,
            "inflight": self._inflight,
            "connections": self.connections,
            "workers": self.workers,
            "max_pending": self.max_pending,
            "draining": self._draining,
            "sessions": self.sessions.stats(),
        }


async def run_server(server: ReproServer, *, ready_stream: TextIO | None = None) -> None:
    """Start ``server`` and serve until SIGTERM/SIGINT, then drain.

    Prints a parseable ``listening on HOST:PORT`` line to
    ``ready_stream`` once the socket is bound (the CI smoke test and any
    supervisor watch for it), and a drain line on the way down.
    """
    import signal as _signal

    await server.start()
    assert server.address is not None
    host, port = server.address
    if ready_stream is not None:
        print(
            f"repro server listening on {host}:{port} "
            f"(workers={server.workers}, max_pending={server.max_pending})",
            file=ready_stream,
            flush=True,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    hooked: list[Any] = []
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            pass
    try:
        await stop.wait()
    finally:
        for sig in hooked:
            loop.remove_signal_handler(sig)
        if ready_stream is not None:
            print("repro server draining ...", file=ready_stream, flush=True)
        await server.drain()
