"""repro.service — the warm-start serving layer.

Compile once, answer many: a :class:`BatchSolver` shards batches of solve
requests for *one* compiled ground artifact across a pool of worker
processes, each of which warm-starts via
:meth:`repro.api.Engine.from_artifact` and never re-parses or re-grounds.
The CLI surface is ``repro serve --batch requests.jsonl``; the wire
formats are ``repro-batchreq/1`` (request lines) and ``repro-batch/1``
(result lines) — see ``docs/serving.md`` for the tour.
"""

from repro.service.batch import (
    BATCH_SCHEMA,
    REQUEST_SCHEMA,
    BatchRequest,
    BatchSolver,
    read_requests,
    solve_one,
)

__all__ = [
    "BATCH_SCHEMA",
    "REQUEST_SCHEMA",
    "BatchRequest",
    "BatchSolver",
    "read_requests",
    "solve_one",
]
