"""repro.service — the warm-start serving layer.

Compile once, answer many: a :class:`BatchSolver` shards batches of solve
requests for *one* compiled ground artifact across a pool of worker
processes, each of which warm-starts via
:meth:`repro.api.Engine.from_artifact` and never re-parses or re-grounds.
On top of it, :class:`ReproServer` is the long-lived concurrent tier: an
asyncio TCP/JSONL front-end with admission control (bounded in-flight,
structured shed responses) and a :class:`SessionManager` that serializes
stateful insert/retract streams per session while independent sessions
proceed in parallel.

The CLI surfaces are ``repro serve --batch requests.jsonl`` (one batch,
then exit) and ``repro server`` (serve until SIGTERM); the wire formats
are ``repro-batchreq/1`` (request lines) and ``repro-batch/1`` (result
lines) — see ``docs/serving.md`` for the tour.
"""

from repro.service.batch import (
    BATCH_SCHEMA,
    REQUEST_SCHEMA,
    BatchRequest,
    BatchSolver,
    error_kind_of,
    failure_result,
    read_requests,
    solve_one,
)
from repro.service.server import ReproServer, run_server
from repro.service.sessions import Session, SessionManager

__all__ = [
    "BATCH_SCHEMA",
    "REQUEST_SCHEMA",
    "BatchRequest",
    "BatchSolver",
    "ReproServer",
    "Session",
    "SessionManager",
    "error_kind_of",
    "failure_result",
    "read_requests",
    "run_server",
    "solve_one",
]
