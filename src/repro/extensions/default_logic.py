"""Default logic and extension finding — the [PS] connection of §3.

The paper notes that "a version of the tie-breaking semantics was proposed
in [PS] as an extension-finding mechanism in the context of default
logic".  This module makes the connection executable for the standard
fragment whose extensions coincide with stable models:

a *default* ``(α₁, ..., αₙ : ¬β₁, ..., ¬βₘ / γ)`` — "if the prerequisites
α hold and each β can consistently be assumed false, conclude γ" —
translates to the Datalog¬ rule ``γ :- α₁, ..., αₙ, ¬β₁, ..., ¬βₘ``, and
the extensions of the theory are exactly the stable models of the program
plus the theory's facts (Gelfond-Lifschitz / Marek-Truszczyński).

:func:`find_extension_tie_breaking` is the [PS] mechanism itself: run the
well-founded tie-breaking interpreter; by Lemma 3 a total run *is* an
extension, found in polynomial time — whereas extension existence is
NP-hard in general (§2's stable-model hardness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.errors import ValidationError
from repro.semantics.choices import ChoicePolicy
from repro.api.engine import enumerate_solutions, solve

__all__ = [
    "Default",
    "DefaultTheory",
    "theory_to_program",
    "extensions",
    "find_extension_tie_breaking",
]


@dataclass(frozen=True)
class Default:
    """One default rule ``(prerequisites : ¬justifications / conclusion)``.

    All components are propositional symbols.  The justification list holds
    the atoms that must be *consistently assumable as false* (the normal
    default ``: ¬β / ¬β`` pattern is expressed via a conclusion symbol for
    the negation, as usual in the atomic fragment).

    >>> str(Default(("bird",), ("abnormal",), "flies"))
    '(bird : ¬abnormal / flies)'
    """

    prerequisites: tuple[str, ...]
    justifications: tuple[str, ...]
    conclusion: str

    def __post_init__(self) -> None:
        if not self.conclusion:
            raise ValidationError("a default needs a conclusion")

    def __str__(self) -> str:
        pre = ", ".join(self.prerequisites)
        just = ", ".join(f"¬{j}" for j in self.justifications)
        return f"({pre} : {just} / {self.conclusion})"


@dataclass(frozen=True)
class DefaultTheory:
    """A propositional default theory: hard facts plus defaults."""

    facts: frozenset[str]
    defaults: tuple[Default, ...]

    def symbols(self) -> frozenset[str]:
        """Every propositional symbol mentioned by the theory."""
        names = set(self.facts)
        for d in self.defaults:
            names.add(d.conclusion)
            names.update(d.prerequisites)
            names.update(d.justifications)
        return frozenset(names)


def theory_to_program(theory: DefaultTheory) -> tuple[Program, Database]:
    """Translate to Datalog¬: one rule per default, facts as Δ."""
    rules = []
    for d in theory.defaults:
        body = tuple(
            [Literal(Atom(p), True) for p in d.prerequisites]
            + [Literal(Atom(j), False) for j in d.justifications]
        )
        rules.append(Rule(Atom(d.conclusion), body))
    # Facts that conclude nothing still need to exist as predicates: they
    # enter through Δ, which the Database carries.
    db = Database()
    for fact in sorted(theory.facts):
        db.add(fact)
    return Program(rules), db


def extensions(theory: DefaultTheory, *, limit: int | None = None) -> Iterator[frozenset[str]]:
    """All extensions of the theory, as sets of true symbols.

    Exact (stable-model enumeration over the translation); worst-case
    exponential, as extension existence is NP-hard.

    >>> nixon = DefaultTheory(
    ...     frozenset({"quaker", "republican"}),
    ...     (
    ...         Default(("quaker",), ("hawk",), "pacifist"),
    ...         Default(("republican",), ("pacifist",), "hawk"),
    ...     ),
    ... )
    >>> sorted(sorted(e - {"quaker", "republican"}) for e in extensions(nixon))
    [['hawk'], ['pacifist']]
    """
    program, db = theory_to_program(theory)
    for solution in enumerate_solutions("stable", program, db, grounding="full", limit=limit):
        yield frozenset(a.predicate for a in solution.true_atoms)


def find_extension_tie_breaking(
    theory: DefaultTheory,
    *,
    policy: Optional[ChoicePolicy] = None,
) -> Optional[frozenset[str]]:
    """The [PS] mechanism: find one extension by breaking ties.

    Runs the well-founded tie-breaking interpreter on the translation; a
    total run is a stable model (Lemma 3), i.e. an extension — obtained in
    polynomial time.  Returns ``None`` when the interpreter stalls (an odd
    component), which can happen even for theories that *do* have
    extensions, mirroring the incompleteness discussed after Lemma 3.
    """
    program, db = theory_to_program(theory)
    solution = solve("tie_breaking", program, db, policy=policy, grounding="full")
    if not solution.total:
        return None
    return frozenset(a.predicate for a in solution.true_atoms)
