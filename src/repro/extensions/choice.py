"""The nondeterministic choice construct, compiled to ties ([KN], [SZ], §6).

§1 cites Krishnamurthy-Naqvi's ``choice`` and Saccà-Zaniolo's stable-model
account of nondeterminism; §6 argues the tie-breaking interpreter is a
natural executor for such constructs.  This module provides the two
standard idioms as program fragments:

* :func:`subset_choice` — pick any subset of the candidates (one
  independent tie per element; 2^n stable models);
* :func:`one_of` — pick **exactly one** candidate: the mutual-exclusion
  encoding ``chosen ← candidate, ¬rejected`` /
  ``rejected ← candidate, chosen', candidate ≠ chosen'``.  Inequality is
  not first-class in Datalog, so :func:`inequality_facts` materializes the
  ``neq`` EDB relation over the candidate universe.

For two candidates the ``one_of`` ground component is a single *tie* whose
Lemma-1 sides are exactly the two outcomes — tie-breaking literally
executes the choice; for three or more the component has odd cycles and
only stable-model search enumerates the n outcomes (tested).
"""

from __future__ import annotations

from typing import Iterable

from repro.datalog.atoms import atom, neg, pos
from repro.datalog.database import Database
from repro.datalog.rules import Rule, rule

__all__ = ["subset_choice", "one_of", "inequality_facts"]

NEQ = "neq"


def subset_choice(chosen: str, candidate: str, *, rejected: str | None = None) -> list[Rule]:
    """Rules choosing an arbitrary subset of ``candidate`` into ``chosen``.

    >>> for r in subset_choice("invited", "person"):
    ...     print(r)
    invited(X) :- person(X), ¬invited_out(X).
    invited_out(X) :- person(X), ¬invited(X).
    """
    out = rejected or f"{chosen}_out"
    return [
        rule(atom(chosen, "X"), pos(candidate, "X"), neg(out, "X")),
        rule(atom(out, "X"), pos(candidate, "X"), neg(chosen, "X")),
    ]


def one_of(chosen: str, candidate: str, *, rejected: str | None = None) -> list[Rule]:
    """Rules choosing **exactly one** ``candidate`` into ``chosen``.

    Requires the ``neq`` EDB relation over the candidates (see
    :func:`inequality_facts`).  Stable models correspond one-to-one with
    the candidates (given at least one candidate).

    >>> for r in one_of("leader", "member"):
    ...     print(r)
    leader(X) :- member(X), ¬leader_out(X).
    leader_out(X) :- member(X), leader(Y), neq(X, Y).
    """
    out = rejected or f"{chosen}_out"
    return [
        rule(atom(chosen, "X"), pos(candidate, "X"), neg(out, "X")),
        rule(atom(out, "X"), pos(candidate, "X"), pos(chosen, "Y"), pos(NEQ, "X", "Y")),
    ]


def inequality_facts(database: Database, universe: Iterable) -> None:
    """Materialize ``neq(a, b)`` for every pair of distinct universe values."""
    values = list(universe)
    for left in values:
        for right in values:
            if left != right:
                database.add(NEQ, left, right)
