"""Language-level extensions built on the tie-breaking machinery.

* :mod:`repro.extensions.default_logic` — default theories and the [PS]
  extension-finding mechanism (§3's citation, executable);
* :mod:`repro.extensions.choice` — the [KN]/[SZ] nondeterministic choice
  idioms (§1/§6), compiled to tie-shaped program fragments.
"""

from repro.extensions.choice import inequality_facts, one_of, subset_choice
from repro.extensions.default_logic import (
    Default,
    DefaultTheory,
    extensions,
    find_extension_tie_breaking,
    theory_to_program,
)

__all__ = [
    "Default",
    "DefaultTheory",
    "extensions",
    "find_extension_tie_breaking",
    "inequality_facts",
    "one_of",
    "subset_choice",
    "theory_to_program",
]
