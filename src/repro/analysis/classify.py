"""One-stop classification of a Datalog¬ program against the paper's taxonomy.

Orders the classes of §1-§4 from most to least restrictive:

    positive ⊂ stratified ⊂ call-consistent (= structurally total)
             ⊂ structurally nonuniformly total

with local stratification as a database-relative refinement and the
stratified class doubling as "structurally well-founded total" by
Theorem 5.  Useful for examples, the CLI, and for sanity-checking
workload generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from typing import TYPE_CHECKING

from repro.analysis.structural import OddCycle, structural_report
from repro.datalog.program import Program

if TYPE_CHECKING:  # import cycle: semantics.stratified uses analysis.program_graph
    from repro.semantics.stratified import Stratification

__all__ = ["ProgramClassification", "classify_program", "classification_table"]


@dataclass(frozen=True)
class ProgramClassification:
    """Structural facts about one program (database-independent)."""

    rule_count: int
    predicate_count: int
    is_propositional: bool
    is_positive: bool
    is_stratified: bool
    stratification: Optional["Stratification"]
    is_call_consistent: bool
    is_structurally_total: bool
    is_structurally_nonuniformly_total: bool
    odd_cycle: Optional[OddCycle]
    useless: frozenset[str]

    @property
    def tightest_class(self) -> str:
        """The most restrictive paper class the program belongs to."""
        if self.is_positive:
            return "positive"
        if self.is_stratified:
            return "stratified"
        if self.is_structurally_total:
            return "call-consistent"
        if self.is_structurally_nonuniformly_total:
            return "structurally nonuniformly total"
        return "not structurally total"

    def __str__(self) -> str:
        lines = [
            f"rules: {self.rule_count}, predicates: {self.predicate_count}"
            + (", propositional" if self.is_propositional else ""),
            f"class: {self.tightest_class}",
            f"stratified: {self.is_stratified}",
            f"call-consistent / structurally total: {self.is_structurally_total}",
            f"structurally nonuniformly total: {self.is_structurally_nonuniformly_total}",
        ]
        if self.useless:
            lines.append(f"useless predicates: {', '.join(sorted(self.useless))}")
        if self.odd_cycle is not None:
            lines.append(f"odd cycle: {self.odd_cycle}")
        return "\n".join(lines)


def classify_program(program: Program) -> ProgramClassification:
    """Compute the full classification of one program.

    >>> from repro.datalog.parser import parse_program
    >>> classify_program(parse_program("p :- not q. q :- not p.")).tightest_class
    'call-consistent'
    >>> classify_program(parse_program("p :- not p.")).tightest_class
    'not structurally total'
    """
    # Deferred import: repro.semantics.stratified itself depends on
    # repro.analysis.program_graph (cycle otherwise).
    from repro.semantics.stratified import stratification

    strat = stratification(program)
    report = structural_report(program)
    return ProgramClassification(
        rule_count=len(program),
        predicate_count=len(program.predicates),
        is_propositional=program.is_propositional,
        is_positive=program.is_positive,
        is_stratified=strat is not None,
        stratification=strat,
        is_call_consistent=report.structurally_total,
        is_structurally_total=report.structurally_total,
        is_structurally_nonuniformly_total=report.structurally_nonuniformly_total,
        odd_cycle=report.odd_cycle,
        useless=report.useless,
    )


def classification_table(programs: Mapping[str, Program]) -> str:
    """A fixed-width table classifying several programs (examples / CLI)."""
    header = f"{'program':<24} {'class':<34} {'strat':<6} {'cc':<4} {'snt':<4}"
    lines = [header, "-" * len(header)]
    for name, program in programs.items():
        c = classify_program(program)
        lines.append(
            f"{name:<24} {c.tightest_class:<34} "
            f"{str(c.is_stratified):<6} {str(c.is_call_consistent):<4} "
            f"{str(c.is_structurally_nonuniformly_total):<4}"
        )
    return "\n".join(lines)
