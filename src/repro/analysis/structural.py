"""Structural totality — Theorems 2, 3, and the checks of Theorem 4.

* Theorem 2: Π is **structurally total** (every alphabetic variant has a
  fixpoint on every database) iff G(Π) has no cycle with an odd number of
  negative edges — i.e. iff Π is *call-consistent* in Kunen's sense
  (*semi-strict* in Gire's).
* Theorem 3: Π is **structurally nonuniformly total** (IDBs start empty)
  iff G(Π′) has no odd cycle, where Π′ is the reduced program with the
  useless predicates removed.
* Theorem 4: both checks run in linear time (this module); the uniform one
  is in NC while the nonuniform one is P-complete (the reduction lives in
  :mod:`repro.constructions.theorem4`).

When a check fails, a witness odd cycle over predicate names is available
— exactly the input the Theorem 2/3 constructions need to build an
alphabetic variant with no fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.program_graph import program_graph
from repro.analysis.useless import reduced_program, useless_predicates
from repro.datalog.program import Program
from repro.graphs.odd_cycles import find_odd_cycle

__all__ = [
    "OddCycle",
    "odd_cycle_in_program_graph",
    "is_call_consistent",
    "is_semi_strict",
    "is_structurally_total",
    "is_structurally_nonuniformly_total",
    "StructuralReport",
    "structural_report",
]


@dataclass(frozen=True)
class OddCycle:
    """A simple cycle in G(Π) with an odd number of negative edges.

    ``arcs[i]`` is ``(P_i, P_{i+1}, positive)`` — the paper's cycle
    C = (P_0, ..., P_k), with indices mod k+1.
    """

    arcs: tuple[tuple[str, str, bool], ...]

    @property
    def predicates(self) -> tuple[str, ...]:
        """P_0, ..., P_k in traversal order."""
        return tuple(source for source, _, _ in self.arcs)

    @property
    def negative_count(self) -> int:
        """Number of negative arcs (always odd)."""
        return sum(1 for _, _, positive in self.arcs if not positive)

    def __str__(self) -> str:
        parts = [
            f"{source} {'→' if positive else '¬→'} {target}"
            for source, target, positive in self.arcs
        ]
        return ", ".join(parts)


def odd_cycle_in_program_graph(program: Program) -> Optional[OddCycle]:
    """A witness odd cycle of G(Π), or None if the graph is cycle-balanced."""
    cycle = find_odd_cycle(program_graph(program))
    if cycle is None:
        return None
    return OddCycle(tuple((e.source, e.target, e.positive) for e in cycle))


def is_call_consistent(program: Program) -> bool:
    """Kunen's call-consistency: G(Π) has no odd cycle.

    Theorem 1 guarantees every call-consistent program a fixpoint (indeed a
    stable model) computable by the tie-breaking interpreters.
    """
    return odd_cycle_in_program_graph(program) is None


def is_semi_strict(program: Program) -> bool:
    """Gire's name for the same class; provided for literature navigation."""
    return is_call_consistent(program)


def is_structurally_total(program: Program) -> bool:
    """Theorem 2: structural totality ⇔ no odd cycle in G(Π).

    Linear time (Theorem 4).

    >>> from repro.datalog.parser import parse_program
    >>> is_structurally_total(parse_program("p(a) :- not p(X), e(b)."))
    False
    >>> is_structurally_total(parse_program("p(X) :- not q(X). q(X) :- not p(X)."))
    True
    """
    return is_call_consistent(program)


def is_structurally_nonuniformly_total(program: Program) -> bool:
    """Theorem 3: structural nonuniform totality ⇔ no odd cycle in G(Π′).

    Linear time, but P-complete (Theorem 4) — contrast with the NC uniform
    check.

    >>> from repro.datalog.parser import parse_program
    >>> # The odd cycle runs through a useless predicate: harmless when IDBs
    >>> # start empty.
    >>> prog = parse_program("u :- u. p :- not p, u.")
    >>> is_structurally_total(prog), is_structurally_nonuniformly_total(prog)
    (False, True)
    """
    return is_call_consistent(reduced_program(program))


@dataclass(frozen=True)
class StructuralReport:
    """Both structural verdicts with witnesses, for one program."""

    structurally_total: bool
    structurally_nonuniformly_total: bool
    odd_cycle: Optional[OddCycle]
    reduced_odd_cycle: Optional[OddCycle]
    useless: frozenset[str]

    def __str__(self) -> str:
        lines = [
            f"structurally total:              {self.structurally_total}",
            f"structurally nonuniformly total: {self.structurally_nonuniformly_total}",
            f"useless predicates:              "
            f"{', '.join(sorted(self.useless)) if self.useless else '(none)'}",
        ]
        if self.odd_cycle is not None:
            lines.append(f"odd cycle in G(Π):  {self.odd_cycle}")
        if self.reduced_odd_cycle is not None:
            lines.append(f"odd cycle in G(Π′): {self.reduced_odd_cycle}")
        return "\n".join(lines)


def structural_report(program: Program) -> StructuralReport:
    """Run both Theorem 2/3 checks and collect witnesses."""
    cycle = odd_cycle_in_program_graph(program)
    reduced = reduced_program(program)
    reduced_cycle = odd_cycle_in_program_graph(reduced)
    return StructuralReport(
        structurally_total=cycle is None,
        structurally_nonuniformly_total=reduced_cycle is None,
        odd_cycle=cycle,
        reduced_odd_cycle=reduced_cycle,
        useless=useless_predicates(program),
    )
