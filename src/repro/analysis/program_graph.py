"""The program graph G(Π) — §3 of the paper.

Nodes are predicate names; there is a positive (negative) edge from P to Q
whenever P appears positively (negatively) in the body of a rule whose head
is Q.  Key facts used throughout:

* any path in the ground graph projects to a program-graph path with the
  same number of negative edges, so *no odd cycle in G(Π)* implies no odd
  cycle in any ground graph (Theorem 1's premise);
* *stratified* = no cycle containing a negative edge;
* *call-consistent* (Kunen) = no cycle with an odd number of negative edges.
"""

from __future__ import annotations

from repro.datalog.program import Program
from repro.graphs.signed_digraph import SignedDigraph

__all__ = ["program_graph", "skeleton_graph"]


def program_graph(program: Program) -> SignedDigraph[str]:
    """Build G(Π) over predicate names.

    Every predicate of the program appears as a node, including EDB
    predicates (which have no outgoing... no incoming edges — nothing
    derives them) and isolated heads.

    >>> from repro.datalog.parser import parse_program
    >>> g = program_graph(parse_program("p(X) :- e(X), not q(X)."))
    >>> sorted((e.source, e.target, e.positive) for e in g.edges())
    [('e', 'p', True), ('q', 'p', False)]
    """
    graph: SignedDigraph[str] = SignedDigraph()
    for predicate in sorted(program.predicates):
        graph.add_node(predicate)
    for rule in program.rules:
        head = rule.head.predicate
        for literal in rule.body:
            graph.add_edge(literal.predicate, head, positive=literal.positive)
    return graph


def skeleton_graph(skeleton) -> SignedDigraph[str]:
    """G(Π) computed from a :class:`~repro.datalog.skeleton.Skeleton`.

    The program graph only depends on the skeleton — this overload makes
    that explicit and avoids materializing a propositional program.
    """
    graph: SignedDigraph[str] = SignedDigraph()
    for predicate in sorted(skeleton.predicates()):
        graph.add_node(predicate)
    for rule in skeleton.rules:
        for name, positive in rule.body:
            graph.add_edge(name, rule.head, positive=positive)
    return graph
