"""Program-level analysis: program graphs, structural totality, classification."""

from repro.analysis.classify import ProgramClassification, classification_table, classify_program
from repro.analysis.dependencies import (
    depends_on,
    negation_depth,
    negative_dependencies,
    relevant_subprogram,
)
from repro.analysis.program_graph import program_graph, skeleton_graph
from repro.analysis.totality_search import candidate_databases, search_nontotality_witness
from repro.analysis.structural import (
    OddCycle,
    StructuralReport,
    is_call_consistent,
    is_semi_strict,
    is_structurally_nonuniformly_total,
    is_structurally_total,
    odd_cycle_in_program_graph,
    structural_report,
)
from repro.analysis.useless import reduced_program, useful_predicates, useless_predicates

__all__ = [
    "OddCycle",
    "ProgramClassification",
    "StructuralReport",
    "candidate_databases",
    "classification_table",
    "classify_program",
    "depends_on",
    "search_nontotality_witness",
    "negation_depth",
    "negative_dependencies",
    "relevant_subprogram",
    "is_call_consistent",
    "is_semi_strict",
    "is_structurally_nonuniformly_total",
    "is_structurally_total",
    "odd_cycle_in_program_graph",
    "program_graph",
    "reduced_program",
    "skeleton_graph",
    "structural_report",
    "useful_predicates",
    "useless_predicates",
]
