"""Predicate dependency analyses over the program graph.

Utilities a downstream engine needs around the paper's machinery:

* signed reachability (which predicates can influence a query predicate,
  and through how many negations);
* :func:`negation_depth` — the stratification level when finite, the
  standard "how deeply is this predicate defined through negation" metric;
* :func:`relevant_subprogram` — the rules that can possibly affect a set
  of query predicates (the magic-set-free relevance cut), used to evaluate
  queries without grounding unrelated program parts.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.analysis.program_graph import program_graph
from repro.datalog.program import Program

__all__ = [
    "depends_on",
    "negative_dependencies",
    "negation_depth",
    "relevant_subprogram",
]


def depends_on(program: Program, predicate: str) -> frozenset[str]:
    """All predicates reachable *into* ``predicate`` in G(Π) (its support cone).

    Includes the predicate itself.  These are exactly the predicates whose
    facts/rules can influence the query predicate under any of the paper's
    semantics (ground-graph paths project onto program-graph paths, §3).

    >>> from repro.datalog.parser import parse_program
    >>> prog = parse_program("a :- b. b :- not c. d :- e.")
    >>> sorted(depends_on(prog, "a"))
    ['a', 'b', 'c']
    """
    graph = program_graph(program)
    if predicate not in graph:
        return frozenset({predicate})
    pred_lists = graph.predecessor_lists()
    seen = {graph.index_of(predicate)}
    queue = deque(seen)
    while queue:
        node = queue.popleft()
        for source, _sign in pred_lists[node]:
            if source not in seen:
                seen.add(source)
                queue.append(source)
    return frozenset(graph.label_of(i) for i in seen)


def negative_dependencies(program: Program, predicate: str) -> frozenset[str]:
    """Predicates reaching ``predicate`` through at least one negative edge."""
    graph = program_graph(program)
    if predicate not in graph:
        return frozenset()
    pred_lists = graph.predecessor_lists()
    # state: (node, seen_negative) — BFS over the product graph
    start = (graph.index_of(predicate), False)
    seen = {start}
    queue = deque([start])
    result: set[str] = set()
    while queue:
        node, negative = queue.popleft()
        for source, positive in pred_lists[node]:
            next_state = (source, negative or not positive)
            if next_state not in seen:
                seen.add(next_state)
                if next_state[1]:
                    result.add(graph.label_of(source))
                queue.append(next_state)
    return frozenset(result)


def negation_depth(program: Program) -> dict[str, int | None]:
    """Per predicate: the maximum number of negative edges on any simple
    path into it, or ``None`` when unbounded (a cycle through negation).

    Predicates with finite depth for *all* predicates ⇔ stratified, and the
    finite values are exactly the stratification levels.

    >>> from repro.datalog.parser import parse_program
    >>> negation_depth(parse_program("a :- not b. b :- not c. c :- e."))
    {'a': 2, 'b': 1, 'c': 0, 'e': 0}
    """
    from repro.graphs.scc import strongly_connected_components

    graph = program_graph(program)
    succ = graph.successor_lists()
    components = strongly_connected_components(graph.node_count, lambda u: (v for v, _ in succ[u]))
    comp_id = [0] * graph.node_count
    for cid, comp in enumerate(components):
        for node in comp:
            comp_id[node] = cid
    poisoned = [False] * len(components)  # negation inside an SCC
    for u in range(graph.node_count):
        for v, positive in succ[u]:
            if not positive and comp_id[u] == comp_id[v]:
                poisoned[comp_id[u]] = True

    level: list[int | None] = [0] * len(components)
    for cid in reversed(range(len(components))):
        if poisoned[cid]:
            level[cid] = None
        for u in components[cid]:
            for v, positive in succ[u]:
                target = comp_id[v]
                if target == cid:
                    continue
                if level[cid] is None:
                    level[target] = None
                elif level[target] is not None:
                    bump = 0 if positive else 1
                    level[target] = max(level[target], level[cid] + bump)
    return {
        graph.label_of(node): level[comp_id[node]] for node in range(graph.node_count)
    }


def relevant_subprogram(program: Program, predicates: Iterable[str]) -> Program:
    """The rules that can influence any of the query ``predicates``.

    A rule is kept iff its head predicate lies in the union of the query
    predicates' support cones.  Sound for every semantics in the library:
    dropped rules' heads cannot reach the queries in G(Π), so no ground
    path connects them (§3).

    >>> from repro.datalog.parser import parse_program
    >>> prog = parse_program("a :- b. b :- not c. d :- e. c :- f.")
    >>> print(relevant_subprogram(prog, ["a"]))
    a :- b.
    b :- ¬c.
    c :- f.
    """
    cone: set[str] = set()
    for predicate in predicates:
        cone |= depends_on(program, predicate)
    return Program(tuple(rule for rule in program.rules if rule.head.predicate in cone))
