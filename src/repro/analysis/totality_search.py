"""Semi-deciding totality: the r.e. procedure of §5, bounded.

Theorem 6 makes totality undecidable, but the paper notes the complement
is recursively enumerable: "guess a bad database and verify that there is
no fixpoint".  This module implements that guess-and-verify loop up to a
universe-size bound, with symmetry reduction (databases that differ by a
permutation of constants have isomorphic ground graphs, so only canonical
representatives are checked):

* a returned :class:`Database` is a *proof* of non-totality (no fixpoint —
  verified by exhaustive SAT);
* ``None`` means no counterexample exists with ≤ ``max_constants``
  constants — evidence, not proof, of totality (the procedure is
  refutation-complete in the limit, per §5, but any bound can be too small;
  Theorem 6 is exactly the statement that no bound suffices uniformly).
"""

from __future__ import annotations

from itertools import combinations, permutations, product
from typing import Iterator, Optional

from repro.datalog.database import Database
from repro.datalog.grounding import GroundingMode
from repro.datalog.program import Program
from repro.datalog.terms import Constant
from repro.errors import SemanticsError

__all__ = ["search_nontotality_witness", "candidate_databases"]


def _all_ground_rows(arity: int, universe: tuple[Constant, ...]) -> list[tuple[Constant, ...]]:
    return list(product(universe, repeat=arity))


def _canonical_key(
    facts: frozenset[tuple[str, tuple]],
    fresh: tuple[Constant, ...],
) -> tuple:
    """Minimal representative of the fact set under permutations of the
    *fresh* constants (the program's own constants are not interchangeable)."""
    used = tuple(sorted({c for _, row in facts for c in row if c in set(fresh)}, key=str))
    best = None
    for perm in permutations(used):
        mapping = dict(zip(used, perm))
        key = tuple(
            sorted((pred, tuple(str(mapping.get(c, c)) for c in row)) for pred, row in facts)
        )
        if best is None or key < best:
            best = key
    return best if best is not None else ()


def candidate_databases(
    program: Program,
    *,
    max_constants: int = 2,
    nonuniform: bool = True,
    max_databases: int = 200_000,
    max_facts: int = 16,
) -> Iterator[Database]:
    """Canonical candidate databases over the program's constants plus up to
    ``max_constants`` fresh ones.

    Enumerates every subset of ground facts over the program's EDB
    predicates (plus IDB predicates in the uniform case), growing the fresh
    part of the universe one constant at a time and skipping databases that
    are permutation-equivalent (over the fresh constants) to one already
    yielded.
    """
    predicates = sorted(program.edb_predicates)
    if not nonuniform:
        predicates += sorted(program.idb_predicates)
    arities = program.arities
    base = tuple(sorted(program.constants, key=str))

    emitted = 0
    seen: set[tuple] = set()
    for size in range(0, max_constants + 1):
        fresh = tuple(Constant(f"u{i}") for i in range(size))
        universe = base + fresh
        atoms: list[tuple[str, tuple[Constant, ...]]] = []
        for pred in predicates:
            for row in _all_ground_rows(arities.get(pred, 0), universe):
                atoms.append((pred, row))
        if len(atoms) > max_facts:
            raise SemanticsError(
                f"universe of {len(universe)} constants yields {len(atoms)} "
                "candidate facts (2^n databases); reduce max_constants"
            )
        for count in range(len(atoms) + 1):
            for chosen in combinations(atoms, count):
                facts = frozenset(chosen)
                canon = _canonical_key(facts, fresh)
                if canon in seen:
                    continue
                seen.add(canon)
                emitted += 1
                if emitted > max_databases:
                    raise SemanticsError(f"more than {max_databases} candidate databases")
                db = Database()
                for pred, row in sorted(facts, key=str):
                    db.add(pred, *row)
                yield db


def search_nontotality_witness(
    program: Program,
    *,
    max_constants: int = 2,
    nonuniform: bool = True,
    grounding: GroundingMode = "edb",
    max_databases: int = 200_000,
    max_facts: int = 16,
) -> Optional[Database]:
    """A database with no fixpoint, or None if none exists within the bound.

    >>> from repro.datalog.parser import parse_program
    >>> witness = search_nontotality_witness(parse_program("p(X, Y) :- not p(Y, Y), e(X)."))
    >>> witness is not None   # the paper's program (2) is not total
    True
    >>> search_nontotality_witness(parse_program("p :- not q. q :- not p.")) is None
    True
    """
    # Lazy: repro.api sits above the analysis layer in the import graph.
    from repro.api.engine import solve

    for db in candidate_databases(
        program,
        max_constants=max_constants,
        nonuniform=nonuniform,
        max_databases=max_databases,
        max_facts=max_facts,
    ):
        if not solve("completion", program, db, grounding=grounding).found:
            return db
    return None
