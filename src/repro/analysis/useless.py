"""Useless predicates and the reduced program Π′ — §4 of the paper.

A predicate is *useful* if it has an expansion tree in the skeleton whose
leaves are all negative literals or EDB predicates; equivalently, the
*useless* predicates form the largest set D of IDB predicates such that
every rule with head in D has a positive body occurrence of a predicate of
D.  The paper relates this to useless nonterminals of context-free
grammars, and to the largest unfounded set of the skeleton read as a
propositional program.

The reduced program Π′ drops every rule with a positive occurrence of a
useless predicate (which covers every rule with a useless head) and erases
negative occurrences of useless predicates — treating them as empty.
Lemma 4: Π is structurally nonuniformly total iff Π′ is.

Usefulness depends only on the skeleton, so all functions accept either a
:class:`~repro.datalog.program.Program` or a
:class:`~repro.datalog.skeleton.Skeleton`.
"""

from __future__ import annotations

from typing import Union

from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.skeleton import Skeleton, skeleton_of

__all__ = ["useful_predicates", "useless_predicates", "reduced_program"]


def _as_skeleton(program: Union[Program, Skeleton]) -> Skeleton:
    return program if isinstance(program, Skeleton) else skeleton_of(program)


def useful_predicates(program: Union[Program, Skeleton]) -> frozenset[str]:
    """The useful predicates of the skeleton (EDB predicates included).

    Computed by the iterative procedure in the proof of Theorem 3: choose a
    predicate once it has a rule whose positive body literals are all EDB
    predicates or previously chosen predicates; repeat to a fixpoint.
    Linear time via counters (the paper: 'We can easily find the useful
    predicates in linear time').

    >>> from repro.datalog.parser import parse_program
    >>> sorted(useful_predicates(parse_program("p :- q, e. q :- not r. r :- r.")))
    ['e', 'p', 'q']
    """
    skeleton = _as_skeleton(program)
    edb = skeleton.edb_predicates()
    useful: set[str] = set(edb)

    # For each rule: count of positive IDB body predicates not yet useful.
    rules = list(skeleton.rules)
    pending: list[int] = []
    occurrences: dict[str, list[int]] = {}
    ready: list[int] = []
    for index, rule in enumerate(rules):
        positive_idb = [
            name for name, positive in rule.body if positive and name not in edb
        ]
        pending.append(len(positive_idb))
        for name in positive_idb:
            occurrences.setdefault(name, []).append(index)
        if not positive_idb:
            ready.append(index)

    while ready:
        rule_index = ready.pop()
        head = rules[rule_index].head
        if head in useful:
            continue
        useful.add(head)
        for other in occurrences.get(head, ()):  # rules waiting on this predicate
            pending[other] -= 1
            if pending[other] == 0:
                ready.append(other)
    return frozenset(useful)


def useless_predicates(program: Union[Program, Skeleton]) -> frozenset[str]:
    """The useless IDB predicates: the complement of :func:`useful_predicates`.

    Equals the largest unfounded set of the skeleton read as a
    propositional program with the EDB propositions true (§4) — an identity
    the test suite verifies against the ground-graph machinery.
    """
    skeleton = _as_skeleton(program)
    return skeleton.idb_predicates() - useful_predicates(skeleton)


def reduced_program(program: Program) -> Program:
    """The reduced program Π′ of §4: useless predicates treated as empty.

    >>> from repro.datalog.parser import parse_program
    >>> print(reduced_program(parse_program("u :- u. p :- e, not u. q :- u, e.")))
    p :- e.
    """
    useless = useless_predicates(program)
    if not useless:
        return program
    kept: list[Rule] = []
    for rule in program.rules:
        if any(lit.positive and lit.predicate in useless for lit in rule.body):
            continue
        if rule.head.predicate in useless:
            # Unreachable by the largest-set property (such a rule must have a
            # useless positive body atom), kept as a guard for malformed input.
            continue
        body = tuple(lit for lit in rule.body if lit.positive or lit.predicate not in useless)
        kept.append(Rule(rule.head, body))
    return Program(kept)
