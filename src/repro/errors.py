"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "ValidationError",
    "ArityError",
    "GroundingError",
    "ArtifactError",
    "BackendUnavailableError",
    "SolveTimeoutError",
    "SessionLimitError",
    "CloseConflictError",
    "NotStronglyConnectedError",
    "NotATieError",
    "SemanticsError",
    "ConstructionError",
]


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` library."""


class ParseError(ReproError):
    """Raised when Datalog source text cannot be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    error messages can point at the exact location.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ValidationError(ReproError):
    """Raised when a program, rule, or database violates a structural rule."""


class ArityError(ValidationError):
    """Raised when a predicate is used with inconsistent arities."""


class GroundingError(ReproError):
    """Raised when a program cannot be grounded (e.g. empty universe)."""


class ArtifactError(ReproError):
    """Raised when a binary ground artifact cannot be read or verified.

    Covers every failure mode of the ``repro-ground/1`` container
    (:mod:`repro.io.artifact`): bad magic, unsupported format version,
    truncated files (short reads), checksum mismatches, and payloads
    whose section table disagrees with the bytes on disk.
    """


class BackendUnavailableError(ReproError):
    """Raised when an explicitly requested kernel backend cannot run here.

    The array backend (:mod:`repro.ground.array_state`) needs NumPy,
    which is an optional extra (``pip install repro-datalog[array]``).
    Asking for ``backend="array"`` without it raises this error;
    ``backend="auto"`` silently falls back to the pure-Python kernel.
    """


class SolveTimeoutError(ReproError):
    """Raised when a solve exceeds its per-request deadline.

    The serving layer (:mod:`repro.service`) arms a wall-clock deadline
    around each request's solve so one pathological program cannot wedge
    a worker; the request is answered with a structured timeout error
    instead of propagating this exception.
    """

    def __init__(self, timeout_s: float, message: str | None = None):
        super().__init__(message or f"solve exceeded the {timeout_s:g}s per-request deadline")
        self.timeout_s = timeout_s


class SessionLimitError(ReproError):
    """Raised when the serving tier's session table is full.

    The concurrent server bounds live stateful sessions
    (:class:`repro.service.sessions.SessionManager`); a request naming a
    new session past the bound is answered with a structured
    ``session_limit`` error instead of growing memory without limit.
    """


class CloseConflictError(ReproError):
    """Raised when ``close(M, G)`` derives an atom that is already false.

    This cannot happen during the well-founded or tie-breaking interpreters
    (Lemma 2 of the paper); it is used as a signal by the close-based
    stable-model test, where a conflict means the candidate is not stable.
    """

    def __init__(self, atom_id: int, message: str | None = None):
        super().__init__(message or f"close() derived atom #{atom_id} which is already false")
        self.atom_id = atom_id


class NotStronglyConnectedError(ReproError):
    """Raised when a tie test is requested on a non-strongly-connected graph."""


class NotATieError(ReproError):
    """Raised when a (K, L) partition is requested for a component with an odd cycle."""


class SemanticsError(ReproError):
    """Raised when an interpreter is used outside its documented domain."""


class ConstructionError(ReproError):
    """Raised when a theorem construction receives unusable input."""
