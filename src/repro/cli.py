"""Command-line interface: ``repro-datalog`` (or ``python -m repro``).

Subcommands:

* ``analyze FILE``            — classification + structural totality report;
* ``run FILE``                — evaluate under a chosen semantics;
* ``fixpoints FILE``          — enumerate fixpoints (optionally stable only);
* ``ground FILE``             — grounding statistics;
* ``variant FILE``            — emit a Theorem 2/3/5 no-fixpoint variant;
* ``witness FILE``            — bounded search for a no-fixpoint database;
* ``explain FILE ATOM``       — provenance of one atom's truth value;
* ``dot FILE``                — Graphviz export of the program/ground graph;
* ``bench``                   — per-phase kernel timings over the workload
  families, written to ``BENCH_<rev>.json``.

Program files use the Datalog syntax of :mod:`repro.datalog.parser`;
databases are fact files (``--db``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.classify import classify_program
from repro.analysis.structural import structural_report
from repro.constructions.theorem2 import theorem2_constant_free_variant, theorem2_variant
from repro.constructions.theorem3 import theorem3_constant_free_variant, theorem3_variant
from repro.constructions.theorem5 import theorem5_variant
from repro.datalog.database import Database
from repro.datalog.grounding import ground
from repro.datalog.parser import parse_database, parse_program
from repro.datalog.printer import format_database, format_program
from repro.errors import ReproError
from repro.io.dot import ground_graph_dot, program_graph_dot
from repro.semantics.choices import RandomChoice
from repro.semantics.completion import enumerate_fixpoints
from repro.semantics.fitting import fitting_model
from repro.semantics.perfect import perfect_model
from repro.semantics.stable import is_stable_model
from repro.semantics.stratified import stratified_model
from repro.semantics.tie_breaking import pure_tie_breaking, well_founded_tie_breaking
from repro.semantics.well_founded import well_founded_model

__all__ = ["main"]


def _load(args) -> tuple:
    program = parse_program(Path(args.program).read_text())
    database = (
        parse_database(Path(args.db).read_text()) if args.db else Database()
    )
    return program, database


def _print_model(model, show_false: bool) -> None:
    for atom in sorted(model.true_atoms(), key=str):
        print(f"  {atom} = true")
    if show_false:
        for atom in sorted(model.false_atoms(), key=str):
            print(f"  {atom} = false")
    for atom in sorted(model.undefined_atoms(), key=str):
        print(f"  {atom} = undefined")


def _cmd_analyze(args) -> int:
    program, _ = _load(args)
    print(classify_program(program))
    print()
    print(structural_report(program))
    return 0


def _cmd_run(args) -> int:
    program, database = _load(args)
    if args.semantics == "wf":
        run = well_founded_model(program, database, grounding=args.grounding)
        model = run.model
        print(f"well-founded model ({run.iterations} unfounded iterations):")
    elif args.semantics == "pure-tb":
        policy = RandomChoice(args.seed) if args.seed is not None else None
        run = pure_tie_breaking(program, database, policy=policy, grounding=args.grounding)
        model = run.model
        print(f"pure tie-breaking model ({run.free_choice_count} free choices):")
    elif args.semantics == "wf-tb":
        policy = RandomChoice(args.seed) if args.seed is not None else None
        run = well_founded_tie_breaking(
            program, database, policy=policy, grounding=args.grounding
        )
        model = run.model
        print(f"well-founded tie-breaking model ({run.free_choice_count} free choices):")
    elif args.semantics == "stratified":
        trues = stratified_model(program, database)
        print("stratified model:")
        for atom in sorted(trues, key=str):
            print(f"  {atom} = true")
        return 0
    elif args.semantics == "perfect":
        model = perfect_model(program, database, grounding=args.grounding)
        print("perfect model:")
    else:  # fitting
        model = fitting_model(program, database)
        print("Fitting (Kripke-Kleene) model:")
    _print_model(model, args.show_false)
    print(f"total: {model.is_total}")
    return 0 if model.is_total else 3


def _cmd_fixpoints(args) -> int:
    program, database = _load(args)
    count = 0
    for true_atoms in enumerate_fixpoints(
        program, database, grounding=args.grounding, limit=args.limit
    ):
        if args.stable and not is_stable_model(program, database, true_atoms):
            continue
        count += 1
        label = "stable model" if args.stable else "fixpoint"
        body = ", ".join(sorted(str(a) for a in true_atoms)) or "(empty)"
        print(f"{label} {count}: {body}")
    if count == 0:
        print("no fixpoint" if not args.stable else "no stable model")
        return 3
    return 0


def _cmd_ground(args) -> int:
    program, database = _load(args)
    gp = ground(program, database, mode=args.mode)
    print(gp.describe())
    return 0


def _cmd_variant(args) -> int:
    program, _ = _load(args)
    builders = {
        ("2", False): theorem2_variant,
        ("2", True): theorem2_constant_free_variant,
        ("3", False): theorem3_variant,
        ("3", True): theorem3_constant_free_variant,
    }
    if args.theorem == "5":
        variant, delta = theorem5_variant(program, nonuniform=args.nonuniform)
    else:
        variant, delta = builders[(args.theorem, args.constant_free)](program)
    print(format_program(variant, header=f"Theorem {args.theorem} variant"))
    print(format_database(delta, header="database"))
    return 0


def _cmd_witness(args) -> int:
    from repro.analysis.totality_search import search_nontotality_witness

    program, _ = _load(args)
    witness = search_nontotality_witness(
        program,
        max_constants=args.max_constants,
        nonuniform=not args.uniform,
    )
    if witness is None:
        print(
            f"no counterexample database with <= {args.max_constants} fresh "
            "constants (evidence of totality, not proof — Theorem 6)"
        )
        return 0
    print("NOT TOTAL — this database admits no fixpoint:")
    print(format_database(witness) or "(the empty database)")
    return 3


def _cmd_explain(args) -> int:
    from repro.datalog.parser import parse_atom
    from repro.ground.explain import explain, format_explanation

    program, database = _load(args)
    atom = parse_atom(args.atom)
    if args.semantics == "wf":
        run = well_founded_model(program, database, grounding=args.grounding)
        state = run.state
    else:
        policy = RandomChoice(args.seed) if args.seed is not None else None
        state = well_founded_tie_breaking(
            program, database, policy=policy, grounding=args.grounding
        ).state
    print(format_explanation(explain(state, atom, max_depth=args.depth)))
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.runner import format_table, run_bench, write_bench

    family_names = (
        [f.strip() for f in args.families.split(",") if f.strip()]
        if args.families
        else None
    )
    record = run_bench(
        scale=args.scale,
        family_names=family_names,
        repeat=args.repeat,
        baseline=not args.no_baseline,
    )
    path = write_bench(record, Path(args.output) if args.output else None)
    print(format_table(record))
    print(f"wrote {path}")
    return 0


def _cmd_dot(args) -> int:
    program, database = _load(args)
    if args.ground:
        gp = ground(program, database, mode=args.grounding)
        print(ground_graph_dot(gp))
    else:
        print(program_graph_dot(program))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-datalog",
        description="Tie-breaking semantics and structural totality for Datalog¬",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("program", help="Datalog¬ program file")
        p.add_argument("--db", help="database (facts) file")

    p = sub.add_parser("analyze", help="classification and structural report")
    add_common(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("run", help="evaluate the program under a semantics")
    add_common(p)
    p.add_argument(
        "--semantics",
        choices=["wf", "pure-tb", "wf-tb", "stratified", "perfect", "fitting"],
        default="wf-tb",
    )
    p.add_argument("--grounding", choices=["full", "relevant", "edb"], default="full")
    p.add_argument("--seed", type=int, help="random tie orientation seed")
    p.add_argument("--show-false", action="store_true")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("fixpoints", help="enumerate fixpoints / stable models")
    add_common(p)
    p.add_argument("--limit", type=int)
    p.add_argument("--stable", action="store_true", help="stable models only")
    p.add_argument("--grounding", choices=["full", "edb"], default="full")
    p.set_defaults(func=_cmd_fixpoints)

    p = sub.add_parser("ground", help="grounding statistics")
    add_common(p)
    p.add_argument("--mode", choices=["full", "relevant", "edb"], default="full")
    p.set_defaults(func=_cmd_ground)

    p = sub.add_parser("variant", help="emit a Theorem 2/3/5 variant")
    add_common(p)
    p.add_argument("--theorem", choices=["2", "3", "5"], default="2")
    p.add_argument("--constant-free", action="store_true")
    p.add_argument("--nonuniform", action="store_true", help="theorem 5 only")
    p.set_defaults(func=_cmd_variant)

    p = sub.add_parser("witness", help="bounded nontotality search (§5)")
    add_common(p)
    p.add_argument("--max-constants", type=int, default=1)
    p.add_argument("--uniform", action="store_true", help="allow initial IDB facts")
    p.set_defaults(func=_cmd_witness)

    p = sub.add_parser("explain", help="provenance of one atom's value")
    add_common(p)
    p.add_argument("atom", help="ground atom, e.g. 'win(1)'")
    p.add_argument("--semantics", choices=["wf", "wf-tb"], default="wf-tb")
    p.add_argument("--grounding", choices=["full", "relevant", "edb"], default="full")
    p.add_argument("--seed", type=int)
    p.add_argument("--depth", type=int, default=12)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("dot", help="Graphviz export")
    add_common(p)
    p.add_argument("--ground", action="store_true", help="ground graph instead of G(Π)")
    p.add_argument("--grounding", choices=["full", "relevant", "edb"], default="full")
    p.set_defaults(func=_cmd_dot)

    from repro.bench.runner import FAMILIES, SCALES

    p = sub.add_parser("bench", help="kernel benchmark suite (per-phase timings)")
    p.add_argument("--scale", choices=list(SCALES), default="small")
    p.add_argument(
        "--families",
        help=f"comma-separated subset of: {', '.join(FAMILIES)}",
    )
    p.add_argument("--output", help="output path (default: ./BENCH_<rev>.json)")
    p.add_argument("--repeat", type=int, default=1, help="best-of-N timing runs")
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the seed-kernel baseline column (no speedup recorded)",
    )
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
